"""Serving-path telemetry: traces, histograms, Prometheus, logs.

Stands the reachability service up in-process (its own event loop on a
daemon thread), fires a small mixed workload at it, and then reads the
telemetry back every way the service exposes it:

* a per-request **trace** echoed by ``"trace": true``,
* per answer-class **latency histograms** from the ``stats`` verb,
* the **Prometheus text endpoint**, scraped with nothing but urllib,
* the **structured JSON-lines log** (slow queries + lifecycle events).

Run:  python examples/service_telemetry.py
"""

import io
import json
import urllib.request

from repro import DiGraph
from repro.service import IndexManager, ServiceClient, start_in_thread


def main() -> None:
    # The paper's Fig. 1(a) DAG behind a live service.
    graph = DiGraph.from_edges([
        ("a", "b"), ("a", "c"),
        ("b", "c"), ("b", "i"),
        ("c", "d"), ("c", "e"),
        ("f", "b"), ("f", "g"),
        ("g", "d"), ("g", "h"),
        ("h", "e"), ("h", "i"),
    ])
    manager = IndexManager.from_graph(graph)
    log = io.StringIO()              # a real deployment passes a path
    with start_in_thread(manager, port=0, metrics_port=0, log=log,
                         slow_query_ms=0.0) as handle:
        host, port = handle.address
        metrics_host, metrics_port = handle.service.metrics_address
        print(f"service on {host}:{port}, "
              f"metrics on {metrics_host}:{metrics_port}")

        with ServiceClient(host, port) as client:
            # a mixed workload: positives, negatives, repeats (cache
            # hits), and one coalesced batch
            client.query("a", "e")
            client.query("e", "a")
            client.query_batch([("f", "i"), ("d", "a"), ("g", "e")])
            client.query("a", "e")                  # cache hit

            # 1. the per-request trace, echoed on demand
            _, reachable, trace = client.query_traced("a", "e")
            print(f"\ntraced query a->e (reachable={reachable}, "
                  f"class={trace['class']}, "
                  f"total={trace['total_ms']:.3f} ms):")
            for stage in trace["stages"]:
                extras = {key: value for key, value in stage.items()
                          if key not in ("stage", "ms")}
                note = f"  {extras}" if extras else ""
                print(f"  {stage['stage']:<8} "
                      f"{stage['ms']:8.3f} ms{note}")

            # 2. per answer-class latency histograms from `stats`
            stats = client.stats()
            print("\nlatency by answer class (from streaming "
                  "histograms):")
            for klass, summary in sorted(stats["latency"].items()):
                print(f"  {klass:<13} n={summary['count']:<3} "
                      f"p50={1e3 * summary['p50']:.3f} ms  "
                      f"p99={1e3 * summary['p99']:.3f} ms")
            slowest = stats["slow_traces"][0]
            print(f"slowest retained trace: {slowest['trace_id']} "
                  f"({slowest['total_ms']:.3f} ms, "
                  f"class={slowest['class']})")

        # 3. the Prometheus endpoint, scraped with the stdlib alone
        url = f"http://{metrics_host}:{metrics_port}/metrics"
        with urllib.request.urlopen(url, timeout=10.0) as reply:
            text = reply.read().decode("utf-8")
        latency_lines = [line for line in text.splitlines()
                         if line.startswith(
                             "repro_service_request_latency_seconds")]
        print(f"\nPrometheus scrape of {url}: "
              f"{len(text.splitlines())} lines; request-latency "
              f"series:")
        for line in latency_lines[-4:]:
            print(f"  {line}")

    # 4. the structured log (the context exit drained the service)
    records = [json.loads(line)
               for line in log.getvalue().splitlines()]
    slow_queries = sum(record["event"] == "slow_query"
                      for record in records)
    lifecycle = [record["event"] for record in records
                 if record["event"] != "slow_query"]
    print(f"\nstructured log: {len(records)} events "
          f"({slow_queries} slow-query records at the 0 ms "
          f"threshold)")
    print(f"lifecycle events: {lifecycle}")


if __name__ == "__main__":
    main()
