"""Ontology subsumption: 'is every X a Y?' over a class taxonomy.

The paper's introduction motivates reachability indexes with ontology
queries: class hierarchies with multiple inheritance are DAGs, and a
subsumption check "is Penguin a kind of Animal?" is exactly an
ancestor–descendant query.  This example builds a synthetic biology-ish
taxonomy (a few thousand classes, multiple parents allowed), indexes
it once, and compares the indexed query rate against per-query BFS.

Run:  python examples/ontology_queries.py
"""

import random
import time

from repro import ChainIndex, DiGraph
from repro.baselines.traversal import TraversalIndex


def build_taxonomy(num_classes: int = 4000, seed: int = 2026) -> DiGraph:
    """A random taxonomy: each class gets 1–3 more-general parents."""
    rng = random.Random(seed)
    graph = DiGraph()
    graph.add_node("Thing")
    names = ["Thing"]
    for i in range(1, num_classes):
        name = f"Class{i:04d}"
        graph.add_node(name)
        # Edges point from the general class to the specific one, so
        # "u reaches v" means "v is a kind of u".
        for parent in rng.sample(names, k=min(len(names),
                                              rng.randint(1, 3))):
            graph.add_edge(parent, name)
        names.append(name)
    return graph


def main() -> None:
    taxonomy = build_taxonomy()
    print(f"taxonomy: {taxonomy.num_nodes} classes, "
          f"{taxonomy.num_edges} subclass links")

    start = time.perf_counter()
    index = ChainIndex.build(taxonomy)
    print(f"indexed in {time.perf_counter() - start:.2f}s — "
          f"{index.num_chains} chains, {index.size_words()} words")

    rng = random.Random(7)
    names = taxonomy.nodes()
    queries = [(rng.choice(names), rng.choice(names))
               for _ in range(20000)]

    start = time.perf_counter()
    indexed_hits = sum(1 for general, specific in queries
                       if index.is_reachable(general, specific))
    indexed_seconds = time.perf_counter() - start

    bfs = TraversalIndex.build(taxonomy)
    sample = queries[:500]  # BFS is too slow for the full batch
    start = time.perf_counter()
    bfs_hits = sum(1 for general, specific in sample
                   if bfs.is_reachable(general, specific))
    bfs_seconds = (time.perf_counter() - start) * len(queries) / len(sample)

    assert indexed_hits >= bfs_hits  # same stream prefix agrees
    print(f"{len(queries)} subsumption checks: "
          f"index {indexed_seconds:.2f}s vs "
          f"BFS ~{bfs_seconds:.1f}s (extrapolated) — "
          f"{bfs_seconds / indexed_seconds:.0f}x speedup")
    print(f"'Thing' subsumes everything: "
          f"{all(index.is_reachable('Thing', c) for c in names)}")


if __name__ == "__main__":
    main()
