"""Impact analysis over a cyclic package-dependency graph.

Software management is another of the paper's motivating domains.
Dependency graphs are *not* acyclic in practice (mutually dependent
packages exist), which is exactly why :class:`ChainIndex` condenses
strongly connected components first (Section II).  This example builds
a dependency graph with deliberate cycles, indexes it, and answers the
two classic questions:

* "if package P changes, what needs rebuilding?" — the descendants of
  P in the depends-on-reversed direction;
* "does A (transitively) depend on B?" — a reachability query.

Run:  python examples/software_dependencies.py
"""

import random

from repro import ChainIndex, DiGraph, strongly_connected_components


def build_dependency_graph(num_packages: int = 1200,
                           seed: int = 11) -> DiGraph:
    """Edges point dependency -> dependent ("B is built from A").

    A layered core with a handful of mutual-dependency knots sprinkled
    in, the way real ecosystems look after plugin back-references.
    """
    rng = random.Random(seed)
    graph = DiGraph()
    packages = [f"pkg-{i:04d}" for i in range(num_packages)]
    for package in packages:
        graph.add_node(package)
    for i, package in enumerate(packages[1:], start=1):
        for dependency in rng.sample(packages[:i],
                                     k=min(i, rng.randint(1, 4))):
            graph.add_edge(dependency, package)
    # Mutual-dependency knots: back edges closing small cycles.
    for _ in range(num_packages // 40):
        hi = rng.randrange(1, num_packages)
        lo = rng.randrange(hi)
        if not graph.has_edge(packages[hi], packages[lo]):
            graph.add_edge(packages[hi], packages[lo])
    return graph


def main() -> None:
    graph = build_dependency_graph()
    cycles = [c for c in strongly_connected_components(graph)
              if len(c) > 1]
    print(f"dependency graph: {graph.num_nodes} packages, "
          f"{graph.num_edges} edges, "
          f"{len(cycles)} mutual-dependency knots "
          f"(largest: {max(map(len, cycles))} packages)")

    index = ChainIndex.build(graph)
    print(f"index: {index.num_components} components after "
          f"condensation, {index.num_chains} chains, "
          f"{index.size_words()} words")

    base = "pkg-0000"
    affected = sorted(index.descendants(base))
    print(f"changing {base} forces rebuilding "
          f"{len(affected) - 1} packages "
          f"(first few: {affected[1:5]} ...)")

    # Everything inside a knot depends on everything else in it.
    knot = sorted(cycles[0])
    a, b = knot[0], knot[1]
    assert index.is_reachable(a, b) and index.is_reachable(b, a)
    print(f"knot check: {a} <-> {b} mutually reachable (same SCC)")

    leaf = "pkg-1199"
    verdict = "depends on" if index.is_reachable(base, leaf) \
        else "is independent of"
    print(f"{leaf} {verdict} {base}")


if __name__ == "__main__":
    main()
