"""Bill-of-materials explosion — recursion in a database, indexed.

CAD/CAM part hierarchies are the paper's first motivating domain: "in a
database system, such an operation is called a recursion computation".
A bill of materials is a DAG (assemblies share sub-assemblies), and the
classic recursive queries are:

* *parts explosion*:   every component a product transitively contains
  (``descendants``);
* *where-used*:        every assembly a given part appears in
  (``ancestors``);
* *containment check*: does product A contain part B at any depth
  (``is_reachable``)?

The example also shows the incremental index absorbing an engineering
change (a new sub-assembly spliced in) without a rebuild.

Run:  python examples/bill_of_materials.py
"""

import random

from repro import ChainIndex, DiGraph, DynamicChainIndex


def build_bom(num_products: int = 40, num_assemblies: int = 400,
              num_parts: int = 1600, seed: int = 5) -> DiGraph:
    """Products → assemblies → sub-assemblies → parts, with sharing."""
    rng = random.Random(seed)
    graph = DiGraph()
    products = [f"product-{i:02d}" for i in range(num_products)]
    assemblies = [f"asm-{i:03d}" for i in range(num_assemblies)]
    parts = [f"part-{i:04d}" for i in range(num_parts)]
    for name in products + assemblies + parts:
        graph.add_node(name)
    for product in products:
        for assembly in rng.sample(assemblies[:num_assemblies // 4],
                                   rng.randint(3, 6)):
            graph.add_edge(product, assembly)
    for i, assembly in enumerate(assemblies):
        # Sub-assemblies come from strictly later assemblies: acyclic.
        pool = assemblies[i + 1:]
        for sub in rng.sample(pool, min(len(pool), rng.randint(0, 3))):
            graph.add_edge(assembly, sub)
        for part in rng.sample(parts, rng.randint(2, 8)):
            if not graph.has_edge(assembly, part):
                graph.add_edge(assembly, part)
    return graph


def main() -> None:
    bom = build_bom()
    print(f"bill of materials: {bom.num_nodes} items, "
          f"{bom.num_edges} uses-relations")

    index = ChainIndex.build(bom)
    print(f"chain index: {index.num_chains} chains, "
          f"{index.size_words()} words")

    product = "product-00"
    explosion = [item for item in index.descendants(product)
                 if item.startswith("part-")]
    print(f"parts explosion of {product}: {len(explosion)} distinct "
          f"parts (e.g. {sorted(explosion)[:4]} ...)")

    part = sorted(explosion)[0]
    used_in = [item for item in index.ancestors(part)
               if item.startswith("product-")]
    print(f"where-used of {part}: {len(used_in)} products")
    assert product in used_in

    print(f"{product} contains {part}: "
          f"{index.is_reachable(product, part)}")

    # Engineering change: splice a new sub-assembly under product-00.
    dynamic = DynamicChainIndex.from_graph(bom)
    dynamic.add_node("asm-NEW")
    dynamic.add_node("part-NEW")
    dynamic.add_edge("asm-NEW", "part-NEW")
    dynamic.add_edge(product, "asm-NEW")
    assert dynamic.is_reachable(product, "part-NEW")
    assert not dynamic.is_reachable("product-01", "part-NEW")
    print("engineering change applied incrementally: "
          f"{product} now contains part-NEW "
          f"(index holds {dynamic.num_nodes} items)")


if __name__ == "__main__":
    main()
