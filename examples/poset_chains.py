"""Dilworth decomposition of a finite poset.

The paper notes (Section I) that its algorithm doubles as a chain
decomposer for any finite partially ordered set, since a poset is a
DAG.  This example decomposes the divisibility poset on {1..N} into the
minimum number of chains, extracts a maximum antichain, and verifies
Dilworth's theorem: both have the same size.

Run:  python examples/poset_chains.py
"""

from repro import (
    ChainIndex,
    DiGraph,
    dag_width,
    maximum_antichain,
    stratified_chain_cover,
)


def divisibility_poset(limit: int) -> DiGraph:
    """The Hasse diagram of divisibility on 1..limit (covers only)."""
    graph = DiGraph()
    for value in range(1, limit + 1):
        graph.add_node(value)
    for value in range(1, limit + 1):
        for multiple in range(2 * value, limit + 1, value):
            # Cover relation: no intermediate divisor between them.
            ratio = multiple // value
            is_cover = all(ratio % p or (multiple // p) % value
                           for p in range(2, ratio))
            if is_cover:
                graph.add_edge(value, multiple)
    return graph


def main() -> None:
    limit = 60
    poset = divisibility_poset(limit)
    print(f"divisibility poset on 1..{limit}: {poset.num_nodes} "
          f"elements, {poset.num_edges} cover relations")

    cover = stratified_chain_cover(poset)
    width = dag_width(poset)
    antichain = maximum_antichain(poset)
    print(f"minimum chains: {cover.num_chains}; width: {width}; "
          f"maximum antichain size: {len(antichain)}")
    assert cover.num_chains == width == len(antichain), \
        "Dilworth's theorem violated?!"
    print(f"a maximum antichain: {sorted(antichain)}")
    print("(classic result: the antichain is the 'middle layer' "
          f"{{{limit // 2 + 1}..{limit}}} slice of size "
          f"{limit - limit // 2})")

    print("some chains (divisor towers):")
    for chain in sorted(cover.as_node_chains(poset), key=len,
                        reverse=True)[:5]:
        print("  " + " | ".join(map(str, chain)))

    index = ChainIndex.build(poset)
    print(f"6 divides 42: {index.is_reachable(6, 42)}")
    print(f"6 divides 45: {index.is_reachable(6, 45)}")
    print(f"multiples of 7 up to {limit}: "
          f"{sorted(index.descendants(7))}")


if __name__ == "__main__":
    main()
