"""Quickstart: index a DAG and answer reachability queries.

Builds the running example of the paper (Fig. 1(a)), decomposes it into
a minimum set of chains, and answers ancestor–descendant queries in
O(log b) via the chain labels.

Run:  python examples/quickstart.py
"""

from repro import ChainIndex, DiGraph, dag_width, maximum_antichain


def main() -> None:
    # The DAG of the paper's Fig. 1(a).
    graph = DiGraph.from_edges([
        ("a", "b"), ("a", "c"),
        ("b", "c"), ("b", "i"),
        ("c", "d"), ("c", "e"),
        ("f", "b"), ("f", "g"),
        ("g", "d"), ("g", "h"),
        ("h", "e"), ("h", "i"),
    ])
    print(f"graph: {graph.num_nodes} nodes, {graph.num_edges} edges")

    index = ChainIndex.build(graph)          # the paper's algorithm
    print(f"chains: {index.num_chains} (graph width = "
          f"{dag_width(graph)})")
    for i, chain in enumerate(index.chains()):
        pretty = " > ".join("/".join(map(str, scc)) for scc in chain)
        print(f"  chain {i}: {pretty}")

    antichain = maximum_antichain(graph)
    print(f"a maximum antichain (Dilworth witness): {sorted(antichain)}")

    queries = [("a", "e"), ("f", "i"), ("d", "a"), ("g", "e"),
               ("c", "h")]
    for source, target in queries:
        verdict = "reaches" if index.is_reachable(source, target) \
            else "does NOT reach"
        print(f"  {source} {verdict} {target}")

    print(f"descendants of 'g': {sorted(index.descendants('g'))}")
    print(f"index size: {index.size_words()} sixteen-bit words — "
          f"O(b*n); a materialised closure matrix is O(n^2) bits and "
          f"overtakes the labels as the graph grows")


if __name__ == "__main__":
    main()
