"""Disabled-mode overhead gate for the capture/SLO serving hooks.

``docs/WORKLOADS.md`` promises that request capture and SLO tracking
cost nothing when off — their default state.  Off means the serving
path pays exactly three pointer checks (``self.capture is not None``
twice, ``self.slo is not None`` twice) per request.  This benchmark
enforces the promise in process, where TCP noise cannot hide a
regression:

1. ``_ControlService`` copies ``_handle_line`` / ``_finish_query``
   with the hook lines deleted — the serving tail as if the feature
   had never been built;
2. the same pre-encoded request mix is pushed straight through
   ``_handle_line`` on both services, **interleaved** A/B/A/B so
   machine drift hits both sides equally;
3. the gate fails when the hooked **best lap** exceeds the control
   best lap by more than the budget (2 %, ``REPRO_OVERHEAD_LIMIT``).

If the hooked tail in ``repro/service/server.py`` changes shape, the
control copy below must follow — the test asserting identical
responses keeps the two from drifting apart behaviourally.

Run it either way::

    python benchmarks/bench_capture_overhead.py       # standalone
    PYTHONPATH=src python -m pytest benchmarks/bench_capture_overhead.py

``REPRO_BENCH_SCALE`` scales the workload, ``REPRO_OVERHEAD_RUNS``
the interleaved run count, as for the rest of the bench suite.
"""

from __future__ import annotations

import asyncio
import json
import os
import statistics
import sys
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent

try:
    from repro.graph.generators import sparse_random_dag
except ImportError:  # standalone run without an installed package
    sys.path.insert(0, str(REPO_ROOT / "src"))
    from repro.graph.generators import sparse_random_dag

from repro.obs import OBS  # noqa: E402
from repro.obs.histogram import Histogram  # noqa: E402
from repro.service import IndexManager, ReachabilityService  # noqa: E402
from repro.service.tracing import Trace  # noqa: E402

SCALE = float(os.environ.get("REPRO_BENCH_SCALE", "1.0"))
RUNS = int(os.environ.get("REPRO_OVERHEAD_RUNS", "5"))
LIMIT = float(os.environ.get("REPRO_OVERHEAD_LIMIT", "0.02"))


class _ControlService(ReachabilityService):
    """The serving tail with the capture/SLO hooks compiled out."""

    async def _handle_line(self, line: bytes) -> dict:
        self.requests += 1
        if OBS.enabled:
            OBS.count("service/requests")
        try:
            request = json.loads(line)
        except (json.JSONDecodeError, UnicodeDecodeError) as exc:
            return self._error(None, "bad_request",
                               f"not valid JSON: {exc}")
        if not isinstance(request, dict):
            return self._error(None, "bad_request",
                               "request must be a JSON object")
        request_id = request.get("id")
        op = request.get("op")
        trace = None
        if op in ("query", "query_batch"):
            trace = Trace(op)
            trace.mark("accept", queue_depth=self.batcher.queue_depth,
                       epoch=self.manager.epoch)
        with OBS.span("service/request"):
            response = await self._dispatch_guarded(request, op,
                                                    request_id, trace)
        if trace is not None:
            trace.mark("respond")
            trace.finish()
            self._finish_query(trace, request, response)
        if request_id is not None:
            response["id"] = request_id
        return response

    def _finish_query(self, trace: Trace, request: dict,
                      response: dict) -> None:
        if not response.get("ok"):
            trace.klass = "error"
        elif trace.op == "query_batch":
            trace.klass = "batch"
        elif trace.klass is None:
            trace.klass = self._classify(trace.op, request, response)
        seconds = trace.total_seconds
        histogram = self.class_latency.get(trace.klass)
        if histogram is None:
            histogram = self.class_latency.setdefault(
                trace.klass, Histogram())
        histogram.observe(seconds)
        if OBS.enabled:
            OBS.observe(f"service/latency/{trace.klass}", seconds)
        self.slow_traces.offer(trace)
        if (self.log is not None and self.slow_query_ms is not None
                and 1e3 * seconds >= self.slow_query_ms):
            self.log.log("slow_query", **trace.to_dict())
        if request.get("trace"):
            response["trace"] = trace.to_dict()


def _request_lines(graph, count: int) -> list[bytes]:
    """A deterministic query/batch/ping mix, pre-encoded."""
    import random

    rng = random.Random(17)
    nodes = sorted(graph.nodes(), key=str)
    lines = []
    for index in range(count):
        if index % 16 == 15:
            request: dict = {"op": "ping"}
        elif index % 8 == 7:
            request = {"op": "query_batch",
                       "pairs": [[rng.choice(nodes), rng.choice(nodes)]
                                 for _ in range(8)]}
        else:
            request = {"op": "query", "source": rng.choice(nodes),
                       "target": rng.choice(nodes)}
        lines.append(json.dumps(request).encode("utf-8"))
    return lines


async def _lap(service, lines: list[bytes]) -> float:
    """Seconds to push every line through ``_handle_line`` once."""
    start = time.perf_counter()
    for line in lines:
        await service._handle_line(line)  # noqa: SLF001
    return time.perf_counter() - start


def measure_overhead(scale: float = SCALE, runs: int = RUNS) -> dict:
    """Interleaved hooked-vs-control best laps on one request mix.

    The hook cost being measured is a handful of pointer checks per
    request — far below asyncio scheduling jitter — so the two sides
    are interleaved at ~100-request chunk granularity (order
    alternating chunk to chunk): machine drift and scheduler hiccups
    land on both sides of every back-to-back pair almost equally.  The
    estimator is the median over **all** chunk-pair time ratios —
    dozens of paired samples, so a handful of ruined chunks cannot
    move it.
    """
    nodes = max(200, int(600 * scale))
    graph = sparse_random_dag(nodes, int(nodes * 1.6), seed=11)
    manager = IndexManager.from_graph(graph)
    lines = _request_lines(graph, max(500, int(2000 * scale)))

    # no coalescing window: the 500 µs batching timer would dominate
    # (and jitter) every lap, hiding exactly the ns-scale checks this
    # gate is about
    options = {"max_wait_us": 0}
    passes = max(9, 3 * runs)
    chunks = [lines[i:i + 100] for i in range(0, len(lines), 100)]
    hooked_passes: list[float] = []
    control_passes: list[float] = []

    async def run() -> None:
        hooked = ReachabilityService(manager, **options)  # hooks off
        control = _ControlService(manager, **options)
        await hooked.batcher.start()
        await control.batcher.start()
        try:
            for service in (hooked, control):     # warm both sides
                await _lap(service, lines)
            for index in range(passes):
                hooked_total = control_total = 0.0
                for offset, chunk in enumerate(chunks):
                    order = ((hooked, control)
                             if (index + offset) % 2
                             else (control, hooked))
                    laps = {}
                    for service in order:
                        laps[service is hooked] = \
                            await _lap(service, chunk)
                    hooked_total += laps[True]
                    control_total += laps[False]
                    ratios.append(laps[True] / laps[False])
                hooked_passes.append(hooked_total)
                control_passes.append(control_total)
        finally:
            await hooked.batcher.close()
            await control.batcher.close()

    ratios: list[float] = []
    asyncio.run(run())
    return {
        "requests": len(lines),
        "passes": passes,
        "pair_samples": len(ratios),
        "hooked_passes": hooked_passes,
        "control_passes": control_passes,
        "hooked_median": statistics.median(hooked_passes),
        "control_median": statistics.median(control_passes),
        "overhead": statistics.median(ratios) - 1.0,
    }


def test_control_answers_identically():
    """Anti-drift: both tails must produce the same responses."""
    graph = sparse_random_dag(120, 200, seed=11)
    manager = IndexManager.from_graph(graph)
    lines = _request_lines(graph, 64)

    async def collect(service) -> list[dict]:
        await service.batcher.start()
        try:
            return [await service._handle_line(line)  # noqa: SLF001
                    for line in lines]
        finally:
            await service.batcher.close()

    hooked = asyncio.run(collect(ReachabilityService(manager)))
    control = asyncio.run(collect(_ControlService(manager)))
    assert hooked == control


def test_capture_disabled_overhead_stays_under_budget():
    result = measure_overhead()
    print(f"\ncontrol {result['control_median']:.4f} s vs hooked "
          f"{result['hooked_median']:.4f} s -> "
          f"{100 * result['overhead']:+.2f} % (budget "
          f"{100 * LIMIT:.0f} %)")
    assert result["overhead"] <= LIMIT, (
        f"capture/SLO disabled-mode overhead "
        f"{100 * result['overhead']:+.2f} % exceeds the "
        f"{100 * LIMIT:.0f} % budget")


def main() -> int:
    result = measure_overhead()
    print(json.dumps(result, indent=2))
    over = result["overhead"] > LIMIT
    print(f"overhead {100 * result['overhead']:+.2f} % "
          f"({'FAIL' if over else 'ok'}, budget {100 * LIMIT:.0f} %)")
    return 1 if over else 0


if __name__ == "__main__":
    sys.exit(main())
