"""Perf smoke: the observer stack's O(1)-answer ratio and speedup.

Runs :func:`repro.bench.harness.observer_smoke` — the ``observed:``
wrapper vs the bare engine on the Fig. 10 sparse workload (the
acceptance instance), the same instance over the index-free ``bfs``
engine, and the DSRG graph — and merges the result into
``BENCH_query.json`` under the ``"observers"`` key, next to the bare
query-engine numbers of ``bench_query_smoke.py``.

The pinned floor: the observer stack must answer at least
``SPARSE_O1_FLOOR`` of the sparse workload's queries in O(1) without
touching the wrapped engine.  CI runs this file in the bench-smoke
job and fails when the ratio regresses.

Run it either way::

    python benchmarks/bench_observer_smoke.py         # standalone
    PYTHONPATH=src python -m pytest benchmarks/bench_observer_smoke.py

``REPRO_BENCH_SCALE`` scales the workload as for the full bench suite.
"""

from __future__ import annotations

import os
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
OUTPUT = REPO_ROOT / "BENCH_query.json"

try:
    from repro.bench.benchfile import merge_bench_json
    from repro.bench.harness import observer_smoke
except ImportError:  # standalone run without an installed package
    sys.path.insert(0, str(REPO_ROOT / "src"))
    from repro.bench.benchfile import merge_bench_json
    from repro.bench.harness import observer_smoke

SCALE = float(os.environ.get("REPRO_BENCH_SCALE", "1.0"))

#: the acceptance gate — share of the sparse workload the observer
#: stack must answer without touching the wrapped engine
SPARSE_O1_FLOOR = 0.95


def run_smoke(scale: float = SCALE) -> dict:
    """Measure once and merge into ``BENCH_query.json``."""
    result = observer_smoke(scale)
    merge_bench_json(OUTPUT, {"observers": result})
    return result


def test_observer_smoke_writes_bench_json():
    result = run_smoke()
    assert OUTPUT.exists()
    for row in result["workloads"]:
        # the chain may never change an answer, on any workload
        assert row["answers_match"], row["workload"]
        assert 0.0 <= row["o1_answer_ratio"] <= 1.0
        assert row["bare_qps"] > 0 and row["observed_qps"] > 0
    assert result["sparse_o1_ratio"] >= SPARSE_O1_FLOOR
    # the index-free engine is where skipping the fallback pays:
    # a regression to ~1x means the chain stopped filtering
    bfs_rows = [row for row in result["workloads"]
                if row["engine"] == "bfs"]
    assert bfs_rows and bfs_rows[0]["speedup"] > 2.0


def main() -> int:
    result = run_smoke()
    print(f"sparse O(1)-answer ratio: "
          f"{100 * result['sparse_o1_ratio']:.2f}% "
          f"(floor {100 * SPARSE_O1_FLOOR:.0f}%)")
    for row in result["workloads"]:
        print(f"  {row['workload']:<28} {row['engine']:<16} "
              f"ratio={100 * row['o1_answer_ratio']:.1f}% "
              f"bare={row['bare_qps']:,.0f} q/s "
              f"observed={row['observed_qps']:,.0f} q/s "
              f"({row['speedup']:.2f}x)")
    print(f"\nmerged into {OUTPUT}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
