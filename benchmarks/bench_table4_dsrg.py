"""Table 4 — Group II (DSRG): index size and build time."""

from __future__ import annotations

import pytest

from repro.bench.experiments import run_table4
from repro.bench.workloads import (
    GROUP23_METHODS,
    METHOD_BUILDERS,
    group2_dsrg_graph,
)


@pytest.fixture(scope="module")
def dsrg_graph(scale):
    return group2_dsrg_graph(scale).graph


@pytest.mark.parametrize("method", GROUP23_METHODS)
def test_build_dsrg(benchmark, method, dsrg_graph):
    index = benchmark.pedantic(
        lambda: METHOD_BUILDERS[method](dsrg_graph), rounds=1,
        iterations=1)
    benchmark.extra_info["size_words"] = index.size_words()


def test_report_table4(benchmark, scale, results_dir):
    report = benchmark.pedantic(lambda: run_table4(scale),
                                rounds=1, iterations=1)
    (results_dir / "table4.txt").write_text(report, encoding="utf-8")
