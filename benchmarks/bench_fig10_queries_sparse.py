"""Fig. 10 — Group I (sparse graphs): accumulated query time.

Benchmarks one full random-query batch per method over the middle
sparse graph, then regenerates the paper's Fig. 10 series into
``benchmarks/results/fig10.txt``.
"""

from __future__ import annotations

import pytest

from repro.bench.experiments import run_fig10
from repro.bench.harness import build_index, random_queries
from repro.bench.workloads import QUERY_METHODS, group1_graphs, query_counts


@pytest.fixture(scope="module")
def sparse_graph(scale):
    return group1_graphs(scale)[2].graph


@pytest.fixture(scope="module")
def query_batch(scale, sparse_graph):
    return random_queries(sparse_graph, max(query_counts(scale)), seed=23)


@pytest.mark.parametrize("method", QUERY_METHODS)
def test_query_batch_sparse(benchmark, method, sparse_graph, query_batch):
    index = build_index(method, sparse_graph).index

    def run() -> int:
        hits = 0
        for source, target in query_batch:
            if index.is_reachable(source, target):
                hits += 1
        return hits

    benchmark(run)


def test_report_fig10(benchmark, scale, results_dir):
    report = benchmark.pedantic(lambda: run_fig10(scale),
                                rounds=1, iterations=1)
    (results_dir / "fig10.txt").write_text(report, encoding="utf-8")
