"""Disabled-mode overhead gate for the observability layer.

The claim in ``docs/OBSERVABILITY.md`` (and the README) is that the
instrumented library costs **under 2 %** when the ``OBS`` registry is
off — its default state.  This benchmark enforces the claim against
the pre-v2 seed revision recorded in
``benchmarks/results/obs_overhead.md``:

1. the seed commit is checked out into a scratch ``git worktree``;
2. the same worker (build the Table-1 sparse series end to end, then
   answer a fixed batch of reachability queries per graph) runs as a
   subprocess against both trees, **interleaved** A/B/A/B so machine
   drift hits both sides equally;
3. the gate fails when the instrumented median exceeds the seed
   median by more than the budget (2 %, ``REPRO_OVERHEAD_LIMIT``).

Without git (or with a shallow clone missing the seed commit) the
gate skips instead of failing — it is a perf regression net, not a
portability requirement.

Run it either way::

    python benchmarks/bench_obs_overhead.py           # standalone
    PYTHONPATH=src python -m pytest benchmarks/bench_obs_overhead.py

``REPRO_BENCH_SCALE`` scales the workload, ``REPRO_OVERHEAD_RUNS``
the interleaved run count, as for the rest of the bench suite.
"""

from __future__ import annotations

import json
import os
import re
import shutil
import statistics
import subprocess
import sys
import tempfile
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
RESULTS = REPO_ROOT / "benchmarks" / "results" / "obs_overhead.md"
SEED_LINE = re.compile(r"<!--\s*seed-rev:\s*([0-9a-f]{7,40})\s*-->")

SCALE = float(os.environ.get("REPRO_BENCH_SCALE", "1.0"))
RUNS = int(os.environ.get("REPRO_OVERHEAD_RUNS", "3"))
SAMPLES = int(os.environ.get("REPRO_OVERHEAD_SAMPLES", "5"))
LIMIT = float(os.environ.get("REPRO_OVERHEAD_LIMIT", "0.02"))


def _worker(scale: float, samples: int) -> None:
    """Measure one tree (selected by PYTHONPATH); prints JSON."""
    import time

    from repro.bench.harness import random_queries
    from repro.bench.workloads import group1_graphs
    from repro.core.index import ChainIndex

    workloads = group1_graphs(scale)
    queries = [random_queries(workload.graph, 2048, seed=29)
               for workload in workloads]
    # one untimed warm-up pass (imports, allocator, branch caches)
    for workload, batch in zip(workloads, queries):
        ChainIndex.build(workload.graph).is_reachable_many(batch)
    laps = []
    for _ in range(samples):
        start = time.perf_counter()
        for workload, batch in zip(workloads, queries):
            index = ChainIndex.build(workload.graph)
            index.is_reachable_many(batch)
        laps.append(time.perf_counter() - start)
    print(json.dumps({"median": statistics.median(laps),
                      "samples": laps}))


def seed_revision() -> str:
    """The machine-readable seed commit pinned in the results doc."""
    match = SEED_LINE.search(RESULTS.read_text(encoding="utf-8"))
    if match is None:
        raise RuntimeError(f"no '<!-- seed-rev: ... -->' line in "
                           f"{RESULTS}")
    return match.group(1)


def _git(*args: str) -> subprocess.CompletedProcess:
    return subprocess.run(["git", *args], cwd=REPO_ROOT,
                          capture_output=True, text=True, timeout=300)


def _run_worker(src: Path, scale: float, samples: int) -> float:
    env = dict(os.environ, PYTHONPATH=str(src))
    completed = subprocess.run(
        [sys.executable, str(Path(__file__).resolve()), "--worker",
         str(scale), str(samples)],
        capture_output=True, text=True, timeout=1800, check=True,
        env=env)
    return json.loads(completed.stdout)["median"]


def measure_overhead(scale: float = SCALE, runs: int = RUNS,
                     samples: int = SAMPLES) -> dict | None:
    """Interleaved A/B medians; ``None`` when the gate cannot run."""
    if shutil.which("git") is None:
        print("SKIP: git not available")
        return None
    seed = seed_revision()
    if _git("rev-parse", "--verify", f"{seed}^{{commit}}").returncode:
        print(f"SKIP: seed commit {seed} not in this clone "
              f"(shallow checkout?)")
        return None
    scratch = Path(tempfile.mkdtemp(prefix="repro-obs-seed-"))
    worktree = scratch / "seed"
    added = _git("worktree", "add", "--detach", str(worktree), seed)
    if added.returncode:
        shutil.rmtree(scratch, ignore_errors=True)
        print(f"SKIP: could not create seed worktree: "
              f"{added.stderr.strip()}")
        return None
    try:
        seed_medians, instrumented_medians = [], []
        for run in range(runs):
            seed_medians.append(
                _run_worker(worktree / "src", scale, samples))
            instrumented_medians.append(
                _run_worker(REPO_ROOT / "src", scale, samples))
            print(f"run {run + 1}/{runs}: seed "
                  f"{seed_medians[-1]:.4f} s, instrumented "
                  f"{instrumented_medians[-1]:.4f} s")
    finally:
        _git("worktree", "remove", "--force", str(worktree))
        shutil.rmtree(scratch, ignore_errors=True)
    seed_median = statistics.median(seed_medians)
    instrumented_median = statistics.median(instrumented_medians)
    return {
        "seed_rev": seed,
        "seed_medians": seed_medians,
        "instrumented_medians": instrumented_medians,
        "seed_median": seed_median,
        "instrumented_median": instrumented_median,
        "overhead": instrumented_median / seed_median - 1.0,
    }


def test_disabled_overhead_stays_under_budget():
    import pytest

    result = measure_overhead()
    if result is None:
        pytest.skip("seed revision unavailable (no git or shallow "
                    "clone)")
    print(f"\nseed {result['seed_median']:.4f} s vs instrumented "
          f"{result['instrumented_median']:.4f} s -> "
          f"{100 * result['overhead']:+.2f} % (budget "
          f"{100 * LIMIT:.0f} %)")
    assert result["overhead"] <= LIMIT, (
        f"disabled-mode overhead {100 * result['overhead']:+.2f} % "
        f"exceeds the {100 * LIMIT:.0f} % budget vs seed "
        f"{result['seed_rev']}")


def main() -> int:
    if len(sys.argv) >= 2 and sys.argv[1] == "--worker":
        _worker(float(sys.argv[2]), int(sys.argv[3]))
        return 0
    result = measure_overhead()
    if result is None:
        return 0
    print(json.dumps(result, indent=2))
    over = result["overhead"] > LIMIT
    print(f"overhead {100 * result['overhead']:+.2f} % "
          f"({'FAIL' if over else 'ok'}, budget {100 * LIMIT:.0f} %)")
    return 1 if over else 0


if __name__ == "__main__":
    sys.exit(main())
