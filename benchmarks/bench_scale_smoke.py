"""Perf smoke for million-node scale: concat builds + varint labels.

Builds one large scale-family graph (a narrow chain cover over many
strata — the shape that punishes per-stratum matching) under both
chain engines, prices the same index under both label codecs, then
persists the compressed index as a format-v4 file, reloads it and
serves a query burst cross-checked against BFS.  Writes the result to
``BENCH_scale.json`` at the repository root (merged section-wise, so
the large-run trajectory entries survive re-runs).

Two acceptance gates:

* the varint codec must hold label memory to at most 0.6x the flat
  CSR bytes (deterministic: same graph + cover = same bytes);
* chain-concat must build at least 2x faster than chain-stratified
  (min-of-N CPU time, noise-robust).

Run it either way::

    python benchmarks/bench_scale_smoke.py            # standalone
    PYTHONPATH=src python -m pytest benchmarks/bench_scale_smoke.py

``REPRO_BENCH_SCALE`` scales the workload as for the full bench suite.
"""

from __future__ import annotations

import os
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
OUTPUT = REPO_ROOT / "BENCH_scale.json"

try:
    from repro.bench.benchfile import merge_bench_json
    from repro.bench.scale import scale_engine_smoke
except ImportError:  # standalone run without an installed package
    sys.path.insert(0, str(REPO_ROOT / "src"))
    from repro.bench.benchfile import merge_bench_json
    from repro.bench.scale import scale_engine_smoke

SCALE = float(os.environ.get("REPRO_BENCH_SCALE", "1.0"))


def run_smoke(scale: float = SCALE) -> dict:
    """Measure once and merge into ``BENCH_scale.json``."""
    result = scale_engine_smoke(scale)
    merge_bench_json(OUTPUT, {"scale_smoke": result})
    return result


def test_scale_smoke_writes_bench_json():
    result = run_smoke()
    assert OUTPUT.exists()
    assert result["concat_build_seconds"] > 0
    assert result["stratified_build_seconds"] > 0
    # the reloaded v4 compressed index answered the burst like BFS —
    # the benchmark doubles as a build/persist/serve equivalence check
    assert result["query_bfs_mismatches"] == 0, (
        f"reloaded compressed index diverged from BFS: {result}")
    assert result["file_codec"] == "compressed"
    assert result["file_version"] == 4
    # gate 1 (deterministic): varint labels must stay within 0.6x of
    # the flat CSR footprint
    assert result["compression_ratio"] <= 0.6, (
        f"compressed labels only "
        f"{result['compression_ratio']:.3f}x flat: {result}")
    # gate 2 (min-of-N CPU time): the concatenation cover must build
    # at least 2x faster than the per-stratum matching pipeline
    assert result["build_speedup"] >= 2.0, (
        f"chain-concat only {result['build_speedup']:.2f}x "
        f"chain-stratified: {result}")


def main() -> int:
    result = run_smoke()
    width = max(len(key) for key in result)
    for key in sorted(result):
        print(f"{key:<{width}}  {result[key]}")
    print(f"\nwrote {OUTPUT}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
