"""Ablation A — chain-cover algorithm: chain count and decomposition
time for stratified (the paper), exact closure matching, and the DD
heuristic, across all four workload families."""

from __future__ import annotations

import pytest

from repro.baselines.jagadish import jagadish_chain_cover
from repro.bench.experiments import run_ablation_chain_methods
from repro.bench.workloads import group2_dsrg_graph
from repro.core.closure_cover import closure_chain_cover
from repro.core.stratified import stratified_chain_cover

COVERS = {
    "stratified": stratified_chain_cover,
    "closure": closure_chain_cover,
    "jagadish": jagadish_chain_cover,
}


@pytest.fixture(scope="module")
def dsrg_graph(scale):
    return group2_dsrg_graph(scale).graph


@pytest.mark.parametrize("cover_name", sorted(COVERS))
def test_decompose_dsrg(benchmark, cover_name, dsrg_graph):
    cover = benchmark.pedantic(lambda: COVERS[cover_name](dsrg_graph),
                               rounds=1, iterations=1)
    benchmark.extra_info["chains"] = cover.num_chains


def test_report_ablation_chain_methods(benchmark, scale, results_dir):
    report = benchmark.pedantic(
        lambda: run_ablation_chain_methods(scale), rounds=1, iterations=1)
    (results_dir / "ablation_chain_methods.txt").write_text(
        report, encoding="utf-8")
