"""Perf smoke for the serving layer: micro-batching vs single queries.

Stands up the TCP reachability service over the Fig. 10 middle sparse
workload and measures sequential single-query, concurrent
(micro-batched), cached and bulk throughput end to end, writing the
result to ``BENCH_serve.json`` at the repository root so the serving
trajectory has comparable data points across commits.  The ``workers``
section adds the multi-process WorkerPool scaling sweep (2 and 4
workers vs the workers=0 baseline under the same multi-process client
harness) plus the zero-downtime swap probe; its speedup gates are
conditional on ``os.cpu_count()`` because a one-core box cannot show
multi-process speedup.

Run it either way::

    python benchmarks/bench_serve_smoke.py            # standalone
    PYTHONPATH=src python -m pytest benchmarks/bench_serve_smoke.py

``REPRO_BENCH_SCALE`` scales the workload as for the full bench suite.
"""

from __future__ import annotations

import os
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
OUTPUT = REPO_ROOT / "BENCH_serve.json"

try:
    from repro.bench.benchfile import merge_bench_json
    from repro.bench.serving import serve_engine_smoke
except ImportError:  # standalone run without an installed package
    sys.path.insert(0, str(REPO_ROOT / "src"))
    from repro.bench.benchfile import merge_bench_json
    from repro.bench.serving import serve_engine_smoke

SCALE = float(os.environ.get("REPRO_BENCH_SCALE", "1.0"))


def run_smoke(scale: float = SCALE) -> dict:
    """Measure once and write ``BENCH_serve.json``.

    Written through :func:`merge_bench_json`, so top-level sections
    owned by other runners survive a re-run instead of being
    clobbered.
    """
    result = serve_engine_smoke(scale, worker_counts=(2, 4))
    merge_bench_json(OUTPUT, dict(result))
    return result


def test_serve_smoke_writes_bench_json():
    result = run_smoke()
    assert OUTPUT.exists()
    assert result["sequential_qps"] > 0
    assert result["concurrent_qps"] > 0
    assert result["bulk_qps"] > 0
    # the acceptance gate: coalescing concurrent single-query clients
    # must beat the one-request-at-a-time baseline by 1.5x or more
    assert result["batching_speedup"] >= 1.5
    # the write burst was promoted by a live rebuild-and-swap
    assert result["swap_count"] >= 1
    assert result["epoch"] >= 1
    # the second concurrent pass re-used the epoch-keyed cache
    assert result["cache_hit_rate"] > 0
    # tail latency from the server's streaming histograms
    assert (result["p50_ms"] <= result["p99_ms"] <= result["p999_ms"])
    # exact client-side summary from the shared repro.obs helper
    client = result["client_latency"]
    assert client["count"] >= 32
    assert client["p50"] <= client["p99"] <= client["p999"]
    # per answer-class histogram summaries rode along in stats
    classes = result["latency_classes"]
    assert classes, "no per-class latency summaries recorded"
    assert set(classes) <= {"positive", "negative", "prefilter_hit",
                            "cache_hit", "batch"}
    assert all(summary["count"] >= 1 for summary in classes.values())
    # the multi-process scaling sweep ran and the swap lost nothing
    pool = result["workers"]
    assert pool["cpus"] == os.cpu_count()
    assert pool["baseline_qps"] > 0
    assert set(pool["scaling"]) == {"2", "4"}
    assert all(qps > 0 for qps in pool["scaling"].values())
    swap = pool["zero_downtime"]
    assert swap["failures"] == 0, (
        f"queries failed during the live swap: {swap}")
    assert swap["answered"] == swap["queries"]
    assert swap["epoch_after"] > swap["epoch_before"]
    # speedup gates only where the hardware can express a speedup
    if os.cpu_count() >= 2:
        assert pool["speedup"]["2"] >= 1.6, (
            f"2-worker pool only {pool['speedup']['2']:.2f}x baseline")
    if os.cpu_count() >= 4:
        assert pool["speedup"]["4"] >= 3.0, (
            f"4-worker pool only {pool['speedup']['4']:.2f}x baseline")


def main() -> int:
    result = run_smoke()
    width = max(len(key) for key in result)
    for key in sorted(result):
        print(f"{key:<{width}}  {result[key]}")
    print(f"\nwrote {OUTPUT}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
