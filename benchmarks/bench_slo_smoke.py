"""Perf smoke: workload-zoo replay graded against per-class SLOs.

Runs :func:`repro.bench.replay.slo_smoke` — every zoo family
(sparse / citation / layered / deep-chain / dense) replayed in closed
loop against a live TCP server, plus one open-loop pass — and writes
the per-class p50/p99/p999 ladder, compliance ratios and SLO verdicts
to ``BENCH_slo.json`` at the repository root.

The gate: CI fails when any family breaches an objective
(``healthy: false``).  The default objectives
(:data:`repro.bench.replay.DEFAULT_OBJECTIVES`) are sized for the
1-CPU CI runner — they catch a serving-path catastrophe, not noise.
The negative test pins the gate's teeth: a deliberately impossible
objective must produce a breach.

Run it either way::

    python benchmarks/bench_slo_smoke.py              # standalone
    PYTHONPATH=src python -m pytest benchmarks/bench_slo_smoke.py

``REPRO_BENCH_SCALE`` scales the workload as for the full bench suite.
"""

from __future__ import annotations

import os
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
OUTPUT = REPO_ROOT / "BENCH_slo.json"

try:
    from repro.bench.benchfile import merge_bench_json
    from repro.bench.replay import (
        DEFAULT_OBJECTIVES,
        SMOKE_FAMILIES,
        evaluate_objectives,
        replay_closed_loop,
        slo_smoke,
        synthetic_schedule,
    )
except ImportError:  # standalone run without an installed package
    sys.path.insert(0, str(REPO_ROOT / "src"))
    from repro.bench.benchfile import merge_bench_json
    from repro.bench.replay import (
        DEFAULT_OBJECTIVES,
        SMOKE_FAMILIES,
        evaluate_objectives,
        replay_closed_loop,
        slo_smoke,
        synthetic_schedule,
    )

SCALE = float(os.environ.get("REPRO_BENCH_SCALE", "1.0"))

_CACHED: dict | None = None


def run_smoke(scale: float = SCALE) -> dict:
    """Measure once and write ``BENCH_slo.json`` (merge-preserving)."""
    global _CACHED
    if _CACHED is None:
        _CACHED = slo_smoke(scale)
        merge_bench_json(OUTPUT, dict(_CACHED))
    return _CACHED


def test_slo_smoke_writes_bench_json():
    report = run_smoke()
    assert OUTPUT.exists()
    assert len(report["families"]) >= 4


def test_every_family_reports_the_class_ladder():
    report = run_smoke()
    for name, family in report["families"].items():
        assert family["requests"] > 0, name
        for klass, summary in family["classes"].items():
            for key in ("count", "p50_ms", "p99_ms", "p999_ms",
                        "compliance_ratio"):
                assert key in summary, (name, klass, key)


def test_the_gate_all_objectives_met():
    """The CI gate: any breached objective fails the job."""
    report = run_smoke()
    breached = [
        (name, row["spec"])
        for name, family in report["families"].items()
        for row in family["slo"] if not row["compliant"]
    ]
    assert report["healthy"], f"SLO breaches: {breached}"


def test_negative_a_tightened_objective_breaches():
    """The gate has teeth: an impossible objective must fail.

    Replays one small family against ``positive p99 < 1ns`` — no real
    server answers in a nanosecond, so the verdict must be a breach
    and the would-be gate value ``healthy`` must be ``False``.
    """
    from repro.bench.workloads import ZOO_FAMILIES, build_zoo_graph
    from repro.service import IndexManager, start_in_thread

    spec = ZOO_FAMILIES["sparse"]
    graph = build_zoo_graph(spec, min(SCALE, 0.25))
    schedule = synthetic_schedule(spec, graph, count=60, seed=3)
    manager = IndexManager.from_graph(graph)
    with start_in_thread(manager) as handle:
        host, port = handle.address
        result = replay_closed_loop(host, port, schedule,
                                    concurrency=2)
    verdict = evaluate_objectives(
        result, ["positive p99 < 1ns", "availability >= 99%"])
    tightened = [row for row in verdict["objectives"]
                 if row["spec"] == "positive p99 < 1ns"]
    assert tightened and not tightened[0]["compliant"]
    assert not verdict["healthy"]
    assert verdict["breach_count"] >= 1 and verdict["breaches"]


def main() -> int:
    report = run_smoke()
    print(f"scale {report['scale']}, families "
          f"{', '.join(sorted(report['families']))}, "
          f"objectives: {'; '.join(DEFAULT_OBJECTIVES)}")
    for name in SMOKE_FAMILIES:
        family = report["families"][name]
        status = "ok" if family["healthy"] else "BREACH"
        print(f"  {name:>10}: {family['requests']} req @ "
              f"{family['qps']:,.0f} qps — {status}")
        for klass, summary in family["classes"].items():
            print(f"    {klass:>13}: n={summary['count']:<5} "
                  f"p50={summary['p50_ms']:.2f}ms "
                  f"p99={summary['p99_ms']:.2f}ms "
                  f"p999={summary['p999_ms']:.2f}ms "
                  f"compliance={100 * summary['compliance_ratio']:.1f}%")
    open_loop = report["open_loop"]
    print(f"  open loop: {open_loop['achieved_qps']:,.0f} qps achieved "
          f"(target {open_loop['target_qps']:,.0f})")
    print(f"\nwrote {OUTPUT}")
    return 0 if report["healthy"] else 1


if __name__ == "__main__":
    raise SystemExit(main())
