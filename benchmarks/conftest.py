"""Shared fixtures for the benchmark suite.

Set ``REPRO_BENCH_SCALE`` to shrink or grow every workload (default
1.0 — the scaled-down sizes documented in EXPERIMENTS.md).  Paper-style
report files land in ``benchmarks/results/``.
"""

from __future__ import annotations

import os
from pathlib import Path

import pytest

SCALE = float(os.environ.get("REPRO_BENCH_SCALE", "1.0"))
RESULTS_DIR = Path(__file__).parent / "results"


@pytest.fixture(scope="session")
def scale() -> float:
    return SCALE


@pytest.fixture(scope="session")
def results_dir() -> Path:
    RESULTS_DIR.mkdir(parents=True, exist_ok=True)
    return RESULTS_DIR
