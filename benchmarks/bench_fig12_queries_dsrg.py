"""Fig. 12 — Group II (DSRG): accumulated query time."""

from __future__ import annotations

import pytest

from repro.bench.experiments import run_fig12
from repro.bench.harness import build_index, random_queries
from repro.bench.workloads import (
    QUERY_METHODS,
    group2_dsrg_graph,
    query_counts,
)


@pytest.fixture(scope="module")
def dsrg_graph(scale):
    return group2_dsrg_graph(scale).graph


@pytest.fixture(scope="module")
def query_batch(scale, dsrg_graph):
    return random_queries(dsrg_graph, max(query_counts(scale)), seed=31)


@pytest.mark.parametrize("method", QUERY_METHODS)
def test_query_batch_dsrg(benchmark, method, dsrg_graph, query_batch):
    index = build_index(method, dsrg_graph).index

    def run() -> int:
        hits = 0
        for source, target in query_batch:
            if index.is_reachable(source, target):
                hits += 1
        return hits

    benchmark(run)


def test_report_fig12(benchmark, scale, results_dir):
    report = benchmark.pedantic(lambda: run_fig12(scale),
                                rounds=1, iterations=1)
    (results_dir / "fig12.txt").write_text(report, encoding="utf-8")
