"""Fig. 11 — Group II (DSG): accumulated query time."""

from __future__ import annotations

import pytest

from repro.bench.experiments import run_fig11
from repro.bench.harness import build_index, random_queries
from repro.bench.workloads import (
    QUERY_METHODS,
    group2_dsg_graph,
    query_counts,
)


@pytest.fixture(scope="module")
def dsg_graph(scale):
    return group2_dsg_graph(scale).graph


@pytest.fixture(scope="module")
def query_batch(scale, dsg_graph):
    return random_queries(dsg_graph, max(query_counts(scale)), seed=29)


@pytest.mark.parametrize("method", QUERY_METHODS)
def test_query_batch_dsg(benchmark, method, dsg_graph, query_batch):
    index = build_index(method, dsg_graph).index

    def run() -> int:
        hits = 0
        for source, target in query_batch:
            if index.is_reachable(source, target):
                hits += 1
        return hits

    benchmark(run)


def test_report_fig11(benchmark, scale, results_dir):
    report = benchmark.pedantic(lambda: run_fig11(scale),
                                rounds=1, iterations=1)
    (results_dir / "fig11.txt").write_text(report, encoding="utf-8")
