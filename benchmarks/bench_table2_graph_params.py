"""Table 2 — Group II graph parameters (generator statistics)."""

from __future__ import annotations

from repro.bench.experiments import run_table2
from repro.graph.generators import graph_stats
from repro.bench.workloads import group2_dsg_graph, group2_dsrg_graph


def test_dsg_generation(benchmark, scale):
    workload = benchmark(lambda: group2_dsg_graph(scale))
    assert workload.graph.num_nodes > 0


def test_dsrg_generation(benchmark, scale):
    workload = benchmark(lambda: group2_dsrg_graph(scale))
    assert workload.graph.num_nodes > 0


def test_graph_stats_dsg(benchmark, scale):
    graph = group2_dsg_graph(scale).graph
    stats = benchmark(lambda: graph_stats(graph, seed=1))
    assert stats.num_nodes == graph.num_nodes


def test_report_table2(benchmark, scale, results_dir):
    report = benchmark.pedantic(lambda: run_table2(scale),
                                rounds=1, iterations=1)
    (results_dir / "table2.txt").write_text(report, encoding="utf-8")
