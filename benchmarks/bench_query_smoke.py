"""Perf smoke: the query engine's headline numbers, in seconds not minutes.

Builds the chain index over the Fig. 10 middle sparse workload, then
measures build time, scalar vs batch query throughput, label bytes and
the pre-filter's share of negative queries, writing the result to
``BENCH_query.json`` at the repository root so the perf trajectory has
comparable data points across commits.

Run it either way::

    python benchmarks/bench_query_smoke.py            # standalone
    PYTHONPATH=src python -m pytest benchmarks/bench_query_smoke.py

``REPRO_BENCH_SCALE`` scales the workload as for the full bench suite.
"""

from __future__ import annotations

import os
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
OUTPUT = REPO_ROOT / "BENCH_query.json"

try:
    from repro.bench.benchfile import merge_bench_json
    from repro.bench.harness import query_engine_smoke
except ImportError:  # standalone run without an installed package
    sys.path.insert(0, str(REPO_ROOT / "src"))
    from repro.bench.benchfile import merge_bench_json
    from repro.bench.harness import query_engine_smoke

SCALE = float(os.environ.get("REPRO_BENCH_SCALE", "1.0"))


def run_smoke(scale: float = SCALE) -> dict:
    """Measure once and write ``BENCH_query.json``.

    Sections owned by other runners (``"observers"`` from
    ``bench_observer_smoke.py``, or anything newer) are carried over
    by :func:`merge_bench_json`, so the smoke runners can refresh the
    file in any order.
    """
    result = query_engine_smoke(scale)
    merge_bench_json(OUTPUT, dict(result))
    return result


def test_query_smoke_writes_bench_json():
    result = run_smoke()
    assert OUTPUT.exists()
    assert result["build_seconds"] > 0
    assert result["scalar_qps"] > 0
    assert result["batch_qps"] > 0
    assert result["label_bytes"] > 0
    assert 0 <= result["prefilter_hits"] <= result["negative_queries"]
    # The batch engine exists to be faster; flag a regression loudly
    # but leave the hard 2x acceptance gate to the recorded JSON.
    assert result["batch_speedup"] > 1.0


def main() -> int:
    result = run_smoke()
    width = max(len(key) for key in result)
    for key in sorted(result):
        print(f"{key:<{width}}  {result[key]}")
    print(f"\nwrote {OUTPUT}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
