"""Table 3 — Group II (DSG): index size and build time (no 2-hop)."""

from __future__ import annotations

import pytest

from repro.bench.experiments import run_table3
from repro.bench.workloads import (
    GROUP23_METHODS,
    METHOD_BUILDERS,
    group2_dsg_graph,
)


@pytest.fixture(scope="module")
def dsg_graph(scale):
    return group2_dsg_graph(scale).graph


@pytest.mark.parametrize("method", GROUP23_METHODS)
def test_build_dsg(benchmark, method, dsg_graph):
    index = benchmark.pedantic(
        lambda: METHOD_BUILDERS[method](dsg_graph), rounds=1,
        iterations=1)
    benchmark.extra_info["size_words"] = index.size_words()


def test_report_table3(benchmark, scale, results_dir):
    report = benchmark.pedantic(lambda: run_table3(scale),
                                rounds=1, iterations=1)
    (results_dir / "table3.txt").write_text(report, encoding="utf-8")
