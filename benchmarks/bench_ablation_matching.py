"""Ablation C — Hopcroft–Karp vs Kuhn augmentation, the paper's choice
of matching subroutine (Section III.B)."""

from __future__ import annotations

import random

import pytest

from repro.bench.experiments import run_ablation_matching
from repro.matching.bipartite import BipartiteGraph
from repro.matching.hopcroft_karp import hopcroft_karp, kuhn_matching


def _random_bipartite(side: int, degree: int, seed: int) -> BipartiteGraph:
    rng = random.Random(seed)
    graph = BipartiteGraph(side, side)
    for top in range(side):
        for bottom in rng.sample(range(side), degree):
            graph.add_edge(top, bottom)
    return graph


@pytest.mark.parametrize("algorithm", ["hopcroft_karp", "kuhn"])
def test_matching_speed(benchmark, algorithm, scale):
    side = max(20, int(600 * scale))
    graph = _random_bipartite(side, 4, seed=43)
    runner = hopcroft_karp if algorithm == "hopcroft_karp" else kuhn_matching
    matching = benchmark(lambda: runner(graph))
    benchmark.extra_info["matching_size"] = matching.size()


def test_report_ablation_matching(benchmark, scale, results_dir):
    report = benchmark.pedantic(lambda: run_ablation_matching(scale),
                                rounds=1, iterations=1)
    (results_dir / "ablation_matching.txt").write_text(report,
                                                       encoding="utf-8")
