"""Perf smoke for dynamic maintenance: in-place deletes vs rebuilds.

Drives two IndexManagers through the same sustained mixed read/write
stream (edge removal + re-insertion + a query burst per round, every
answer fresh): the ``dynamic-tol`` total-order 2-hop shadow repairs
its labels in place, while the ``chain-stratified`` path must
rebuild-and-swap after each write burst.  Writes the result to
``BENCH_dynamic.json`` at the repository root so the dynamic-engine
trajectory has comparable data points across commits.

Run it either way::

    python benchmarks/bench_dynamic_smoke.py          # standalone
    PYTHONPATH=src python -m pytest benchmarks/bench_dynamic_smoke.py

``REPRO_BENCH_SCALE`` scales the workload as for the full bench suite.
"""

from __future__ import annotations

import json
import os
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
OUTPUT = REPO_ROOT / "BENCH_dynamic.json"

try:
    from repro.bench.dynamic import dynamic_engine_smoke
except ImportError:  # standalone run without an installed package
    sys.path.insert(0, str(REPO_ROOT / "src"))
    from repro.bench.dynamic import dynamic_engine_smoke

SCALE = float(os.environ.get("REPRO_BENCH_SCALE", "1.0"))


def run_smoke(scale: float = SCALE) -> dict:
    """Measure once and write ``BENCH_dynamic.json``."""
    result = dynamic_engine_smoke(scale)
    OUTPUT.write_text(json.dumps(result, indent=2, sort_keys=True)
                      + "\n", encoding="utf-8")
    return result


def test_dynamic_smoke_writes_bench_json():
    result = run_smoke()
    assert OUTPUT.exists()
    assert result["dynamic_tol_ops_per_sec"] > 0
    assert result["rebuild_swap_ops_per_sec"] > 0
    # both managers answered every round identically — the benchmark
    # doubles as an end-to-end equivalence check under deletions
    assert result["mismatched_rounds"] == 0, (
        f"dynamic-tol diverged from the packed index: {result}")
    # the static path really paid one swap per round
    assert result["rebuild_swaps"] >= result["rounds"]
    # the acceptance gate: in-place maintenance must sustain at least
    # 2x the mixed-workload throughput of rebuild-and-swap
    assert result["speedup"] >= 2.0, (
        f"dynamic-tol only {result['speedup']:.2f}x rebuild-and-swap")


def main() -> int:
    result = run_smoke()
    width = max(len(key) for key in result)
    for key in sorted(result):
        print(f"{key:<{width}}  {result[key]}")
    print(f"\nwrote {OUTPUT}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
