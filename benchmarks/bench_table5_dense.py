"""Table 5 — Group III (dense 0.25-DAG): index size and build time."""

from __future__ import annotations

import pytest

from repro.bench.experiments import run_table5
from repro.bench.workloads import (
    GROUP23_METHODS,
    METHOD_BUILDERS,
    group3_dense_graph,
)


@pytest.fixture(scope="module")
def dense_graph(scale):
    return group3_dense_graph(scale).graph


@pytest.mark.parametrize("method", GROUP23_METHODS)
def test_build_dense(benchmark, method, dense_graph):
    index = benchmark.pedantic(
        lambda: METHOD_BUILDERS[method](dense_graph), rounds=1,
        iterations=1)
    benchmark.extra_info["size_words"] = index.size_words()


def test_report_table5(benchmark, scale, results_dir):
    report = benchmark.pedantic(lambda: run_table5(scale),
                                rounds=1, iterations=1)
    (results_dir / "table5.txt").write_text(report, encoding="utf-8")
