"""Table 1 — Group I (sparse graphs): index size and build time.

Benchmarks every method's build over one representative sparse graph,
then regenerates the paper's full Table 1 (averaged over the series of
five graphs) into ``benchmarks/results/table1.txt``.
"""

from __future__ import annotations

import pytest

from repro.baselines.two_hop import TwoHopIndex
from repro.bench.experiments import run_table1
from repro.bench.workloads import (
    GROUP1_METHODS,
    METHOD_BUILDERS,
    group1_graphs,
)


@pytest.fixture(scope="module")
def sparse_graph(scale):
    return group1_graphs(scale)[2].graph


@pytest.mark.parametrize("method", GROUP1_METHODS)
def test_build_sparse(benchmark, method, sparse_graph):
    if method == "2-hop":
        # The paper's exhaustive-greedy 2-hop; see EXPERIMENTS.md.
        def builder():
            return TwoHopIndex.build(sparse_graph, lazy=False)
    else:
        def builder():
            return METHOD_BUILDERS[method](sparse_graph)
    index = benchmark.pedantic(builder, rounds=1, iterations=1)
    benchmark.extra_info["size_words"] = index.size_words()


def test_report_table1(benchmark, scale, results_dir):
    report = benchmark.pedantic(lambda: run_table1(scale),
                                rounds=1, iterations=1)
    (results_dir / "table1.txt").write_text(report, encoding="utf-8")
