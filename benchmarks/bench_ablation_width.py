"""Ablation B — width sensitivity: the O(b·n) space and O(log b) query
bounds in action on layered DAGs of controlled width."""

from __future__ import annotations

import pytest

from repro.bench.experiments import run_ablation_width
from repro.bench.harness import random_queries
from repro.core.index import ChainIndex
from repro.graph.generators import layered_random_dag


@pytest.mark.parametrize("layer_width", [4, 16, 64])
def test_build_by_width(benchmark, layer_width, scale):
    width = max(2, int(layer_width * scale))
    graph = layered_random_dag([width] * 12, 4.0 / width, seed=41)
    index = benchmark.pedantic(lambda: ChainIndex.build(graph),
                               rounds=1, iterations=1)
    benchmark.extra_info["chains"] = index.num_chains
    benchmark.extra_info["size_words"] = index.size_words()


@pytest.mark.parametrize("layer_width", [4, 64])
def test_query_by_width(benchmark, layer_width, scale):
    width = max(2, int(layer_width * scale))
    graph = layered_random_dag([width] * 12, 4.0 / width, seed=41)
    index = ChainIndex.build(graph)
    queries = random_queries(graph, 2000, seed=5)

    def run() -> int:
        return sum(1 for s, t in queries if index.is_reachable(s, t))

    benchmark(run)


def test_report_ablation_width(benchmark, scale, results_dir):
    report = benchmark.pedantic(lambda: run_ablation_width(scale),
                                rounds=1, iterations=1)
    (results_dir / "ablation_width.txt").write_text(report,
                                                    encoding="utf-8")
