"""Ablation D — incremental maintenance vs full rebuild.

The paper defers index maintenance to Jagadish's scheme; this ablation
measures what that buys: inserting a batch of edges one at a time into
:class:`DynamicChainIndex` against rebuilding the static index after
the batch.
"""

from __future__ import annotations

import random

import pytest

from repro.core.index import ChainIndex
from repro.core.maintenance import DynamicChainIndex
from repro.graph.generators import semi_random_dag


def _base_graph_and_batch(scale: float, seed: int = 47):
    nodes = max(50, int(1000 * scale))
    graph = semi_random_dag(nodes, nodes // 4, seed=seed)
    rng = random.Random(seed + 1)
    batch = []
    n = graph.num_nodes
    while len(batch) < max(10, nodes // 10):
        tail = rng.randrange(n - 1)
        head = rng.randrange(tail + 1, n)
        if not graph.has_edge(tail, head):
            batch.append((tail, head))
    return graph, batch


def test_incremental_insertions(benchmark, scale):
    graph, batch = _base_graph_and_batch(scale)

    def run():
        index = DynamicChainIndex.from_graph(graph)
        for tail, head in batch:
            index.add_edge(tail, head)
        return index

    index = benchmark(run)
    benchmark.extra_info["insertions"] = len(batch)
    assert index.is_reachable(*batch[0])


def test_full_rebuild_after_batch(benchmark, scale):
    graph, batch = _base_graph_and_batch(scale)
    extended = graph.copy()
    for tail, head in batch:
        extended.add_edge(tail, head)
    index = benchmark(lambda: ChainIndex.build(extended))
    assert index.is_reachable(extended.node_at(batch[0][0]),
                              extended.node_at(batch[0][1]))


@pytest.mark.parametrize("batch_share", [0.05, 0.25])
def test_insertion_throughput(benchmark, scale, batch_share):
    graph, _ = _base_graph_and_batch(scale)
    rng = random.Random(53)
    n = graph.num_nodes
    count = max(5, int(n * batch_share))
    pairs = []
    while len(pairs) < count:
        tail = rng.randrange(n - 1)
        head = rng.randrange(tail + 1, n)
        if not graph.has_edge(tail, head):
            pairs.append((tail, head))

    def run():
        index = DynamicChainIndex.from_graph(graph)
        inserted = 0
        for tail, head in pairs:
            try:
                index.add_edge(tail, head)
                inserted += 1
            except Exception:  # pragma: no cover - edges are forward
                pass
        return inserted

    inserted = benchmark(run)
    assert inserted == count
