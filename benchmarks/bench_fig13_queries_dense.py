"""Fig. 13 — Group III (dense 0.25-DAG): accumulated query time."""

from __future__ import annotations

import pytest

from repro.bench.experiments import run_fig13
from repro.bench.harness import build_index, random_queries
from repro.bench.workloads import (
    QUERY_METHODS,
    group3_dense_graph,
    query_counts,
)


@pytest.fixture(scope="module")
def dense_graph(scale):
    return group3_dense_graph(scale).graph


@pytest.fixture(scope="module")
def query_batch(scale, dense_graph):
    return random_queries(dense_graph, max(query_counts(scale)), seed=37)


@pytest.mark.parametrize("method", QUERY_METHODS)
def test_query_batch_dense(benchmark, method, dense_graph, query_batch):
    index = build_index(method, dense_graph).index

    def run() -> int:
        hits = 0
        for source, target in query_batch:
            if index.is_reachable(source, target):
                hits += 1
        return hits

    benchmark(run)


def test_report_fig13(benchmark, scale, results_dir):
    report = benchmark.pedantic(lambda: run_fig13(scale),
                                rounds=1, iterations=1)
    (results_dir / "fig13.txt").write_text(report, encoding="utf-8")
