"""Graph substrate: the directed-graph machinery everything else builds on."""

from repro.graph.components import weakly_connected_components
from repro.graph.digraph import DiGraph
from repro.graph.errors import (
    DuplicateNodeError,
    EdgeExistsError,
    GraphError,
    GraphFormatError,
    InvalidChainError,
    NodeNotFoundError,
    NotADAGError,
)
from repro.graph.scc import Condensation, condense, strongly_connected_components
from repro.graph.topology import (
    check_dag,
    find_cycle,
    is_dag,
    longest_path_length,
    roots,
    sinks,
    topological_order,
)

__all__ = [
    "DiGraph",
    "GraphError",
    "NodeNotFoundError",
    "DuplicateNodeError",
    "EdgeExistsError",
    "NotADAGError",
    "InvalidChainError",
    "GraphFormatError",
    "Condensation",
    "condense",
    "strongly_connected_components",
    "weakly_connected_components",
    "topological_order",
    "is_dag",
    "check_dag",
    "find_cycle",
    "roots",
    "sinks",
    "longest_path_length",
]
