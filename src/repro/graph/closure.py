"""Bitset transitive closure — the library's reference reachability oracle.

Rows of the reachability matrix are plain Python integers used as bit
vectors, so OR-ing a descendant set into a parent costs one bignum
operation instead of a Python-level loop.  This is what makes the exact
(closure-based) minimum chain cover and the 2-hop heuristic tractable at
benchmark scale, and it doubles as the ground-truth oracle for tests.

Only DAG input is accepted here; cyclic graphs must be condensed first
(:func:`repro.graph.scc.condense`), exactly as the paper prescribes.
"""

from __future__ import annotations

from repro.graph.digraph import DiGraph
from repro.graph.topology import topological_order_ids

__all__ = [
    "descendants_bitsets",
    "ancestors_bitsets",
    "transitive_closure_pairs",
    "reachable",
    "count_closure_edges",
]


def descendants_bitsets(graph: DiGraph, reflexive: bool = False) -> list[int]:
    """``bits[v]`` has bit ``w`` set iff ``v`` reaches ``w`` by a path.

    With ``reflexive=True`` every node also reaches itself.  Runs one
    pass in reverse topological order: a node's descendant set is the OR
    of its children's sets plus the children themselves.
    """
    order = topological_order_ids(graph)
    bits = [0] * graph.num_nodes
    for v in reversed(order):
        acc = 0
        for w in graph.successor_ids(v):
            acc |= bits[w] | (1 << w)
        bits[v] = acc
    if reflexive:
        for v in range(graph.num_nodes):
            bits[v] |= 1 << v
    return bits


def ancestors_bitsets(graph: DiGraph, reflexive: bool = False) -> list[int]:
    """``bits[v]`` has bit ``u`` set iff ``u`` reaches ``v`` by a path."""
    order = topological_order_ids(graph)
    bits = [0] * graph.num_nodes
    for v in order:
        acc = 0
        for u in graph.predecessor_ids(v):
            acc |= bits[u] | (1 << u)
        bits[v] = acc
    if reflexive:
        for v in range(graph.num_nodes):
            bits[v] |= 1 << v
    return bits


def transitive_closure_pairs(graph: DiGraph) -> set[tuple]:
    """All ordered pairs (u, v) of distinct node objects with u ⇝ v."""
    bits = descendants_bitsets(graph)
    pairs: set[tuple] = set()
    for v in range(graph.num_nodes):
        row = bits[v]
        tail = graph.node_at(v)
        while row:
            low = row & -row
            w = low.bit_length() - 1
            pairs.add((tail, graph.node_at(w)))
            row ^= low
    return pairs


def reachable(graph: DiGraph, source, target) -> bool:
    """Online BFS reachability check on node objects (reflexive)."""
    src = graph.node_id(source)
    dst = graph.node_id(target)
    if src == dst:
        return True
    seen = {src}
    frontier = [src]
    while frontier:
        next_frontier: list[int] = []
        for v in frontier:
            for w in graph.successor_ids(v):
                if w == dst:
                    return True
                if w not in seen:
                    seen.add(w)
                    next_frontier.append(w)
        frontier = next_frontier
    return False


def count_closure_edges(graph: DiGraph) -> int:
    """Number of ordered reachable pairs (u, v), u ≠ v — |E*| in the paper."""
    return sum(row.bit_count() for row in descendants_bitsets(graph))
