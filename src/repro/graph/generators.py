"""Workload generators for every experiment family in the paper.

Section V of the paper evaluates on four graph families; each gets a
generator here with the same construction recipe (scaled sizes are chosen
by the benchmark layer, not here):

* Group I — *sparse graphs*: random edges over ``n`` nodes, strongly
  connected components collapsed with Tarjan's algorithm
  (:func:`sparse_random_dag`).
* Group II(a) — *DSG*, "DAG systematically generated": a fixed number of
  roots, about four children per non-leaf and three parents per
  non-root, a fixed number of levels (:func:`systematic_dag`).
* Group II(b) — *DSRG*, "DAG semi-randomly generated": a random tree
  with zero to six children per node, then random extra edges that
  cannot create a cycle (:func:`semi_random_dag`).
* Group III — *dense graphs*: a random topological order with each
  forward pair becoming an edge with the probability that yields the
  requested density ``e / n²`` (:func:`dense_dag`).

Beyond the paper's families, :func:`scale_chain_dag` generates the
million-node scale-bench workload (``width`` parallel chains plus
random forward cross-links — see ``docs/SCALE.md``).

All generators are deterministic in their ``seed`` and label nodes with
consecutive integers.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.graph.digraph import DiGraph
from repro.graph.scc import condense
from repro.graph.topology import longest_path_length, root_ids

__all__ = [
    "sparse_random_dag",
    "systematic_dag",
    "semi_random_dag",
    "dense_dag",
    "random_dag",
    "random_digraph",
    "layered_random_dag",
    "citation_dag",
    "chain_graph",
    "antichain_graph",
    "scale_chain_dag",
    "GraphStats",
    "graph_stats",
]


def sparse_random_dag(num_nodes: int, num_edges: int,
                      seed: int = 0) -> DiGraph:
    """Group-I graph: random digraph, SCCs collapsed into single nodes.

    The paper: "The edges are randomly generated ... Tarjan's algorithm
    is used to find SCCs as a preprocessor.  All SCCs are then removed."
    The returned DAG therefore has *at most* ``num_nodes`` nodes; at the
    sparse densities used in Group I almost none are lost.
    """
    if num_nodes <= 0:
        raise ValueError("num_nodes must be positive")
    rng = random.Random(seed)
    raw = DiGraph()
    for v in range(num_nodes):
        raw.add_node(v)
    added = 0
    attempts = 0
    max_attempts = num_edges * 50 + 1000
    while added < num_edges and attempts < max_attempts:
        attempts += 1
        tail = rng.randrange(num_nodes)
        head = rng.randrange(num_nodes)
        if tail == head or raw.has_edge(tail, head):
            continue
        added += 1
        raw.add_edge(tail, head)
    condensation = condense(raw)
    dag = condensation.dag
    # Relabel components 0..k-1 in insertion order (they already are).
    return dag


def systematic_dag(num_roots: int, num_levels: int,
                   children_per_node: int = 4, parents_per_node: int = 3,
                   seed: int = 0) -> DiGraph:
    """Group-II DSG graph: fixed roots / levels / fan-out / fan-in.

    Level sizes grow by the ratio children/parents (each level-ℓ node
    emits ~``children_per_node`` edges, each level-(ℓ+1) node absorbs
    ~``parents_per_node``), matching the paper's 640-root, 8-level,
    four-children / three-parents construction.
    """
    if num_roots <= 0 or num_levels <= 0:
        raise ValueError("num_roots and num_levels must be positive")
    if children_per_node <= 0 or parents_per_node <= 0:
        raise ValueError("fan-out and fan-in must be positive")
    rng = random.Random(seed)
    graph = DiGraph()
    current_level = [graph.add_node(v) for v in range(num_roots)]
    next_label = num_roots
    for _ in range(num_levels - 1):
        out_stubs = len(current_level) * children_per_node
        next_size = max(1, round(out_stubs / parents_per_node))
        next_level = []
        for _ in range(next_size):
            next_level.append(graph.add_node(next_label))
            next_label += 1
        # Give every child `parents_per_node` distinct random parents so
        # fan-in is exact and fan-out is ~children_per_node on average.
        for child in next_level:
            k = min(parents_per_node, len(current_level))
            for parent in rng.sample(current_level, k):
                if not graph.has_edge(parent, child):
                    graph.add_edge(parent, child)
        current_level = next_level
    return graph


def semi_random_dag(min_nodes: int, extra_edges: int,
                    max_children: int = 6, seed: int = 0) -> DiGraph:
    """Group-II DSRG graph: random tree plus acyclic random extra edges.

    The tree gives every node a uniform 0..``max_children`` child count
    (re-seeded with forced children if the frontier would die before
    ``min_nodes`` is reached).  Extra edges always point from an older
    node to a newer one, which can never close a cycle — this implements
    the paper's "add randomly up to 10000 edges to the tree while
    ensuring that no cycle is formed".
    """
    if min_nodes <= 0:
        raise ValueError("min_nodes must be positive")
    rng = random.Random(seed)
    graph = DiGraph()
    graph.add_node(0)
    frontier = [0]
    next_label = 1
    while next_label < min_nodes:
        if not frontier:
            # The whole frontier rolled zero children; restart growth
            # from a random existing node so the tree reaches min_nodes.
            frontier = [rng.randrange(next_label)]
        node = frontier.pop(rng.randrange(len(frontier)))
        num_children = rng.randint(0, max_children)
        if not frontier and num_children == 0:
            num_children = 1
        for _ in range(num_children):
            if next_label >= min_nodes:
                break
            child = graph.add_node(next_label)
            graph.add_edge(node, child)
            frontier.append(next_label)
            next_label += 1
    n = graph.num_nodes
    added = 0
    attempts = 0
    max_attempts = extra_edges * 50 + 1000
    while added < extra_edges and attempts < max_attempts and n > 1:
        attempts += 1
        tail = rng.randrange(n - 1)
        head = rng.randrange(tail + 1, n)
        if not graph.has_edge(tail, head):
            graph.add_edge(tail, head)
            added += 1
    return graph


def dense_dag(num_nodes: int, density: float = 0.25,
              seed: int = 0) -> DiGraph:
    """Group-III graph with ``num_edges / num_nodes² ≈ density``.

    A random permutation fixes a topological order; each forward pair is
    an edge with probability ``density · n² / (n(n-1)/2)`` so the
    *paper's* density measure ``E/V²`` comes out at the requested value.
    """
    if num_nodes <= 0:
        raise ValueError("num_nodes must be positive")
    if not 0.0 <= density <= 0.5:
        raise ValueError("density is e/n² over forward pairs; max 0.5")
    rng = random.Random(seed)
    order = list(range(num_nodes))
    rng.shuffle(order)
    p = 0.0
    if num_nodes > 1:
        p = min(1.0, density * num_nodes * num_nodes
                / (num_nodes * (num_nodes - 1) / 2))
    graph = DiGraph()
    for v in range(num_nodes):
        graph.add_node(v)
    for i in range(num_nodes):
        tail = order[i]
        for j in range(i + 1, num_nodes):
            if rng.random() < p:
                graph.add_edge(tail, order[j])
    return graph


def random_dag(num_nodes: int, edge_probability: float,
               seed: int = 0) -> DiGraph:
    """A generic Erdős–Rényi-style DAG (forward edges over 0..n-1)."""
    if not 0.0 <= edge_probability <= 1.0:
        raise ValueError("edge_probability must be in [0, 1]")
    rng = random.Random(seed)
    graph = DiGraph()
    for v in range(num_nodes):
        graph.add_node(v)
    for tail in range(num_nodes):
        for head in range(tail + 1, num_nodes):
            if rng.random() < edge_probability:
                graph.add_edge(tail, head)
    return graph


def random_digraph(num_nodes: int, num_edges: int,
                   seed: int = 0) -> DiGraph:
    """A possibly-cyclic random digraph (for SCC/condensation paths)."""
    rng = random.Random(seed)
    graph = DiGraph()
    for v in range(num_nodes):
        graph.add_node(v)
    added = 0
    attempts = 0
    max_attempts = num_edges * 50 + 1000
    while added < num_edges and attempts < max_attempts and num_nodes > 1:
        attempts += 1
        tail = rng.randrange(num_nodes)
        head = rng.randrange(num_nodes)
        if tail != head and not graph.has_edge(tail, head):
            graph.add_edge(tail, head)
            added += 1
    return graph


def layered_random_dag(layer_sizes: list[int], edge_probability: float,
                       seed: int = 0) -> DiGraph:
    """A DAG with given layer sizes and random adjacent-layer edges.

    Used by the width ablation: the width is strongly controlled by
    ``max(layer_sizes)``.  Every node in layer ℓ+1 receives at least one
    parent in layer ℓ, so the layering equals the stratification.
    """
    rng = random.Random(seed)
    graph = DiGraph()
    layers: list[list[int]] = []
    label = 0
    for size in layer_sizes:
        if size <= 0:
            raise ValueError("layer sizes must be positive")
        layer = []
        for _ in range(size):
            layer.append(graph.add_node(label))
            label += 1
        layers.append(layer)
    for upper, lower in zip(layers, layers[1:]):
        for child in lower:
            parents = [p for p in upper if rng.random() < edge_probability]
            if not parents:
                parents = [rng.choice(upper)]
            for parent in parents:
                graph.add_edge(parent, child)
    return graph


def citation_dag(num_nodes: int, citations_per_node: int = 3,
                 seed: int = 0) -> DiGraph:
    """A preferential-attachment citation network (always a DAG).

    Nodes arrive in order; each cites up to ``citations_per_node``
    earlier nodes sampled proportionally to citations-received-so-far
    plus one (the usual rich-get-richer kernel).  Edges point from the
    citing paper to the cited one, so ``u ⇝ v`` reads "u transitively
    builds on v".  Not one of the paper's workloads — used by tests and
    examples as a heavy-tailed, realistic graph shape.
    """
    if num_nodes <= 0:
        raise ValueError("num_nodes must be positive")
    if citations_per_node < 0:
        raise ValueError("citations_per_node must be non-negative")
    rng = random.Random(seed)
    graph = DiGraph()
    graph.add_node(0)
    # Sampling urn: each node appears once per citation received, plus
    # once for existing at all.
    urn = [0]
    for paper in range(1, num_nodes):
        graph.add_node(paper)
        cited: set[int] = set()
        wanted = min(citations_per_node, paper)
        attempts = 0
        while len(cited) < wanted and attempts < 20 * wanted:
            attempts += 1
            cited.add(rng.choice(urn))
        for earlier in cited:
            graph.add_edge(paper, earlier)
            urn.append(earlier)
        urn.append(paper)
    return graph


def chain_graph(num_nodes: int, seed: int = 0) -> DiGraph:
    """The path 0 → 1 → … → n-1 (width 1).

    Deterministic; ``seed`` is accepted so every generator in this
    module has the same signature shape and can be driven uniformly.
    """
    del seed
    graph = DiGraph()
    for v in range(num_nodes):
        graph.add_node(v)
    for v in range(num_nodes - 1):
        graph.add_edge(v, v + 1)
    return graph


def antichain_graph(num_nodes: int, seed: int = 0) -> DiGraph:
    """``num_nodes`` isolated nodes (width = n).

    Deterministic; ``seed`` is accepted for signature uniformity.
    """
    del seed
    graph = DiGraph()
    for v in range(num_nodes):
        graph.add_node(v)
    return graph


def scale_chain_dag(num_nodes: int, num_edges: int, width: int = 4,
                    cross_span: int | None = None,
                    seed: int = 0) -> DiGraph:
    """The scale-bench family: ``width`` parallel chains, cross-linked.

    Node ``v`` sits in chain ``v % width`` at position ``v // width``;
    the backbone edges ``v → v + width`` realise the chains, and the
    remaining ``num_edges - backbone`` edges are random forward links
    (``tail < head`` in node order, so the result is always a DAG).
    The chain cover of this graph has ≈ ``width`` chains regardless of
    ``num_nodes``, which keeps every label's index sequence bounded by
    ``width`` — a million-node graph stays buildable in pure Python —
    while the ``num_nodes / width`` strata are what separate the
    builders: the stratified pipeline runs one matching per stratum,
    the concatenation heuristic one pass overall (``docs/SCALE.md``).

    ``cross_span`` bounds how far forward a cross-link may jump
    (default ``100 · width`` node ids, i.e. about 100 strata); local
    links keep the reachable chain set rich without collapsing the
    graph's depth.

    Production streams: nodes and edges land directly in the graph's
    dense arrays, no temporary edge lists, so peak memory is the
    graph itself.  Deterministic in ``seed``.
    """
    if num_nodes <= 0:
        raise ValueError("num_nodes must be positive")
    if width <= 0:
        raise ValueError("width must be positive")
    width = min(width, num_nodes)
    if cross_span is None:
        cross_span = 100 * width
    if cross_span <= 0:
        raise ValueError("cross_span must be positive")
    rng = random.Random(seed)
    graph = DiGraph.dense(num_nodes)
    add_edge_ids = graph.add_edge_ids
    has_edge_ids = graph.has_edge_ids
    for v in range(num_nodes - width):
        add_edge_ids(v, v + width)
    extra = num_edges - max(0, num_nodes - width)
    added = 0
    attempts = 0
    max_attempts = extra * 50 + 1000 if extra > 0 else 0
    while added < extra and attempts < max_attempts and num_nodes > 1:
        attempts += 1
        tail = rng.randrange(num_nodes - 1)
        head = tail + rng.randrange(1, cross_span + 1)
        if head >= num_nodes or head - tail == width \
                or has_edge_ids(tail, head):
            continue
        add_edge_ids(tail, head)
        added += 1
    return graph


@dataclass(frozen=True)
class GraphStats:
    """The parameters the paper reports in Table 2."""

    num_nodes: int
    num_edges: int
    average_out_degree_internal: float
    average_path_length: float
    height: int

    def row(self) -> tuple:
        """(nodes, arcs, out-degree, path length) for Table 2."""
        return (self.num_nodes, self.num_edges,
                round(self.average_out_degree_internal, 2),
                round(self.average_path_length, 2))


def graph_stats(graph: DiGraph, path_samples: int = 2000,
                seed: int = 0) -> GraphStats:
    """Compute the Table-2 statistics of a DAG.

    ``average_path_length`` is estimated by sampling maximal random
    walks from a random root (node count of the walk), matching the
    paper's reported "average path length" (8.0 for the perfectly
    layered DSG).
    """
    internal = [v for v in range(graph.num_nodes)
                if graph.successor_ids(v)]
    avg_out = 0.0
    if internal:
        avg_out = (sum(len(graph.successor_ids(v)) for v in internal)
                   / len(internal))
    rng = random.Random(seed)
    start_ids = root_ids(graph) or list(range(graph.num_nodes))
    total_length = 0
    samples = max(1, path_samples)
    for _ in range(samples):
        v = rng.choice(start_ids)
        length = 1
        while graph.successor_ids(v):
            v = rng.choice(graph.successor_ids(v))
            length += 1
        total_length += length
    height = 0
    if graph.num_nodes:
        height = longest_path_length(graph) + 1
    return GraphStats(
        num_nodes=graph.num_nodes,
        num_edges=graph.num_edges,
        average_out_degree_internal=avg_out,
        average_path_length=total_length / samples,
        height=height,
    )
