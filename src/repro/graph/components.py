"""Weakly connected components — the partition behind composite engines.

Two nodes are weakly connected when a path joins them in the
*undirected* view of the digraph.  No directed path can ever cross a
weak-component boundary, so the components are exactly the units a
reachability index can be sharded on: a pair of nodes in different
components is unreachable by construction, and each component can be
indexed independently (``repro.engine.CompositeEngine`` does both).
"""

from __future__ import annotations

from repro.graph.digraph import DiGraph

__all__ = ["weakly_connected_components"]


def weakly_connected_components(graph: DiGraph) -> list[list]:
    """The weak components, as lists of node labels.

    Components are ordered by their smallest member node id (insertion
    order), and nodes inside a component keep insertion order too, so
    the partition is deterministic for a given graph.  Runs one
    undirected BFS over the id-indexed adjacency — O(n + e).

    >>> g = DiGraph.from_edges([("a", "b"), ("c", "d")], nodes=["e"])
    >>> weakly_connected_components(g)
    [['e'], ['a', 'b'], ['c', 'd']]
    """
    count = graph.num_nodes
    forward = graph.adjacency()
    backward = graph.reverse_adjacency()
    component_of = [-1] * count
    next_component = 0
    for start in range(count):
        if component_of[start] != -1:
            continue
        component_of[start] = next_component
        frontier = [start]
        while frontier:
            node = frontier.pop()
            for neighbour in forward[node]:
                if component_of[neighbour] == -1:
                    component_of[neighbour] = next_component
                    frontier.append(neighbour)
            for neighbour in backward[node]:
                if component_of[neighbour] == -1:
                    component_of[neighbour] = next_component
                    frontier.append(neighbour)
        next_component += 1
    members: list[list] = [[] for _ in range(next_component)]
    for node_id in range(count):
        members[component_of[node_id]].append(graph.node_at(node_id))
    return members
