"""Plain-text graph serialisation.

The format is a line-oriented edge list, friendly to shell tooling:

    # comment
    n <num_nodes>            (optional; declares isolated nodes 0..n-1)
    v <label>                (optional; declares one node, edges or not)
    <tail> <head>

Node labels are arbitrary whitespace-free strings; integers round-trip
as integers when ``int_labels=True`` (the default for files our
generators wrote).

The writer emits the compact ``n`` header only when the labels are
exactly the dense ints ``0..n-1`` (every graph our generators make);
any other label set — e.g. after ``DiGraph.remove_node`` punched a
hole — gets one ``v`` line per isolated node instead, so nothing is
resurrected or dropped on the way back in.
"""

from __future__ import annotations

import io
from pathlib import Path
from typing import TextIO

from repro.graph.digraph import DiGraph
from repro.graph.errors import GraphFormatError

__all__ = ["write_edge_list", "read_edge_list", "iter_edges", "dumps",
           "loads"]


def write_edge_list(graph: DiGraph, target: str | Path | TextIO) -> None:
    """Write ``graph`` as an edge list (isolated nodes preserved)."""
    if isinstance(target, (str, Path)):
        with open(target, "w", encoding="utf-8") as handle:
            _write(graph, handle)
    else:
        _write(graph, target)


def _write(graph: DiGraph, handle: TextIO) -> None:
    handle.write(f"# repro edge list: {graph.num_nodes} nodes, "
                 f"{graph.num_edges} edges\n")
    nodes = graph.nodes()
    if all(isinstance(node, int) for node in nodes) \
            and sorted(nodes) == list(range(len(nodes))):
        handle.write(f"n {graph.num_nodes}\n")
    else:
        touched = set()
        for tail, head in graph.edges():
            touched.add(tail)
            touched.add(head)
        for node in nodes:
            if node not in touched:
                handle.write(f"v {node}\n")
    for tail, head in graph.edges():
        handle.write(f"{tail} {head}\n")


def read_edge_list(source: str | Path | TextIO,
                   int_labels: bool = True) -> DiGraph:
    """Parse an edge list written by :func:`write_edge_list`.

    Raises :class:`GraphFormatError` with a line number on bad input.
    """
    if isinstance(source, (str, Path)):
        with open(source, "r", encoding="utf-8") as handle:
            return _read(handle, int_labels)
    return _read(source, int_labels)


def _records(handle: TextIO, int_labels: bool):
    """Parse ``handle`` one line at a time into typed records.

    Yields ``("n", count)``, ``("v", node)`` and ``("e", (tail, head))``
    tuples in file order, never holding more than the current line in
    memory — both :func:`read_edge_list` and :func:`iter_edges` are
    thin consumers of this stream.  Raises :class:`GraphFormatError`
    with a line number on bad input.
    """
    for line_number, raw_line in enumerate(handle, start=1):
        line = raw_line.strip()
        if not line or line.startswith("#"):
            continue
        parts = line.split()
        if parts[0] == "n":
            if len(parts) != 2:
                raise GraphFormatError("bad node-count line", line_number)
            try:
                declared = int(parts[1])
            except ValueError:
                raise GraphFormatError(
                    f"node count {parts[1]!r} is not an integer",
                    line_number) from None
            if declared < 0:
                raise GraphFormatError("node count must be >= 0",
                                       line_number)
            yield "n", declared
            continue
        if parts[0] == "v":
            if len(parts) != 2:
                raise GraphFormatError("bad node line", line_number)
            node = parts[1]
            if int_labels:
                try:
                    node = int(node)
                except ValueError:
                    raise GraphFormatError(
                        f"non-integer label in {line!r}",
                        line_number) from None
            yield "v", node
            continue
        if len(parts) != 2:
            raise GraphFormatError(
                f"expected 'tail head', got {line!r}", line_number)
        tail, head = parts
        if int_labels:
            try:
                tail, head = int(tail), int(head)
            except ValueError:
                raise GraphFormatError(
                    f"non-integer label in {line!r}", line_number) from None
        yield "e", (tail, head)


def _read(handle: TextIO, int_labels: bool) -> DiGraph:
    graph = DiGraph()
    for kind, payload in _records(handle, int_labels):
        if kind == "n":
            for v in range(payload):
                node = v if int_labels else str(v)
                if node not in graph:
                    graph.add_node(node)
        elif kind == "v":
            graph.ensure_node(payload)
        else:
            tail, head = payload
            graph.ensure_node(tail)
            graph.ensure_node(head)
            if tail != head and not graph.has_edge(tail, head):
                graph.add_edge(tail, head)
    return graph


def iter_edges(source: str | Path | TextIO, int_labels: bool = True):
    """Stream the ``(tail, head)`` edge pairs of an edge-list file.

    The streaming half of :func:`read_edge_list`: one line of the file
    is in memory at a time and edges are yielded as they are parsed,
    so a 10M-edge file can feed :meth:`DiGraph.add_edge` (or any other
    sink) without an intermediate edge list.  ``n``/``v`` node
    declarations and comments are skipped; pairs are yielded verbatim
    — self-loops and duplicates included, since deduplicating here
    would cost the O(edges) memory this generator exists to avoid
    (sinks that care should check :meth:`DiGraph.has_edge` first, as
    :func:`read_edge_list` does).  Raises :class:`GraphFormatError`
    with a line number on malformed lines.
    """
    if isinstance(source, (str, Path)):
        with open(source, "r", encoding="utf-8") as handle:
            for kind, payload in _records(handle, int_labels):
                if kind == "e":
                    yield payload
        return
    for kind, payload in _records(source, int_labels):
        if kind == "e":
            yield payload


def dumps(graph: DiGraph) -> str:
    """Serialise to a string."""
    buffer = io.StringIO()
    _write(graph, buffer)
    return buffer.getvalue()


def loads(text: str, int_labels: bool = True) -> DiGraph:
    """Parse a string produced by :func:`dumps`."""
    return _read(io.StringIO(text), int_labels)
