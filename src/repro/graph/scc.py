"""Tarjan's strongly connected components and graph condensation.

Section II of the paper: "For a cyclic graph we can find all the strongly
connected components in linear time [25] and then collapse each of them
into a representative node" — every node in an SCC is equivalent to its
representative as far as reachability is concerned.  This module provides
exactly that preprocessing step.

The Tarjan implementation is iterative (an explicit stack replaces
recursion) so it handles the deep, path-like graphs the generators
produce without hitting Python's recursion limit.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.graph.digraph import DiGraph

__all__ = ["strongly_connected_components", "Condensation", "condense"]


def strongly_connected_components(graph: DiGraph) -> list[list]:
    """SCCs as lists of node objects, in reverse topological order.

    Reverse topological order means: if component A can reach component
    B, then B appears *before* A in the returned list (a property of
    Tarjan's algorithm that :func:`condense` relies on).
    """
    n = graph.num_nodes
    index_of = [-1] * n          # discovery index, -1 = unvisited
    lowlink = [0] * n
    on_stack = [False] * n
    stack: list[int] = []
    components: list[list] = []
    counter = 0

    for start in range(n):
        if index_of[start] != -1:
            continue
        # Each frame is (node, iterator position into its successors).
        work: list[tuple[int, int]] = [(start, 0)]
        while work:
            v, pos = work[-1]
            if pos == 0:
                index_of[v] = lowlink[v] = counter
                counter += 1
                stack.append(v)
                on_stack[v] = True
            succ = graph.successor_ids(v)
            advanced = False
            while pos < len(succ):
                w = succ[pos]
                pos += 1
                if index_of[w] == -1:
                    work[-1] = (v, pos)
                    work.append((w, 0))
                    advanced = True
                    break
                if on_stack[w] and index_of[w] < lowlink[v]:
                    lowlink[v] = index_of[w]
            if advanced:
                continue
            work.pop()
            if work:
                parent = work[-1][0]
                if lowlink[v] < lowlink[parent]:
                    lowlink[parent] = lowlink[v]
            if lowlink[v] == index_of[v]:
                component: list = []
                while True:
                    w = stack.pop()
                    on_stack[w] = False
                    component.append(graph.node_at(w))
                    if w == v:
                        break
                components.append(component)
    return components


@dataclass(frozen=True)
class Condensation:
    """The SCC condensation of a digraph.

    ``dag``
        The condensed graph.  Its nodes are integers 0..k-1 (component
        ids); it is always acyclic.
    ``component_of``
        Maps every original node object to its component id.
    ``members``
        ``members[c]`` lists the original nodes in component ``c``.
    """

    dag: DiGraph
    component_of: dict
    members: list[list]

    @property
    def num_components(self) -> int:
        """Number of strongly connected components."""
        return len(self.members)

    def representative(self, node: object) -> object:
        """A canonical member of ``node``'s component."""
        return self.members[self.component_of[node]][0]

    def same_component(self, u: object, v: object) -> bool:
        """True iff the two nodes share an SCC."""
        return self.component_of[u] == self.component_of[v]


def condense(graph: DiGraph) -> Condensation:
    """Collapse every SCC of ``graph`` into a single node.

    The resulting DAG preserves reachability: ``u`` reaches ``v`` in the
    original graph iff ``component_of[u]`` reaches ``component_of[v]``
    in the condensation (or the two are equal).
    """
    components = strongly_connected_components(graph)
    component_of: dict = {}
    for comp_id, members in enumerate(components):
        for node in members:
            component_of[node] = comp_id

    dag = DiGraph()
    for comp_id in range(len(components)):
        dag.add_node(comp_id)
    seen: set[tuple[int, int]] = set()
    for tail, head in graph.edges():
        tail_comp = component_of[tail]
        head_comp = component_of[head]
        if tail_comp == head_comp:
            continue
        if (tail_comp, head_comp) not in seen:
            seen.add((tail_comp, head_comp))
            dag.add_edge(tail_comp, head_comp)
    return Condensation(dag=dag, component_of=component_of,
                        members=components)
