"""Tarjan's strongly connected components and graph condensation.

Section II of the paper: "For a cyclic graph we can find all the strongly
connected components in linear time [25] and then collapse each of them
into a representative node" — every node in an SCC is equivalent to its
representative as far as reachability is concerned.  This module provides
exactly that preprocessing step.

The Tarjan implementation is iterative (an explicit stack replaces
recursion) so it handles the deep, path-like graphs the generators
produce without hitting Python's recursion limit.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.graph.digraph import DiGraph

__all__ = ["strongly_connected_components", "Condensation", "condense"]


def _dag_singleton_ids(graph: DiGraph) -> list[list[int]] | None:
    """Fast path for acyclic graphs: singleton SCCs in DFS finish order.

    On a DAG, Tarjan emits every node as its own component exactly when
    the DFS finishes it, so a plain postorder sweep (same start order,
    same successor order) reproduces Tarjan's output bit for bit while
    skipping all lowlink bookkeeping.  Returns ``None`` on the first
    back edge — i.e. the graph has a cycle and the caller must run the
    full algorithm.
    """
    n = graph.num_nodes
    state = bytearray(n)        # 0 unvisited, 1 on the DFS stack, 2 done
    components: list[list[int]] = []
    successor_ids = graph.successor_ids
    for start in range(n):
        if state[start]:
            continue
        state[start] = 1
        work = [(start, iter(successor_ids(start)))]
        while work:
            v, succ = work[-1]
            advanced = False
            for w in succ:
                visited = state[w]
                if not visited:
                    state[w] = 1
                    work.append((w, iter(successor_ids(w))))
                    advanced = True
                    break
                if visited == 1:
                    return None  # back edge: cyclic
            if advanced:
                continue
            work.pop()
            state[v] = 2
            components.append([v])
    return components


def _scc_ids(graph: DiGraph) -> list[list[int]]:
    """SCCs as lists of dense node ids, in reverse topological order."""
    singletons = _dag_singleton_ids(graph)
    if singletons is not None:
        return singletons
    n = graph.num_nodes
    index_of = [-1] * n          # discovery index, -1 = unvisited
    lowlink = [0] * n
    on_stack = [False] * n
    stack: list[int] = []
    components: list[list[int]] = []
    counter = 0
    successor_ids = graph.successor_ids

    for start in range(n):
        if index_of[start] != -1:
            continue
        # Each frame is (node, live iterator over its successors); the
        # iterator resumes in place after a child returns, so an edge
        # is looked at exactly once with no per-edge frame rewrites.
        index_of[start] = lowlink[start] = counter
        counter += 1
        stack.append(start)
        on_stack[start] = True
        work = [(start, iter(successor_ids(start)))]
        while work:
            v, succ = work[-1]
            advanced = False
            for w in succ:
                if index_of[w] == -1:
                    index_of[w] = lowlink[w] = counter
                    counter += 1
                    stack.append(w)
                    on_stack[w] = True
                    work.append((w, iter(successor_ids(w))))
                    advanced = True
                    break
                if on_stack[w] and index_of[w] < lowlink[v]:
                    lowlink[v] = index_of[w]
            if advanced:
                continue
            work.pop()
            low = lowlink[v]
            if work:
                parent = work[-1][0]
                if low < lowlink[parent]:
                    lowlink[parent] = low
            if low == index_of[v]:
                component: list[int] = []
                while True:
                    w = stack.pop()
                    on_stack[w] = False
                    component.append(w)
                    if w == v:
                        break
                components.append(component)
    return components


def strongly_connected_components(graph: DiGraph) -> list[list]:
    """SCCs as lists of node objects, in reverse topological order.

    Reverse topological order means: if component A can reach component
    B, then B appears *before* A in the returned list (a property of
    Tarjan's algorithm that :func:`condense` relies on).
    """
    node_at = graph.node_at
    return [[node_at(v) for v in component]
            for component in _scc_ids(graph)]


@dataclass(frozen=True)
class Condensation:
    """The SCC condensation of a digraph.

    ``dag``
        The condensed graph.  Its nodes are integers 0..k-1 (component
        ids); it is always acyclic.
    ``component_of``
        Maps every original node object to its component id.
    ``members``
        ``members[c]`` lists the original nodes in component ``c``.
    """

    dag: DiGraph
    component_of: dict
    members: list[list]

    @property
    def num_components(self) -> int:
        """Number of strongly connected components."""
        return len(self.members)

    def representative(self, node: object) -> object:
        """A canonical member of ``node``'s component."""
        return self.members[self.component_of[node]][0]

    def same_component(self, u: object, v: object) -> bool:
        """True iff the two nodes share an SCC."""
        return self.component_of[u] == self.component_of[v]


def condense(graph: DiGraph) -> Condensation:
    """Collapse every SCC of ``graph`` into a single node.

    The resulting DAG preserves reachability: ``u`` reaches ``v`` in the
    original graph iff ``component_of[u]`` reaches ``component_of[v]``
    in the condensation (or the two are equal).
    """
    id_components = _scc_ids(graph)
    node_at = graph.node_at
    comp_of_id = [0] * graph.num_nodes
    component_of: dict = {}
    members: list[list] = []
    for comp_id, id_members in enumerate(id_components):
        component: list = []
        for v in id_members:
            comp_of_id[v] = comp_id
            node = node_at(v)
            component_of[node] = comp_id
            component.append(node)
        members.append(component)

    dag = DiGraph.dense(len(id_components))
    # Dense-id sweep; the dag's own adjacency set is the dedupe, so
    # peak extra memory is O(nodes), not O(edges).
    successor_ids = graph.successor_ids
    has_edge_ids = dag.has_edge_ids
    add_edge_ids = dag.add_edge_ids
    for v in range(graph.num_nodes):
        tail_comp = comp_of_id[v]
        for w in successor_ids(v):
            head_comp = comp_of_id[w]
            if tail_comp != head_comp \
                    and not has_edge_ids(tail_comp, head_comp):
                add_edge_ids(tail_comp, head_comp)
    return Condensation(dag=dag, component_of=component_of,
                        members=members)
