"""Tiny bit-vector helpers shared by the bitset-based algorithms."""

from __future__ import annotations

from collections.abc import Iterator

__all__ = ["iter_bits", "bits_to_list"]


def iter_bits(value: int) -> Iterator[int]:
    """Yield the set-bit positions of a non-negative int, ascending."""
    while value:
        low = value & -value
        yield low.bit_length() - 1
        value ^= low


def bits_to_list(value: int) -> list[int]:
    """Set-bit positions as a list."""
    return list(iter_bits(value))
