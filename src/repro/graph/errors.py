"""Exception hierarchy for the :mod:`repro.graph` substrate.

Every error raised by the library derives from :class:`GraphError`, so a
caller can catch one type to handle any library failure.  The subclasses
distinguish the situations a database layer typically wants to react to
differently: a malformed graph, an unknown node in a query, or an
operation that requires acyclic input.
"""

from __future__ import annotations

__all__ = [
    "GraphError",
    "NodeNotFoundError",
    "DuplicateNodeError",
    "EdgeExistsError",
    "EdgeNotFoundError",
    "NotADAGError",
    "InvalidChainError",
    "GraphFormatError",
    "IndexFormatError",
]


class GraphError(Exception):
    """Base class for all errors raised by :mod:`repro`."""


class NodeNotFoundError(GraphError, KeyError):
    """A node referenced by an operation is not part of the graph.

    ``role`` optionally names which operand was missing (``"source"`` /
    ``"target"`` for a reachability query), so a two-operand lookup can
    report *which* side failed.
    """

    def __init__(self, node: object, role: str | None = None) -> None:
        super().__init__(node)
        self.node = node
        self.role = role

    def __str__(self) -> str:  # KeyError would repr() the args tuple
        if self.role:
            return f"{self.role} node {self.node!r} is not in the graph"
        return f"node {self.node!r} is not in the graph"


class DuplicateNodeError(GraphError, ValueError):
    """A node was added twice to a graph that forbids duplicates."""

    def __init__(self, node: object) -> None:
        super().__init__(f"node {node!r} is already in the graph")
        self.node = node


class EdgeExistsError(GraphError, ValueError):
    """An edge was added twice (the library stores simple digraphs)."""

    def __init__(self, tail: object, head: object) -> None:
        super().__init__(f"edge ({tail!r}, {head!r}) is already in the graph")
        self.tail = tail
        self.head = head


class EdgeNotFoundError(GraphError, KeyError):
    """An edge referenced by a removal is not part of the graph."""

    def __init__(self, tail: object, head: object) -> None:
        super().__init__((tail, head))
        self.tail = tail
        self.head = head

    def __str__(self) -> str:  # KeyError would repr() the args tuple
        return f"edge ({self.tail!r}, {self.head!r}) is not in the graph"


class NotADAGError(GraphError, ValueError):
    """An operation that requires a DAG received a cyclic graph.

    The offending cycle (a list of nodes) is attached when known, so
    callers can report it or feed the graph through SCC condensation.
    """

    def __init__(self, message: str = "graph contains a cycle",
                 cycle: list | None = None) -> None:
        super().__init__(message)
        self.cycle = cycle


class InvalidChainError(GraphError, ValueError):
    """A chain decomposition violated a structural invariant."""


class GraphFormatError(GraphError, ValueError):
    """A serialised graph could not be parsed."""

    def __init__(self, message: str, line_number: int | None = None) -> None:
        if line_number is not None:
            message = f"line {line_number}: {message}"
        super().__init__(message)
        self.line_number = line_number


class IndexFormatError(GraphFormatError):
    """A persisted index file is corrupt or otherwise unusable.

    Raised by :func:`repro.core.persistence.load_index` when the file's
    recorded CRC32 checksum does not match the packed label arrays —
    a truncated or bit-flipped index must fail loudly at load time, not
    serve wrong answers.  Subclasses :class:`GraphFormatError` so
    existing ``except GraphFormatError`` handlers keep working.
    """
