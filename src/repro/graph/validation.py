"""Structural validators used by tests and by debug assertions.

These never run on the hot path; they exist so tests (and users
debugging a corrupted pipeline) can verify internal invariants with one
call instead of re-deriving them.
"""

from __future__ import annotations

from repro.graph.digraph import DiGraph
from repro.graph.errors import GraphError, NotADAGError
from repro.graph.topology import find_cycle

__all__ = [
    "check_consistency",
    "check_topological_order",
    "check_acyclic",
]


def check_consistency(graph: DiGraph) -> None:
    """Verify the successor/predecessor mirrors agree.

    Raises :class:`GraphError` on the first inconsistency found.
    """
    n = graph.num_nodes
    edge_count = 0
    for v in range(n):
        succ = graph.successor_ids(v)
        if len(set(succ)) != len(succ):
            raise GraphError(f"duplicate successor entries at node id {v}")
        for w in succ:
            if not 0 <= w < n:
                raise GraphError(f"successor id {w} out of range at {v}")
            if v not in graph.predecessor_ids(w):
                raise GraphError(
                    f"edge ({v}, {w}) missing from predecessor mirror")
        edge_count += len(succ)
    pred_count = sum(len(graph.predecessor_ids(v)) for v in range(n))
    if pred_count != edge_count:
        raise GraphError("predecessor mirror has a different edge count")
    if edge_count != graph.num_edges:
        raise GraphError(
            f"num_edges={graph.num_edges} but adjacency holds {edge_count}")


def check_topological_order(graph: DiGraph, order: list) -> None:
    """Verify ``order`` is a topological order of ``graph``'s nodes."""
    position = {node: i for i, node in enumerate(order)}
    if len(position) != graph.num_nodes:
        raise GraphError("order does not enumerate every node exactly once")
    for node in graph:
        if node not in position:
            raise GraphError(f"order is missing node {node!r}")
    for tail, head in graph.edges():
        if position[tail] >= position[head]:
            raise GraphError(
                f"edge ({tail!r}, {head!r}) violates the order")


def check_acyclic(graph: DiGraph) -> None:
    """Raise :class:`NotADAGError` with the cycle when one exists."""
    cycle = find_cycle(graph)
    if cycle is not None:
        raise NotADAGError(cycle=cycle)
