"""Topological utilities: ordering, cycle detection, roots and sinks.

These are the building blocks the paper takes for granted: the labeling
pass of Section II runs in reverse topological order, the stratification
of Section III.A needs sinks, and DAG-only entry points must reject
cyclic input with a useful error (the detected cycle is attached to the
exception so callers can collapse it with :mod:`repro.graph.scc`).
"""

from __future__ import annotations

from repro.graph.digraph import DiGraph
from repro.graph.errors import NotADAGError

__all__ = [
    "topological_order_ids",
    "topological_order",
    "is_dag",
    "find_cycle",
    "check_dag",
    "root_ids",
    "sink_ids",
    "roots",
    "sinks",
    "longest_path_length",
]


def topological_order_ids(graph: DiGraph) -> list[int]:
    """Dense ids in topological order (tails before heads).

    Kahn's algorithm, O(n + e).  Raises :class:`NotADAGError` on cyclic
    input, with a concrete cycle attached.
    """
    n = graph.num_nodes
    indegree = [len(graph.predecessor_ids(v)) for v in range(n)]
    queue = [v for v in range(n) if indegree[v] == 0]
    order: list[int] = []
    head = 0
    while head < len(queue):
        v = queue[head]
        head += 1
        order.append(v)
        for w in graph.successor_ids(v):
            indegree[w] -= 1
            if indegree[w] == 0:
                queue.append(w)
    if len(order) != n:
        raise NotADAGError(cycle=find_cycle(graph))
    return order


def topological_order(graph: DiGraph) -> list:
    """Node objects in topological order."""
    return [graph.node_at(v) for v in topological_order_ids(graph)]


def is_dag(graph: DiGraph) -> bool:
    """True when the graph has no directed cycle."""
    try:
        topological_order_ids(graph)
    except NotADAGError:
        return False
    return True


def find_cycle(graph: DiGraph) -> list | None:
    """A directed cycle as a node-object list, or None for a DAG.

    Iterative DFS with colour marking; the returned list is the cycle in
    order, starting and ending implicitly at the same node (the first
    element follows the last).
    """
    n = graph.num_nodes
    WHITE, GREY, BLACK = 0, 1, 2
    colour = [WHITE] * n
    parent = [-1] * n
    for start in range(n):
        if colour[start] != WHITE:
            continue
        stack: list[tuple[int, int]] = [(start, 0)]
        colour[start] = GREY
        while stack:
            v, edge_index = stack[-1]
            succ = graph.successor_ids(v)
            if edge_index < len(succ):
                stack[-1] = (v, edge_index + 1)
                w = succ[edge_index]
                if colour[w] == WHITE:
                    colour[w] = GREY
                    parent[w] = v
                    stack.append((w, 0))
                elif colour[w] == GREY:
                    cycle_ids = [w]
                    node = v
                    while node != w:
                        cycle_ids.append(node)
                        node = parent[node]
                    cycle_ids.reverse()
                    return [graph.node_at(u) for u in cycle_ids]
            else:
                colour[v] = BLACK
                stack.pop()
    return None


def check_dag(graph: DiGraph) -> None:
    """Raise :class:`NotADAGError` unless the graph is acyclic."""
    cycle = find_cycle(graph)
    if cycle is not None:
        raise NotADAGError(cycle=cycle)


def root_ids(graph: DiGraph) -> list[int]:
    """Dense ids of nodes with no incoming edge."""
    return [v for v in range(graph.num_nodes)
            if not graph.predecessor_ids(v)]


def sink_ids(graph: DiGraph) -> list[int]:
    """Dense ids of nodes with no outgoing edge."""
    return [v for v in range(graph.num_nodes)
            if not graph.successor_ids(v)]


def roots(graph: DiGraph) -> list:
    """Nodes with no incoming edge, as node objects."""
    return [graph.node_at(v) for v in root_ids(graph)]


def sinks(graph: DiGraph) -> list:
    """Nodes with no outgoing edge, as node objects."""
    return [graph.node_at(v) for v in sink_ids(graph)]


def longest_path_length(graph: DiGraph) -> int:
    """Number of edges on a longest directed path (the DAG's height - 1).

    The paper's height ``h`` (number of strata) equals this value plus
    one on a non-empty graph.
    """
    order = topological_order_ids(graph)
    longest = [0] * graph.num_nodes
    best = 0
    for v in reversed(order):
        for w in graph.successor_ids(v):
            if longest[w] + 1 > longest[v]:
                longest[v] = longest[w] + 1
        if longest[v] > best:
            best = longest[v]
    return best
