"""A simple directed graph tuned for the algorithms in this library.

The public surface speaks in caller-supplied *node objects* (any hashable
value), while internally every node is assigned a dense integer id so the
algorithmic core can run over plain lists.  Algorithms in
:mod:`repro.core` and :mod:`repro.baselines` work on the dense view
(:meth:`DiGraph.successor_ids`, :meth:`DiGraph.predecessor_ids`) and
translate back at the API boundary.

The graph is *simple*: parallel edges are rejected, self-loops are
allowed only where they make sense for reachability (a self-loop does not
change the reflexive closure, so :meth:`add_edge` accepts it but stores
nothing — this mirrors how the paper collapses strongly connected
components before indexing).
"""

from __future__ import annotations

from collections.abc import Hashable, Iterable, Iterator

from repro.graph.errors import (
    DuplicateNodeError,
    EdgeExistsError,
    EdgeNotFoundError,
    NodeNotFoundError,
)

__all__ = ["DiGraph"]

Node = Hashable


class DiGraph:
    """A mutable simple directed graph.

    >>> g = DiGraph.from_edges([("a", "b"), ("b", "c")])
    >>> g.num_nodes, g.num_edges
    (3, 2)
    >>> sorted(g.successors("a"))
    ['b']
    """

    __slots__ = ("_id_of", "_node_of", "_succ", "_pred", "_succ_sets",
                 "_num_edges")

    def __init__(self) -> None:
        self._id_of: dict[Node, int] = {}
        self._node_of: list[Node] = []
        self._succ: list[list[int]] = []
        self._pred: list[list[int]] = []
        self._succ_sets: list[set[int]] = []
        self._num_edges = 0

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    @classmethod
    def from_edges(cls, edges: Iterable[tuple[Node, Node]],
                   nodes: Iterable[Node] = ()) -> "DiGraph":
        """Build a graph from an edge iterable.

        ``nodes`` may list additional isolated nodes.  Endpoints of the
        edges are added implicitly.  Duplicate edges are ignored here
        (unlike :meth:`add_edge`, which raises) because edge lists from
        random generators and text files routinely contain repeats.
        """
        graph = cls()
        for node in nodes:
            if node not in graph._id_of:
                graph.add_node(node)
        for tail, head in edges:
            graph.ensure_node(tail)
            graph.ensure_node(head)
            if tail != head and not graph.has_edge(tail, head):
                graph.add_edge(tail, head)
        return graph

    @classmethod
    def dense(cls, num_nodes: int) -> "DiGraph":
        """Build a graph whose nodes are exactly ``0..num_nodes-1``.

        Equivalent to ``num_nodes`` :meth:`add_node` calls but built
        in bulk — the constructor the condensation and the large-scale
        generators use, where per-node Python call overhead would
        dominate.  Labels equal dense ids, so :meth:`add_edge_ids` can
        insert edges without any label lookups.
        """
        if num_nodes < 0:
            raise ValueError("num_nodes must be >= 0")
        graph = cls()
        graph._id_of = {v: v for v in range(num_nodes)}
        graph._node_of = list(range(num_nodes))
        graph._succ = [[] for _ in range(num_nodes)]
        graph._pred = [[] for _ in range(num_nodes)]
        graph._succ_sets = [set() for _ in range(num_nodes)]
        return graph

    def add_node(self, node: Node) -> int:
        """Add ``node`` and return its dense id.

        Raises :class:`DuplicateNodeError` if the node already exists.
        """
        if node in self._id_of:
            raise DuplicateNodeError(node)
        node_id = len(self._node_of)
        self._id_of[node] = node_id
        self._node_of.append(node)
        self._succ.append([])
        self._pred.append([])
        self._succ_sets.append(set())
        return node_id

    def ensure_node(self, node: Node) -> int:
        """Add ``node`` if absent; return its dense id either way."""
        node_id = self._id_of.get(node)
        if node_id is None:
            node_id = self.add_node(node)
        return node_id

    def add_edge(self, tail: Node, head: Node) -> None:
        """Add the directed edge ``tail -> head``.

        Endpoints must already be present (use :meth:`ensure_node` or
        :meth:`from_edges` for implicit creation).  A self-loop is a
        no-op: it never changes reflexive reachability.  A duplicate
        edge raises :class:`EdgeExistsError`.
        """
        tail_id = self.node_id(tail)
        head_id = self.node_id(head)
        if tail_id == head_id:
            return
        if head_id in self._succ_sets[tail_id]:
            raise EdgeExistsError(tail, head)
        self._succ[tail_id].append(head_id)
        self._succ_sets[tail_id].add(head_id)
        self._pred[head_id].append(tail_id)
        self._num_edges += 1

    def add_edge_ids(self, tail_id: int, head_id: int) -> None:
        """O(1) edge insert on dense ids — the hot-loop counterpart of
        :meth:`add_edge` (same self-loop/duplicate semantics, but the
        caller vouches that both ids are valid)."""
        if tail_id == head_id:
            return
        succ_set = self._succ_sets[tail_id]
        if head_id in succ_set:
            raise EdgeExistsError(self._node_of[tail_id],
                                  self._node_of[head_id])
        self._succ[tail_id].append(head_id)
        succ_set.add(head_id)
        self._pred[head_id].append(tail_id)
        self._num_edges += 1

    def remove_edge(self, tail: Node, head: Node) -> None:
        """Remove the directed edge ``tail -> head``.

        Raises :class:`NodeNotFoundError` for an unknown endpoint and
        :class:`EdgeNotFoundError` if the edge is not present (a
        self-loop is never stored, so removing one also raises).
        """
        tail_id = self.node_id(tail)
        head_id = self.node_id(head)
        if head_id not in self._succ_sets[tail_id]:
            raise EdgeNotFoundError(tail, head)
        self._succ[tail_id].remove(head_id)
        self._succ_sets[tail_id].discard(head_id)
        self._pred[head_id].remove(tail_id)
        self._num_edges -= 1

    def remove_node(self, node: Node) -> None:
        """Remove ``node`` and every edge incident to it.

        Dense ids stay dense: the last id is swapped into the freed
        slot, so **ids of other nodes may change** (callers holding
        dense ids across a removal must re-resolve them through
        :meth:`node_id`).  Raises :class:`NodeNotFoundError` if the
        node is absent.
        """
        node_id = self.node_id(node)
        for head_id in self._succ[node_id]:
            self._pred[head_id].remove(node_id)
        for tail_id in self._pred[node_id]:
            self._succ[tail_id].remove(node_id)
            self._succ_sets[tail_id].discard(node_id)
        self._num_edges -= (len(self._succ[node_id])
                            + len(self._pred[node_id]))
        last_id = len(self._node_of) - 1
        if node_id != last_id:
            moved = self._node_of[last_id]
            for head_id in self._succ[last_id]:
                preds = self._pred[head_id]
                preds[preds.index(last_id)] = node_id
            for tail_id in self._pred[last_id]:
                succs = self._succ[tail_id]
                succs[succs.index(last_id)] = node_id
                self._succ_sets[tail_id].discard(last_id)
                self._succ_sets[tail_id].add(node_id)
            self._node_of[node_id] = moved
            self._succ[node_id] = self._succ[last_id]
            self._pred[node_id] = self._pred[last_id]
            self._succ_sets[node_id] = self._succ_sets[last_id]
            self._id_of[moved] = node_id
        self._node_of.pop()
        self._succ.pop()
        self._pred.pop()
        self._succ_sets.pop()
        del self._id_of[node]

    # ------------------------------------------------------------------
    # node-object view
    # ------------------------------------------------------------------
    @property
    def num_nodes(self) -> int:
        """Number of nodes."""
        return len(self._node_of)

    @property
    def num_edges(self) -> int:
        """Number of edges."""
        return self._num_edges

    def __len__(self) -> int:
        return len(self._node_of)

    def __contains__(self, node: Node) -> bool:
        return node in self._id_of

    def __iter__(self) -> Iterator[Node]:
        return iter(self._node_of)

    def nodes(self) -> list[Node]:
        """All nodes, in insertion order."""
        return list(self._node_of)

    def edges(self) -> Iterator[tuple[Node, Node]]:
        """All edges as (tail, head) node pairs."""
        for tail_id, heads in enumerate(self._succ):
            tail = self._node_of[tail_id]
            for head_id in heads:
                yield (tail, self._node_of[head_id])

    def has_node(self, node: Node) -> bool:
        """True iff ``node`` is in the graph."""
        return node in self._id_of

    def has_edge(self, tail: Node, head: Node) -> bool:
        """True iff the edge exists (False for unknown endpoints)."""
        tail_id = self._id_of.get(tail)
        head_id = self._id_of.get(head)
        if tail_id is None or head_id is None:
            return False
        return head_id in self._succ_sets[tail_id]

    def successors(self, node: Node) -> list[Node]:
        """Child node objects of ``node``."""
        return [self._node_of[i] for i in self._succ[self.node_id(node)]]

    def predecessors(self, node: Node) -> list[Node]:
        """Parent node objects of ``node``."""
        return [self._node_of[i] for i in self._pred[self.node_id(node)]]

    def out_degree(self, node: Node) -> int:
        """Number of outgoing edges."""
        return len(self._succ[self.node_id(node)])

    def in_degree(self, node: Node) -> int:
        """Number of incoming edges."""
        return len(self._pred[self.node_id(node)])

    # ------------------------------------------------------------------
    # dense-id view (for the algorithmic core)
    # ------------------------------------------------------------------
    def node_id(self, node: Node) -> int:
        """Dense id of ``node``; raises :class:`NodeNotFoundError`."""
        try:
            return self._id_of[node]
        except KeyError:
            raise NodeNotFoundError(node) from None

    def node_at(self, node_id: int) -> Node:
        """Node object for a dense id."""
        return self._node_of[node_id]

    def has_edge_ids(self, tail_id: int, head_id: int) -> bool:
        """O(1) edge test on dense ids."""
        return head_id in self._succ_sets[tail_id]

    def successor_ids(self, node_id: int) -> list[int]:
        """Successor ids of a dense id (the list is owned by the graph)."""
        return self._succ[node_id]

    def predecessor_ids(self, node_id: int) -> list[int]:
        """Predecessor ids of a dense id (the list is owned by the graph)."""
        return self._pred[node_id]

    def adjacency(self) -> list[list[int]]:
        """The full successor structure, indexed by dense id."""
        return self._succ

    def reverse_adjacency(self) -> list[list[int]]:
        """The full predecessor structure, indexed by dense id."""
        return self._pred

    # ------------------------------------------------------------------
    # derived graphs
    # ------------------------------------------------------------------
    def copy(self) -> "DiGraph":
        """An independent structural copy."""
        other = DiGraph()
        for node in self._node_of:
            other.add_node(node)
        for tail_id, heads in enumerate(self._succ):
            other._succ[tail_id] = list(heads)
            other._succ_sets[tail_id] = set(heads)
        for head_id, tails in enumerate(self._pred):
            other._pred[head_id] = list(tails)
        other._num_edges = self._num_edges
        return other

    def reversed(self) -> "DiGraph":
        """A new graph with every edge direction flipped."""
        other = DiGraph()
        for node in self._node_of:
            other.add_node(node)
        for tail_id, heads in enumerate(self._succ):
            for head_id in heads:
                other._succ[head_id].append(tail_id)
                other._succ_sets[head_id].add(tail_id)
                other._pred[tail_id].append(head_id)
        other._num_edges = self._num_edges
        return other

    def subgraph(self, nodes: Iterable[Node]) -> "DiGraph":
        """The induced subgraph on ``nodes`` (node objects preserved)."""
        keep = set(nodes)
        missing = [n for n in keep if n not in self._id_of]
        if missing:
            raise NodeNotFoundError(missing[0])
        other = DiGraph()
        for node in self._node_of:
            if node in keep:
                other.add_node(node)
        for tail, head in self.edges():
            if tail in keep and head in keep:
                other.add_edge(tail, head)
        return other

    def __repr__(self) -> str:
        return (f"<DiGraph nodes={self.num_nodes} "
                f"edges={self.num_edges}>")
