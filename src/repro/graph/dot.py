"""Graphviz DOT export — graphs, stratifications and chain covers.

For an open-source release it matters that users can *see* what the
algorithm did: :func:`to_dot` renders the plain digraph,
:func:`stratification_to_dot` ranks nodes by stratum (the paper's
Fig. 2 layout), and :func:`chains_to_dot` colours each chain of a
decomposition (the paper's Fig. 1(c)).  Output is plain DOT text —
feed it to ``dot -Tsvg`` or any Graphviz viewer.
"""

from __future__ import annotations

from repro.core.chains import ChainDecomposition
from repro.core.stratification import Stratification
from repro.graph.digraph import DiGraph

__all__ = ["to_dot", "stratification_to_dot", "chains_to_dot"]

# A colour-blind-safe cycle for chain colouring.
_PALETTE = ["#4477aa", "#ee6677", "#228833", "#ccbb44", "#66ccee",
            "#aa3377", "#bbbbbb", "#222255"]


def _quote(node) -> str:
    text = str(node).replace('"', r'\"')
    return f'"{text}"'


def to_dot(graph: DiGraph, name: str = "G") -> str:
    """Plain DOT for the digraph."""
    lines = [f"digraph {name} {{", "  rankdir=TB;"]
    for node in graph.nodes():
        lines.append(f"  {_quote(node)};")
    for tail, head in graph.edges():
        lines.append(f"  {_quote(tail)} -> {_quote(head)};")
    lines.append("}")
    return "\n".join(lines) + "\n"


def stratification_to_dot(graph: DiGraph, strat: Stratification,
                          name: str = "G") -> str:
    """DOT with one ``rank=same`` row per stratum, top level first."""
    lines = [f"digraph {name} {{", "  rankdir=TB;"]
    for level_index in range(strat.height, 0, -1):
        members = " ".join(_quote(graph.node_at(v))
                           for v in strat.level(level_index))
        lines.append(f"  {{ rank=same; {members} }}"
                     f"  /* V{level_index} */")
    for tail, head in graph.edges():
        lines.append(f"  {_quote(tail)} -> {_quote(head)};")
    lines.append("}")
    return "\n".join(lines) + "\n"


def chains_to_dot(graph: DiGraph, decomposition: ChainDecomposition,
                  name: str = "G") -> str:
    """DOT with chain membership coloured and chain links emphasised.

    Graph edges are drawn grey; consecutive chain members get a bold
    coloured edge (dashed when the link is a closure step rather than a
    graph edge — exactly the distinction the paper's Fig. 1(c) draws).
    """
    lines = [f"digraph {name} {{", "  rankdir=TB;",
             '  edge [color="#bbbbbb"];']
    for c, chain in enumerate(decomposition.chains):
        colour = _PALETTE[c % len(_PALETTE)]
        for v in chain:
            lines.append(
                f"  {_quote(graph.node_at(v))} [color=\"{colour}\", "
                f"penwidth=2];")
    for tail, head in graph.edges():
        lines.append(f"  {_quote(tail)} -> {_quote(head)};")
    for c, chain in enumerate(decomposition.chains):
        colour = _PALETTE[c % len(_PALETTE)]
        for above, below in zip(chain, chain[1:]):
            style = "solid" if graph.has_edge_ids(above, below) \
                else "dashed"
            lines.append(
                f"  {_quote(graph.node_at(above))} -> "
                f"{_quote(graph.node_at(below))} "
                f"[color=\"{colour}\", penwidth=2.5, style={style}, "
                f"constraint=false];")
    lines.append("}")
    return "\n".join(lines) + "\n"
