"""Streaming log-bucketed histograms: constant memory, mergeable.

The latency of a reachability query is sharply bimodal — a negative
settled by the O(1) rank/level pre-filter costs a fraction of a
full-label binary search, and a cache hit costs less still — so a
mean (or a percentile estimated from a small sample deque) actively
misleads.  :class:`Histogram` records the full distribution instead,
HDR-style: values land in base-2 **octaves** (one per binary exponent,
via :func:`math.frexp`) split into :data:`SUB_BUCKETS` linear
sub-buckets each.  The bucket layout is fixed up front, so

* memory is bounded by the number of *touched* buckets (at most
  ``SUB_BUCKETS`` per octave, and a double only spans ~2100 octaves) —
  never by the number of observations;
* two histograms over the same layout merge by adding bucket counts,
  which is exact and associative — per-thread or per-process
  histograms aggregate losslessly;
* a percentile estimate is off by at most one sub-bucket width.  Each
  sub-bucket spans ``1/SUB_BUCKETS`` of its octave's lower bound, so
  the estimate (the bucket midpoint, clamped into the observed
  ``[min, max]``) is within :data:`RELATIVE_ERROR` ``= 1/SUB_BUCKETS``
  (3.125 %) of the exact nearest-rank percentile.

Thread safety: :meth:`observe` takes a lock per call.  The serving
path observes once per *request*, not per inner-loop iteration, so the
lock is not on any hot loop (and CPython's lock fast path is a few
hundred nanoseconds — far below the cost of the request it measures).
"""

from __future__ import annotations

import math
import threading

__all__ = ["Histogram", "SUB_BUCKETS", "RELATIVE_ERROR"]

#: Linear sub-buckets per base-2 octave.  32 keeps the documented
#: relative bucket error at 1/32 = 3.125 % with ~32 counters per
#: octave actually touched.
SUB_BUCKETS = 32

#: Documented worst-case relative error of a percentile estimate
#: against the exact nearest-rank percentile of the observed values.
RELATIVE_ERROR = 1.0 / SUB_BUCKETS


def _bucket_index(value: float) -> int:
    """The flat bucket index for a positive finite value.

    ``frexp`` gives ``value = m * 2**e`` with ``m`` in ``[0.5, 1)``;
    the octave is ``e`` and ``m`` picks one of the linear sub-buckets.
    """
    mantissa, exponent = math.frexp(value)
    sub = int((mantissa * 2.0 - 1.0) * SUB_BUCKETS)
    if sub == SUB_BUCKETS:                   # mantissa rounded up to 1.0
        sub = SUB_BUCKETS - 1
    return exponent * SUB_BUCKETS + sub


def _bucket_bounds(index: int) -> tuple[float, float]:
    """``(lower, upper)`` value bounds of the flat bucket ``index``."""
    exponent, sub = divmod(index, SUB_BUCKETS)
    base = math.ldexp(1.0, exponent - 1)     # 2 ** (exponent - 1)
    width = base / SUB_BUCKETS
    return base + sub * width, base + (sub + 1) * width


class Histogram:
    """Mergeable distribution of non-negative observations.

    >>> histogram = Histogram()
    >>> for value in (1.0, 2.0, 3.0, 4.0):
    ...     histogram.observe(value)
    >>> histogram.count
    4
    >>> abs(histogram.percentile(0.5) - 2.0) <= 2.0 * RELATIVE_ERROR
    True
    """

    __slots__ = ("_buckets", "_lock", "count", "sum", "zeros",
                 "min_value", "max_value")

    def __init__(self) -> None:
        self._buckets: dict[int, int] = {}
        self._lock = threading.Lock()
        self.count = 0
        self.sum = 0.0
        self.zeros = 0              # observations <= 0 (clamped to 0)
        self.min_value = math.inf
        self.max_value = 0.0

    # -- recording ----------------------------------------------------
    def observe(self, value: float) -> None:
        """Record one observation (negatives clamp to the zero bucket)."""
        value = float(value)
        with self._lock:
            self.count += 1
            if value <= 0.0 or not math.isfinite(value):
                self.zeros += 1
                self.min_value = 0.0
                return
            self.sum += value
            if value < self.min_value:
                self.min_value = value
            if value > self.max_value:
                self.max_value = value
            index = _bucket_index(value)
            self._buckets[index] = self._buckets.get(index, 0) + 1

    def merge(self, other: "Histogram") -> "Histogram":
        """Fold ``other`` into ``self`` (bucket-count addition; exact)."""
        with other._lock:
            buckets = dict(other._buckets)
            count, total = other.count, other.sum
            zeros = other.zeros
            low, high = other.min_value, other.max_value
        with self._lock:
            for index, bucket_count in buckets.items():
                self._buckets[index] = (self._buckets.get(index, 0)
                                        + bucket_count)
            self.count += count
            self.sum += total
            self.zeros += zeros
            if low < self.min_value:
                self.min_value = low
            if high > self.max_value:
                self.max_value = high
        return self

    # -- reading ------------------------------------------------------
    def percentile(self, fraction: float) -> float:
        """Estimate the nearest-rank percentile at ``fraction``.

        Within :data:`RELATIVE_ERROR` of the exact value: the rank's
        bucket is found by cumulating counts in value order, and the
        bucket midpoint (clamped into the observed ``[min, max]``) is
        returned.  An empty histogram estimates 0.0.
        """
        with self._lock:
            if self.count == 0:
                return 0.0
            rank = max(1, math.ceil(fraction * self.count))
            if rank <= self.zeros:
                return 0.0
            rank -= self.zeros
            cumulative = 0
            for index in sorted(self._buckets):
                cumulative += self._buckets[index]
                if cumulative >= rank:
                    lower, upper = _bucket_bounds(index)
                    midpoint = (lower + upper) / 2.0
                    return min(max(midpoint, self.min_value),
                               self.max_value)
            return self.max_value            # fraction > 1.0

    def percentiles(self, *fractions: float) -> list[float]:
        """:meth:`percentile` at each fraction, in order."""
        return [self.percentile(fraction) for fraction in fractions]

    @property
    def mean(self) -> float:
        """Arithmetic mean of the observations (0.0 when empty)."""
        return self.sum / self.count if self.count else 0.0

    def buckets(self) -> list[tuple[float, int]]:
        """``(upper_bound, count)`` per touched bucket, ascending.

        The zero bucket, when touched, reports an upper bound of 0.0.
        This is the non-cumulative view; the Prometheus renderer
        cumulates it into ``_bucket{le=...}`` series.
        """
        with self._lock:
            rows = [(_bucket_bounds(index)[1], count)
                    for index, count in sorted(self._buckets.items())]
            if self.zeros:
                rows.insert(0, (0.0, self.zeros))
            return rows

    def summary(self) -> dict:
        """Count, mean, extrema and the standard percentile ladder."""
        p50, p90, p99, p999 = self.percentiles(0.50, 0.90, 0.99, 0.999)
        return {
            "count": self.count,
            "mean": self.mean,
            "min": self.min_value if self.count else 0.0,
            "max": self.max_value,
            "p50": p50,
            "p90": p90,
            "p99": p99,
            "p999": p999,
        }

    # -- cross-process transport --------------------------------------
    def state(self) -> dict:
        """A picklable snapshot that reconstructs this histogram exactly.

        Unlike :meth:`to_dict` (which reports bucket *upper bounds* for
        human/export consumption), ``state`` keys raw flat bucket
        indices, so :meth:`from_state` and :meth:`merge_state` rebuild
        the identical bucket layout — this is what worker processes ship
        over the control pipe for exact pool-wide aggregation.
        """
        with self._lock:
            return {
                "buckets": dict(self._buckets),
                "count": self.count,
                "sum": self.sum,
                "zeros": self.zeros,
                "min": self.min_value,
                "max": self.max_value,
            }

    @classmethod
    def from_state(cls, state: dict) -> "Histogram":
        """Reconstruct a histogram from a :meth:`state` snapshot."""
        histogram = cls()
        histogram.merge_state(state)
        return histogram

    def merge_state(self, state: dict) -> "Histogram":
        """Fold a :meth:`state` snapshot into ``self`` (exact, like
        :meth:`merge`, but from the transported form — JSON round-trips
        turn the bucket keys into strings, which is tolerated)."""
        with self._lock:
            for index, bucket_count in state["buckets"].items():
                index = int(index)
                self._buckets[index] = (self._buckets.get(index, 0)
                                        + bucket_count)
            self.count += state["count"]
            self.sum += state["sum"]
            self.zeros += state["zeros"]
            if state["count"] and state["min"] < self.min_value:
                self.min_value = state["min"]
            if state["max"] > self.max_value:
                self.max_value = state["max"]
        return self

    def to_dict(self) -> dict:
        """The ``repro.obs/2`` export shape for one histogram."""
        with self._lock:
            buckets = [[_bucket_bounds(index)[1], count]
                       for index, count in sorted(self._buckets.items())]
            if self.zeros:
                buckets.insert(0, [0.0, self.zeros])
            return {
                "count": self.count,
                "sum": self.sum,
                "min": self.min_value if self.count else 0.0,
                "max": self.max_value,
                "buckets": buckets,
            }

    def __len__(self) -> int:
        return self.count

    def __repr__(self) -> str:
        return (f"<Histogram count={self.count} mean={self.mean:.6g} "
                f"buckets={len(self._buckets)}>")
