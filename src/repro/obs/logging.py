"""Structured JSON-lines logging for long-running serving processes.

One event per line, machine-parseable, append-only — the format log
shippers ingest without configuration::

    {"ts": 1754380800.123, "event": "slow_query", "trace_id": "q-1f",
     "total_ms": 12.4, "stages": [...], "epoch": 3}

:class:`JsonLinesLogger` is deliberately tiny: a lock around one
``write`` call per event, ISO-ish float timestamps (``time.time``),
and values serialised with ``default=str`` so an unexpected object in
a field degrades to its ``repr`` instead of killing the serving path.
The service uses it for threshold-gated **slow-query logs** (with the
full trace-stage breakdown attached) and **lifecycle events** — swap
start/finish with their epochs, drain, overload; see
``docs/SERVICE.md`` for the event vocabulary.
"""

from __future__ import annotations

import json
import sys
import threading
import time
from pathlib import Path
from typing import IO

__all__ = ["JsonLinesLogger", "open_log"]


class JsonLinesLogger:
    """Thread-safe one-object-per-line JSON event logger.

    >>> import io
    >>> stream = io.StringIO()
    >>> logger = JsonLinesLogger(stream)
    >>> logger.log("swap_start", epoch=3)["event"]
    'swap_start'
    >>> json.loads(stream.getvalue())["epoch"]
    3
    """

    def __init__(self, stream: IO[str] | None = None) -> None:
        self._stream = stream if stream is not None else sys.stderr
        self._lock = threading.Lock()
        self.events = 0

    def log(self, event: str, **fields) -> dict:
        """Write one event line; returns the record that was written.

        A closed or broken stream never takes the caller down — the
        record is still returned, the write failure is swallowed
        (telemetry must not fail the request it measures).
        """
        record = {"ts": time.time(), "event": event, **fields}
        line = json.dumps(record, separators=(",", ":"), default=str)
        with self._lock:
            self.events += 1
            try:
                self._stream.write(line + "\n")
                self._stream.flush()
            except (OSError, ValueError):
                pass
        return record

    def close(self) -> None:
        with self._lock:
            try:
                self._stream.close()
            except (OSError, ValueError):
                pass


def open_log(target: str | Path | IO[str] | None) -> JsonLinesLogger:
    """A logger writing to a path (append mode), stream, ``"-"``
    (stderr) or ``None`` (stderr)."""
    if target is None or target == "-":
        return JsonLinesLogger(sys.stderr)
    if isinstance(target, (str, Path)):
        return JsonLinesLogger(Path(target).open("a", encoding="utf-8"))
    return JsonLinesLogger(target)
