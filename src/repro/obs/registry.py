"""The metrics registry: phase spans, counters, gauges, JSON export.

One process-wide :data:`OBS` registry instance serves the whole
library.  It is **disabled by default**: every instrumentation site
first checks the plain ``OBS.enabled`` attribute, so the cost of
shipping the library instrumented is one attribute load and branch per
*phase* (never per inner-loop iteration — hot loops accumulate into a
local integer and publish once at phase exit).

Four metric kinds:

* **spans** — hierarchical wall-clock timers.  ``with OBS.span("x")``
  times its block; nested spans record slash-joined paths, so a span
  named ``labeling`` opened inside ``bench/build/ours`` records as
  ``bench/build/ours/labeling``.  Per path the registry aggregates
  count, total, min and max seconds.  A :class:`Span` always measures
  (its ``seconds`` attribute is valid either way) but records into the
  registry only when the registry was enabled at entry — that is what
  lets the benchmark harness time through spans while keeping the
  registry off.
* **counters** — monotonically accumulated numbers
  (``OBS.count("build/virtual_nodes", 3)``).
* **gauges** — last-set values (``OBS.gauge("build/levels", 7)``).
* **histograms** — streaming value distributions
  (``OBS.observe("service/latency/positive", 0.0021)``): log-bucketed,
  constant-memory, mergeable :class:`~repro.obs.histogram.Histogram`
  instances with p50/p90/p99/p999 estimation (see that module for the
  bucket layout and the documented relative error).

Span paths are composed per thread (thread-local span stacks); counter
and gauge updates take a lock, so concurrent builders can share the
registry (each histogram carries its own lock).

:meth:`MetricsRegistry.to_dict` / ``to_json`` / ``export`` serialise
everything under the ``repro.obs/2`` schema documented in
``docs/OBSERVABILITY.md`` — v2 adds the ``histograms`` key; every
``repro.obs/1`` key is unchanged, so v1 consumers keep working.
"""

from __future__ import annotations

import json
import threading
import time
from contextlib import contextmanager
from pathlib import Path
from typing import TextIO

from repro.obs.histogram import Histogram

__all__ = ["SCHEMA", "Stopwatch", "Span", "SpanStats",
           "MetricsRegistry", "OBS"]

#: Identifier written into every JSON export (bump on layout changes).
#: v2 = v1 plus the additive ``histograms`` key.
SCHEMA = "repro.obs/2"


class Stopwatch:
    """Context-manager wall clock: ``with Stopwatch() as t: ...``.

    Always measures, never records — the registry-free primitive the
    bench layer's ``Timer`` aliases.
    """

    __slots__ = ("seconds", "_start")

    def __init__(self) -> None:
        self.seconds = 0.0
        self._start = 0.0

    def __enter__(self) -> "Stopwatch":
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc_info) -> None:
        self.seconds = time.perf_counter() - self._start


class SpanStats:
    """Aggregate timing of every completed span at one path."""

    __slots__ = ("count", "seconds", "min_seconds", "max_seconds")

    def __init__(self) -> None:
        self.count = 0
        self.seconds = 0.0
        self.min_seconds = float("inf")
        self.max_seconds = 0.0

    def add(self, seconds: float) -> None:
        self.count += 1
        self.seconds += seconds
        if seconds < self.min_seconds:
            self.min_seconds = seconds
        if seconds > self.max_seconds:
            self.max_seconds = seconds

    def to_dict(self) -> dict:
        return {
            "count": self.count,
            "seconds": self.seconds,
            "min_seconds": self.min_seconds,
            "max_seconds": self.max_seconds,
        }

    def __repr__(self) -> str:
        return (f"<SpanStats count={self.count} "
                f"seconds={self.seconds:.6f}>")


class Span:
    """One timed block.  ``seconds`` is valid after exit either way;
    the registry records it only when it was enabled at entry."""

    __slots__ = ("name", "path", "seconds", "_registry", "_start",
                 "_recording")

    def __init__(self, registry: "MetricsRegistry", name: str) -> None:
        self.name = name
        self.path = name
        self.seconds = 0.0
        self._registry = registry
        self._start = 0.0
        self._recording = False

    def __enter__(self) -> "Span":
        registry = self._registry
        self._recording = registry.enabled
        if self._recording:
            stack = registry._span_stack()
            stack.append(self.name)
            self.path = "/".join(stack)
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc_info) -> None:
        self.seconds = time.perf_counter() - self._start
        if self._recording:
            registry = self._registry
            stack = registry._span_stack()
            if stack and stack[-1] == self.name:
                stack.pop()
            registry._record_span(self.path, self.seconds)


class MetricsRegistry:
    """Spans + counters + gauges behind one enable switch."""

    def __init__(self, enabled: bool = False) -> None:
        #: Plain attribute on purpose: instrumentation sites read it on
        #: hot paths and a property call would double their cost.
        self.enabled = enabled
        self._spans: dict[str, SpanStats] = {}
        self._counters: dict[str, float] = {}
        self._gauges: dict[str, float] = {}
        self._histograms: dict[str, Histogram] = {}
        self._lock = threading.Lock()
        self._local = threading.local()

    # -- switching ----------------------------------------------------
    def enable(self) -> None:
        """Start recording (does not clear prior data; see reset)."""
        self.enabled = True

    def disable(self) -> None:
        """Stop recording; accumulated data stays readable."""
        self.enabled = False

    def reset(self) -> None:
        """Drop every recorded span, counter, gauge and histogram."""
        with self._lock:
            self._spans.clear()
            self._counters.clear()
            self._gauges.clear()
            self._histograms.clear()

    @contextmanager
    def capture(self, reset: bool = True):
        """``with OBS.capture() as m:`` — enable around a block.

        Resets first (unless ``reset=False``), restores the previous
        enabled/disabled state afterwards, and yields the registry so
        the block can read the results.
        """
        if reset:
            self.reset()
        previous = self.enabled
        self.enabled = True
        try:
            yield self
        finally:
            self.enabled = previous

    # -- recording ----------------------------------------------------
    def span(self, name: str) -> Span:
        """A timing context for one phase (see class docstring)."""
        return Span(self, name)

    def count(self, name: str, amount: float = 1) -> None:
        """Accumulate ``amount`` into the counter ``name`` (no-op when
        disabled)."""
        if not self.enabled:
            return
        with self._lock:
            self._counters[name] = self._counters.get(name, 0) + amount

    def gauge(self, name: str, value: float) -> None:
        """Set the gauge ``name`` to ``value`` (no-op when disabled)."""
        if not self.enabled:
            return
        with self._lock:
            self._gauges[name] = value

    def observe(self, name: str, value: float) -> None:
        """Record ``value`` into the histogram ``name`` (no-op when
        disabled)."""
        if not self.enabled:
            return
        histogram = self._histograms.get(name)
        if histogram is None:
            with self._lock:
                histogram = self._histograms.setdefault(name, Histogram())
        histogram.observe(value)

    def histogram(self, name: str) -> Histogram:
        """The histogram registered at ``name`` (created on demand,
        regardless of the enabled switch — callers that keep a direct
        reference can observe into it unconditionally)."""
        histogram = self._histograms.get(name)
        if histogram is None:
            with self._lock:
                histogram = self._histograms.setdefault(name, Histogram())
        return histogram

    def _span_stack(self) -> list[str]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        return stack

    def _record_span(self, path: str, seconds: float) -> None:
        with self._lock:
            stats = self._spans.get(path)
            if stats is None:
                stats = self._spans[path] = SpanStats()
            stats.add(seconds)

    # -- reading ------------------------------------------------------
    @property
    def spans(self) -> dict[str, SpanStats]:
        """Snapshot of aggregated span stats keyed by path."""
        with self._lock:
            return dict(self._spans)

    @property
    def counters(self) -> dict[str, float]:
        """Snapshot of the counters."""
        with self._lock:
            return dict(self._counters)

    @property
    def gauges(self) -> dict[str, float]:
        """Snapshot of the gauges."""
        with self._lock:
            return dict(self._gauges)

    @property
    def histograms(self) -> dict[str, Histogram]:
        """Snapshot of the histograms keyed by name (live objects)."""
        with self._lock:
            return dict(self._histograms)

    # -- cross-process transport --------------------------------------
    def state(self) -> dict:
        """A picklable snapshot for exact cross-process aggregation.

        Unlike :meth:`to_dict` (the human/export shape, whose histogram
        buckets carry upper *bounds*), ``state`` keeps raw histogram
        bucket indices (:meth:`Histogram.state`) so
        :meth:`merge_state` reconstructs distributions exactly — this is
        what pool workers ship to the parent over the control pipe.
        """
        with self._lock:
            return {
                "spans": {path: stats.to_dict()
                          for path, stats in self._spans.items()},
                "counters": dict(self._counters),
                "gauges": dict(self._gauges),
                "histograms": {name: histogram.state()
                               for name, histogram in
                               self._histograms.items()},
            }

    def merge_state(self, state: dict) -> "MetricsRegistry":
        """Fold a :meth:`state` snapshot into ``self``.

        Counters and span aggregates add; gauges keep the incoming
        value (last writer wins — pool-level gauges like
        ``service/workers`` are set by the parent after merging);
        histograms merge exactly by bucket counts.
        """
        with self._lock:
            for path, stats_dict in state.get("spans", {}).items():
                stats = self._spans.get(path)
                if stats is None:
                    stats = self._spans[path] = SpanStats()
                stats.count += stats_dict["count"]
                stats.seconds += stats_dict["seconds"]
                if stats_dict["min_seconds"] < stats.min_seconds:
                    stats.min_seconds = stats_dict["min_seconds"]
                if stats_dict["max_seconds"] > stats.max_seconds:
                    stats.max_seconds = stats_dict["max_seconds"]
            for name, amount in state.get("counters", {}).items():
                self._counters[name] = self._counters.get(name, 0) + amount
            self._gauges.update(state.get("gauges", {}))
            for name, histogram_state in state.get("histograms",
                                                   {}).items():
                histogram = self._histograms.setdefault(name, Histogram())
                histogram.merge_state(histogram_state)
        return self

    # -- export -------------------------------------------------------
    def to_dict(self) -> dict:
        """The full registry state under the ``repro.obs/2`` schema."""
        with self._lock:
            spans = sorted(self._spans.items())
            counters = dict(sorted(self._counters.items()))
            gauges = dict(sorted(self._gauges.items()))
            histograms = sorted(self._histograms.items())
        return {
            "schema": SCHEMA,
            "spans": {path: stats.to_dict() for path, stats in spans},
            "counters": counters,
            "gauges": gauges,
            # additive in v2: a v1 consumer that ignores unknown keys
            # reads the rest of the document unchanged
            "histograms": {name: histogram.to_dict()
                           for name, histogram in histograms},
        }

    def to_json(self, indent: int | None = 2) -> str:
        """:meth:`to_dict` rendered as a JSON document."""
        return json.dumps(self.to_dict(), indent=indent)

    def export(self, target: str | Path | TextIO) -> None:
        """Write the JSON export to a path or open text handle."""
        text = self.to_json()
        if isinstance(target, (str, Path)):
            Path(target).write_text(text + "\n", encoding="utf-8")
        else:
            target.write(text + "\n")

    def __repr__(self) -> str:
        state = "enabled" if self.enabled else "disabled"
        return (f"<MetricsRegistry {state} spans={len(self._spans)} "
                f"counters={len(self._counters)} "
                f"gauges={len(self._gauges)} "
                f"histograms={len(self._histograms)}>")


#: The process-wide registry every instrumentation site reports to.
OBS = MetricsRegistry()
