"""Exact nearest-rank percentiles over in-memory samples.

The one shared implementation for every place that still holds raw
samples (the bench layer's client-side latency lists, tests that
cross-check :class:`~repro.obs.histogram.Histogram` estimates).  The
convention is **nearest-rank**: the percentile at fraction ``q`` over
``n`` sorted values is the value at rank ``ceil(q * n)`` (1-based).
The previously duplicated ad-hoc copies used ``int(q * n)`` as a
0-based index, which overshoots by one rank — the p50 of ``[1.0,
2.0]`` came out as 2.0 instead of 1.0.
"""

from __future__ import annotations

import math
from typing import Sequence

__all__ = ["percentile", "summarize"]


def percentile(values: Sequence[float], fraction: float,
               *, presorted: bool = False) -> float:
    """The exact nearest-rank percentile of ``values`` at ``fraction``.

    ``fraction`` is in ``[0, 1]``; 0 returns the minimum, 1 the
    maximum, and an empty sequence returns 0.0.  Pass
    ``presorted=True`` to skip the defensive sort.

    >>> percentile([1.0, 2.0], 0.5)
    1.0
    >>> percentile([1.0, 2.0], 0.51)
    2.0
    """
    if not values:
        return 0.0
    ordered = values if presorted else sorted(values)
    rank = max(1, min(len(ordered), math.ceil(fraction * len(ordered))))
    return ordered[rank - 1]


def summarize(values: Sequence[float]) -> dict:
    """Count, mean, extrema and the p50/p90/p99/p999 ladder.

    The same shape as :meth:`repro.obs.histogram.Histogram.summary`,
    but exact — computed from the raw samples.
    """
    if not values:
        return {"count": 0, "mean": 0.0, "min": 0.0, "max": 0.0,
                "p50": 0.0, "p90": 0.0, "p99": 0.0, "p999": 0.0}
    ordered = sorted(values)
    return {
        "count": len(ordered),
        "mean": sum(ordered) / len(ordered),
        "min": ordered[0],
        "max": ordered[-1],
        "p50": percentile(ordered, 0.50, presorted=True),
        "p90": percentile(ordered, 0.90, presorted=True),
        "p99": percentile(ordered, 0.99, presorted=True),
        "p999": percentile(ordered, 0.999, presorted=True),
    }
