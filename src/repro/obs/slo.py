"""Service-level objectives over the per-class latency histograms.

An SLO here is a declarative sentence about one answer class::

    positive p99 < 2ms
    cache_hit p999 < 1ms
    batch p50 <= 20ms
    availability >= 99.9%

:func:`parse_objective` turns the sentence into an :class:`Objective`;
:class:`SloTracker` evaluates a set of them continuously over rolling
windows fed by the serving path.  The windows are rings of sub-window
cells, each holding one :class:`~repro.obs.histogram.Histogram` per
answer class, so "the last 5 minutes" is an **exact** bucket-count
merge of the cells it spans (:meth:`Histogram.merge` is exact and
associative) — never a decayed approximation.

Per Google-SRE practice the tracker reports **multi-window burn
rates**: how fast each objective is spending its error budget over a
fast window (default 5 m — catches sudden regressions) and a slow
window (default 1 h — catches slow bleeds).  A burn rate of 1.0 means
"exactly on budget"; the conventional page threshold for a 5 m / 1 h
pair is 14.4× on the fast window *and* over-budget on the slow one,
which is the tracker's ``alert`` flag.  Compliance verdicts
(``compliant``, the breach log, the CI gate) are taken over the slow
window.

Latency compliance is counted from the histogram buckets: a sample is
within the objective iff its bucket's upper bound is ≤ the threshold,
so a sample exactly *at* the threshold lands in the bucket above it
and counts as a violation — consistent with the strict ``<`` spelling
and at most one sub-bucket (:data:`~repro.obs.histogram.RELATIVE_ERROR`)
conservative.  An empty window is vacuously compliant with burn 0.0.

Everything is stdlib; the clock is injectable so the window arithmetic
is unit-testable without sleeping.
"""

from __future__ import annotations

import re
import threading
import time
from collections import deque
from dataclasses import dataclass

from repro.obs.histogram import Histogram
from repro.obs.registry import OBS

__all__ = ["Objective", "SloTracker", "parse_objective",
           "parse_objectives", "PERCENTILE_TOKENS"]

#: percentile spellings accepted in an objective, and their fractions.
PERCENTILE_TOKENS = {"p50": 0.50, "p90": 0.90, "p95": 0.95,
                     "p99": 0.99, "p999": 0.999}

_UNIT_SECONDS = {"ns": 1e-9, "us": 1e-6, "ms": 1e-3, "s": 1.0}

_LATENCY_SPEC = re.compile(
    r"^\s*(?P<klass>[a-z_]+)\s+(?P<metric>p\d{2,3})\s*"
    r"(?P<op><=?)\s*(?P<value>\d+(?:\.\d+)?)\s*(?P<unit>ns|us|ms|s)\s*$")
_AVAILABILITY_SPEC = re.compile(
    r"^\s*availability\s*>=\s*(?P<value>\d+(?:\.\d+)?)\s*%\s*$")

#: conventional fast-window burn multiple that should page for a
#: 5 m fast / 1 h slow window pair (Google SRE workbook, table 6-3).
FAST_BURN_ALERT = 14.4


@dataclass(frozen=True)
class Objective:
    """One parsed objective; ``spec`` is the normalised sentence."""

    spec: str       #: normalised source text
    klass: str      #: answer class, or "availability"
    metric: str     #: "p50" | "p99" | ... | "availability"
    threshold: float  #: seconds (latency) or required ratio (availability)
    #: success-ratio target the error budget is measured against:
    #: the percentile fraction for latency (p99 → 0.99), the required
    #: ratio itself for availability.
    target: float
    inclusive: bool = False   #: ``<=`` rather than ``<``


def parse_objective(text: str) -> Objective:
    """Parse one objective sentence (see module docstring for forms)."""
    match = _AVAILABILITY_SPEC.match(text)
    if match:
        ratio = float(match.group("value")) / 100.0
        if not 0.0 < ratio <= 1.0:
            raise ValueError(f"availability must be in (0, 100]%: {text!r}")
        return Objective(spec=f"availability >= {match.group('value')}%",
                         klass="availability", metric="availability",
                         threshold=ratio, target=ratio, inclusive=True)
    match = _LATENCY_SPEC.match(text)
    if match is None:
        raise ValueError(
            f"bad objective {text!r}; expected '<class> pNN < <value><unit>'"
            " or 'availability >= <value>%'")
    metric = match.group("metric")
    if metric not in PERCENTILE_TOKENS:
        raise ValueError(
            f"unknown percentile {metric!r} in {text!r}; "
            f"one of {sorted(PERCENTILE_TOKENS)}")
    seconds = (float(match.group("value"))
               * _UNIT_SECONDS[match.group("unit")])
    if seconds <= 0.0:
        raise ValueError(f"threshold must be positive: {text!r}")
    op = match.group("op")
    spec = (f"{match.group('klass')} {metric} {op} "
            f"{match.group('value')}{match.group('unit')}")
    return Objective(spec=spec, klass=match.group("klass"), metric=metric,
                     threshold=seconds,
                     target=PERCENTILE_TOKENS[metric],
                     inclusive=(op == "<="))


def parse_objectives(specs) -> list[Objective]:
    """Parse a list of sentences, passing through parsed objectives."""
    return [spec if isinstance(spec, Objective) else parse_objective(spec)
            for spec in specs]


def _fraction_within(histogram: Histogram, threshold: float,
                     inclusive: bool) -> float:
    """Share of observations within the latency threshold (1.0 if empty).

    Bucket-exact and conservative: a straddling bucket counts as
    violating unless ``inclusive`` and the threshold *is* its upper
    bound.  Zero-valued observations are always within.
    """
    if histogram.count == 0:
        return 1.0
    within = 0
    for upper, count in histogram.buckets():
        if upper < threshold or (inclusive and upper == threshold):
            within += count
    return within / histogram.count


class _Cell:
    """One sub-window: per-class histograms plus ok/error tallies."""

    __slots__ = ("start", "hists", "ok", "errors")

    def __init__(self, start: float) -> None:
        self.start = start
        self.hists: dict[str, Histogram] = {}
        self.ok = 0
        self.errors = 0


class SloTracker:
    """Evaluate objectives over exact rolling histogram windows.

    ``clock`` defaults to :func:`time.monotonic`; tests inject a fake
    to pin the window arithmetic.  ``cell_seconds`` is the sub-window
    granularity — the ring retains enough cells to cover
    ``slow_seconds`` plus one.
    """

    def __init__(self, objectives, *,
                 fast_seconds: float = 300.0,
                 slow_seconds: float = 3600.0,
                 cell_seconds: float | None = None,
                 clock=time.monotonic,
                 max_breaches: int = 256) -> None:
        if fast_seconds <= 0 or slow_seconds < fast_seconds:
            raise ValueError("need 0 < fast_seconds <= slow_seconds")
        self.objectives = parse_objectives(objectives)
        self.fast_seconds = float(fast_seconds)
        self.slow_seconds = float(slow_seconds)
        if cell_seconds is None:
            cell_seconds = max(1.0, self.fast_seconds / 10.0)
        self.cell_seconds = float(cell_seconds)
        capacity = int(self.slow_seconds / self.cell_seconds) + 2
        self._clock = clock
        self._lock = threading.Lock()
        self._started = self._clock()
        self._cells: deque[_Cell] = deque(maxlen=capacity)
        self._cells.append(_Cell(self._started))
        self.breaches: deque[dict] = deque(maxlen=max_breaches)
        self.breach_count = 0
        self._breaching: set[str] = set()   # specs breaching last eval

    # -- feeding ------------------------------------------------------
    def _cell(self) -> _Cell:
        """The current cell, advancing the ring if its slot elapsed."""
        now = self._clock()
        cell = self._cells[-1]
        if now - cell.start >= self.cell_seconds:
            cell = _Cell(now)
            self._cells.append(cell)
        return cell

    def observe(self, klass: str, seconds: float) -> None:
        """Record one settled query's latency under its answer class."""
        with self._lock:
            cell = self._cell()
            histogram = cell.hists.get(klass)
            if histogram is None:
                histogram = cell.hists.setdefault(klass, Histogram())
        histogram.observe(seconds)

    def note_request(self, ok: bool) -> None:
        """Record one wire request's outcome (feeds availability)."""
        with self._lock:
            cell = self._cell()
            if ok:
                cell.ok += 1
            else:
                cell.errors += 1

    def absorb(self, klass: str, histogram: Histogram,
               ok: int = 0, errors: int = 0) -> None:
        """Merge a whole histogram into the current cell (exact).

        How the replay harness and pool aggregation feed a tracker
        from already-collected per-class histograms without replaying
        individual samples.
        """
        with self._lock:
            cell = self._cell()
            mine = cell.hists.get(klass)
            if mine is None:
                mine = cell.hists.setdefault(klass, Histogram())
            cell.ok += ok
            cell.errors += errors
        mine.merge(histogram)

    # -- windows ------------------------------------------------------
    def _window(self, seconds: float | None):
        """Merged ``(hists, ok, errors)`` over the trailing window."""
        now = self._clock()
        merged: dict[str, Histogram] = {}
        ok = errors = 0
        with self._lock:
            cells = list(self._cells)
        for cell in cells:
            if seconds is not None and now - cell.start > seconds:
                continue
            ok += cell.ok
            errors += cell.errors
            for klass, histogram in cell.hists.items():
                into = merged.get(klass)
                if into is None:
                    into = merged.setdefault(klass, Histogram())
                into.merge(histogram)
        return merged, ok, errors

    def window_histogram(self, klass: str,
                         seconds: float | None = None) -> Histogram:
        """The exact merged histogram for one class over a window."""
        merged, _, _ = self._window(seconds)
        return merged.get(klass, Histogram())

    # -- evaluation ---------------------------------------------------
    def _judge(self, objective: Objective, hists, ok, errors) -> dict:
        """One objective's verdict over one merged window."""
        if objective.metric == "availability":
            total = ok + errors
            ratio = ok / total if total else 1.0
            budget = 1.0 - objective.target
            burn = ((1.0 - ratio) / budget) if budget > 0 else (
                0.0 if ratio >= 1.0 else float("inf"))
            return {"samples": total, "observed": ratio,
                    "compliance_ratio": ratio,
                    "compliant": ratio >= objective.threshold,
                    "burn_rate": burn}
        histogram = hists.get(objective.klass, Histogram())
        observed = (histogram.percentile(objective.target)
                    if histogram.count else 0.0)
        ratio = _fraction_within(histogram, objective.threshold,
                                 objective.inclusive)
        budget = 1.0 - objective.target
        burn = ((1.0 - ratio) / budget) if budget > 0 else (
            0.0 if ratio >= 1.0 else float("inf"))
        if histogram.count == 0:
            compliant = True                 # vacuous: no traffic
        elif objective.inclusive:
            compliant = observed <= objective.threshold
        else:
            compliant = observed < objective.threshold
        return {"samples": histogram.count, "observed": observed,
                "compliance_ratio": ratio, "compliant": compliant,
                "burn_rate": burn}

    def evaluate(self) -> dict:
        """The full SLO report; also appends breach events and, when
        the OBS registry is enabled, publishes the ``slo/*`` gauges."""
        fast = self._window(self.fast_seconds)
        slow = self._window(self.slow_seconds)
        now = self._clock()
        rows = []
        ratio_by_class: dict[str, float] = {}
        burn_fast_by_class: dict[str, float] = {}
        burn_slow_by_class: dict[str, float] = {}
        for objective in self.objectives:
            fast_verdict = self._judge(objective, *fast)
            slow_verdict = self._judge(objective, *slow)
            alert = (fast_verdict["burn_rate"] >= FAST_BURN_ALERT
                     and slow_verdict["burn_rate"] >= 1.0)
            row = {
                "spec": objective.spec,
                "class": objective.klass,
                "metric": objective.metric,
                "threshold": objective.threshold,
                "samples": slow_verdict["samples"],
                "observed": slow_verdict["observed"],
                "compliance_ratio": slow_verdict["compliance_ratio"],
                "compliant": slow_verdict["compliant"],
                "burn_rate_fast": fast_verdict["burn_rate"],
                "burn_rate_slow": slow_verdict["burn_rate"],
                "alert": alert,
            }
            rows.append(row)
            klass = objective.klass
            ratio_by_class[klass] = min(
                ratio_by_class.get(klass, 1.0),
                slow_verdict["compliance_ratio"])
            burn_fast_by_class[klass] = max(
                burn_fast_by_class.get(klass, 0.0),
                fast_verdict["burn_rate"])
            burn_slow_by_class[klass] = max(
                burn_slow_by_class.get(klass, 0.0),
                slow_verdict["burn_rate"])
            if not slow_verdict["compliant"]:
                if objective.spec not in self._breaching:
                    self._breaching.add(objective.spec)
                    self.breach_count += 1
                    if OBS.enabled:
                        OBS.count("slo/breaches")
                    self.breaches.append({
                        # seconds since tracker start, not raw clock
                        "at": now - self._started,
                        "spec": objective.spec,
                        "class": objective.klass,
                        "observed": slow_verdict["observed"],
                        "threshold": objective.threshold,
                        "samples": slow_verdict["samples"],
                        "burn_rate_fast": fast_verdict["burn_rate"],
                        "burn_rate_slow": slow_verdict["burn_rate"],
                    })
            else:
                self._breaching.discard(objective.spec)
        if OBS.enabled:
            for klass, value in ratio_by_class.items():
                OBS.gauge(f"slo/compliance_ratio/{klass}", value)
            for klass, value in burn_fast_by_class.items():
                OBS.gauge(f"slo/burn_rate_fast/{klass}", value)
            for klass, value in burn_slow_by_class.items():
                OBS.gauge(f"slo/burn_rate_slow/{klass}", value)
        return {
            "enabled": True,
            "windows": {"fast_seconds": self.fast_seconds,
                        "slow_seconds": self.slow_seconds,
                        "cell_seconds": self.cell_seconds},
            "objectives": rows,
            "healthy": all(row["compliant"] for row in rows),
            "breach_count": self.breach_count,
            "breaches": list(self.breaches),
        }

    #: gauge values for the Prometheus exposition: the same per-class
    #: reductions evaluate() publishes, keyed by metric name.
    def gauge_values(self, report: dict | None = None) -> dict[str, float]:
        report = report if report is not None else self.evaluate()
        gauges: dict[str, float] = {}
        for row in report["objectives"]:
            klass = row["class"]
            name = f"slo/compliance_ratio/{klass}"
            gauges[name] = min(gauges.get(name, 1.0),
                               row["compliance_ratio"])
            name = f"slo/burn_rate_fast/{klass}"
            gauges[name] = max(gauges.get(name, 0.0),
                               row["burn_rate_fast"])
            name = f"slo/burn_rate_slow/{klass}"
            gauges[name] = max(gauges.get(name, 0.0),
                               row["burn_rate_slow"])
        return gauges

    def __repr__(self) -> str:
        return (f"<SloTracker objectives={len(self.objectives)} "
                f"cells={len(self._cells)} breaches={self.breach_count}>")
