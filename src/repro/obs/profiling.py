"""Opt-in cProfile hook for the CLI and ad-hoc investigations.

Spans answer "which phase is slow"; this answers "which *function*
inside that phase".  It is deliberately separate from the registry —
cProfile's tracing overhead (2-5x on tight Python loops) must never be
confused with the near-zero cost of spans, so profiling is only ever
entered explicitly::

    from repro.obs import profiled

    with profiled(limit=15):
        ChainIndex.build(graph)

or, from the shell, ``python -m repro stats graph.txt --profile``.
"""

from __future__ import annotations

import cProfile
import pstats
import sys
from contextlib import contextmanager, nullcontext
from typing import TextIO

__all__ = ["profiled", "maybe_profiled"]


@contextmanager
def profiled(stream: TextIO | None = None, sort: str = "cumulative",
             limit: int = 25):
    """Profile the block and print the top ``limit`` functions.

    ``sort`` is any :mod:`pstats` sort key (``"cumulative"``,
    ``"tottime"``, ...); output goes to ``stream`` (default stdout).
    Yields the live :class:`cProfile.Profile` so callers can also dump
    raw stats themselves.
    """
    profiler = cProfile.Profile()
    profiler.enable()
    try:
        yield profiler
    finally:
        profiler.disable()
        stats = pstats.Stats(profiler, stream=stream or sys.stdout)
        stats.sort_stats(sort)
        stats.print_stats(limit)


def maybe_profiled(enabled: bool, **kwargs):
    """:func:`profiled` when ``enabled``, else a no-op context."""
    return profiled(**kwargs) if enabled else nullcontext()
