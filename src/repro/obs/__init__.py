"""repro.obs — phase-level observability for the reachability pipeline.

A zero-dependency instrumentation layer: hierarchical phase spans,
named counters, gauges and streaming log-bucketed histograms in one
process-wide registry (:data:`OBS`, disabled by default), JSON export
under the ``repro.obs/2`` schema, Prometheus text exposition
(:mod:`repro.obs.promtext`), structured JSON-lines logging
(:mod:`repro.obs.logging`), and an opt-in cProfile hook.  The build
pipeline (condense → stratify → per-level matching → resolution →
labeling), the query path, index persistence, incremental maintenance
and the serving layer all report here, which is what lets measured
cost be attributed to the phases of the paper's ``O(n² + b·n·√b)``
build / ``O(b·e)`` labeling analysis — and, on the serving path, to
the stages of one request (queue wait vs cache vs kernel vs swap).

Quick use::

    from repro import ChainIndex, DiGraph, OBS

    with OBS.capture() as metrics:
        ChainIndex.build(DiGraph.from_edges([("a", "b"), ("b", "c")]))
    print(sorted(metrics.spans))     # condense, labeling, matching/...

Every emitted name is registered in :data:`~repro.obs.catalog.CATALOG`
and documented in ``docs/OBSERVABILITY.md``; ``tests/test_docs.py``
keeps the three in lockstep.
"""

from repro.obs.catalog import (
    CATALOG,
    MetricSpec,
    catalog_names,
    catalog_unit,
    is_known_metric,
)
from repro.obs.histogram import RELATIVE_ERROR, SUB_BUCKETS, Histogram
from repro.obs.logging import JsonLinesLogger, open_log
from repro.obs.profiling import maybe_profiled, profiled
from repro.obs.registry import (
    OBS,
    SCHEMA,
    MetricsRegistry,
    Span,
    SpanStats,
    Stopwatch,
)
from repro.obs.slo import (
    Objective,
    SloTracker,
    parse_objective,
    parse_objectives,
)
from repro.obs.summary import percentile, summarize

__all__ = [
    "OBS",
    "SCHEMA",
    "MetricsRegistry",
    "Span",
    "SpanStats",
    "Stopwatch",
    "Histogram",
    "SUB_BUCKETS",
    "RELATIVE_ERROR",
    "JsonLinesLogger",
    "open_log",
    "Objective",
    "SloTracker",
    "parse_objective",
    "parse_objectives",
    "percentile",
    "summarize",
    "CATALOG",
    "MetricSpec",
    "catalog_names",
    "catalog_unit",
    "is_known_metric",
    "profiled",
    "maybe_profiled",
]
