"""repro.obs — phase-level observability for the reachability pipeline.

A zero-dependency instrumentation layer: hierarchical phase spans,
named counters and gauges in one process-wide registry (:data:`OBS`,
disabled by default), JSON export under the ``repro.obs/1`` schema,
and an opt-in cProfile hook.  The build pipeline (condense → stratify
→ per-level matching → resolution → labeling), the query path, index
persistence and incremental maintenance all report here, which is what
lets measured cost be attributed to the phases of the paper's
``O(n² + b·n·√b)`` build / ``O(b·e)`` labeling analysis.

Quick use::

    from repro import ChainIndex, DiGraph, OBS

    with OBS.capture() as metrics:
        ChainIndex.build(DiGraph.from_edges([("a", "b"), ("b", "c")]))
    print(sorted(metrics.spans))     # condense, labeling, matching/...

Every emitted name is registered in :data:`~repro.obs.catalog.CATALOG`
and documented in ``docs/OBSERVABILITY.md``; ``tests/test_docs.py``
keeps the three in lockstep.
"""

from repro.obs.catalog import (
    CATALOG,
    MetricSpec,
    catalog_names,
    is_known_metric,
)
from repro.obs.profiling import maybe_profiled, profiled
from repro.obs.registry import (
    OBS,
    SCHEMA,
    MetricsRegistry,
    Span,
    SpanStats,
    Stopwatch,
)

__all__ = [
    "OBS",
    "SCHEMA",
    "MetricsRegistry",
    "Span",
    "SpanStats",
    "Stopwatch",
    "CATALOG",
    "MetricSpec",
    "catalog_names",
    "is_known_metric",
    "profiled",
    "maybe_profiled",
]
