"""Prometheus text exposition (version 0.0.4) of the metrics registry.

:func:`render` turns a :class:`~repro.obs.registry.MetricsRegistry`
(plus any always-on :class:`~repro.obs.histogram.Histogram` objects a
subsystem keeps outside the registry, like the serving layer's
per-class latency histograms) into the plain-text format every
Prometheus-compatible scraper understands:

* counters become ``repro_<name>_total`` ``counter`` series;
* gauges become ``repro_<name>`` ``gauge`` series;
* spans become ``summary`` series — ``repro_<name>_seconds_count`` /
  ``_seconds_sum`` — plus ``_seconds_min`` / ``_seconds_max`` gauges
  (Prometheus summaries have no native extrema);
* histograms become ``histogram`` series — cumulative
  ``repro_<name>_bucket{le="..."}`` lines in ascending ``le`` order
  ending at ``le="+Inf"``, plus ``_sum`` and ``_count``.

Metric names flatten the registry's slash paths: ``service/latency/
positive`` renders as ``repro_service_latency_positive`` (every
non-``[a-zA-Z0-9_]`` character becomes ``_``).  Seconds-valued series
get a ``_seconds`` unit suffix, resolved through the catalogue
(:func:`~repro.obs.catalog.catalog_unit`).

The serving layer exposes this text on an optional HTTP side listener
(``repro-graph serve --metrics-port``) and as the ``metrics`` verb of
the NDJSON protocol; see ``docs/OBSERVABILITY.md`` for the contract.
"""

from __future__ import annotations

import re

from repro.obs.catalog import catalog_unit
from repro.obs.histogram import Histogram

__all__ = ["prom_name", "render", "render_histogram", "CONTENT_TYPE"]

#: The Content-Type a conforming exposition endpoint must send.
CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"

_INVALID = re.compile(r"[^a-zA-Z0-9_]")


def prom_name(name: str, prefix: str = "repro") -> str:
    """Flatten a registry name into a legal Prometheus metric name."""
    flat = _INVALID.sub("_", name).strip("_")
    return f"{prefix}_{flat}" if prefix else flat


def _format(value: float) -> str:
    """Prometheus floating-point rendering (repr keeps full precision,
    integers stay integral)."""
    if value != value:                       # NaN
        return "NaN"
    if value == float("inf"):
        return "+Inf"
    if value == float("-inf"):
        return "-Inf"
    if float(value).is_integer():
        return str(int(value))
    return repr(float(value))


def _unit_suffix(name: str) -> str:
    return "_seconds" if catalog_unit(name) == "seconds" else ""


def render_histogram(name: str, histogram: Histogram,
                     prefix: str = "repro") -> list[str]:
    """The ``_bucket``/``_sum``/``_count`` lines for one histogram."""
    # one consistent snapshot: bucket counts, sum and count must agree
    # even while other threads keep observing
    data = histogram.to_dict()
    base = prom_name(name, prefix) + _unit_suffix(name)
    lines = [f"# TYPE {base} histogram"]
    cumulative = 0
    for upper, count in data["buckets"]:
        cumulative += count
        lines.append(f'{base}_bucket{{le="{_format(upper)}"}} '
                     f"{cumulative}")
    lines.append(f'{base}_bucket{{le="+Inf"}} {data["count"]}')
    lines.append(f"{base}_sum {_format(data['sum'])}")
    lines.append(f"{base}_count {data['count']}")
    return lines


def render(registry, histograms: dict[str, Histogram] | None = None,
           prefix: str = "repro") -> str:
    """The full exposition document, newline-terminated.

    ``histograms`` adds (or overrides, name by name) histograms kept
    outside the registry — the serving layer passes its always-on
    per-class latency histograms here so a scrape works even when the
    registry itself is disabled.
    """
    lines: list[str] = []
    for name, value in registry.counters.items():
        base = prom_name(name, prefix) + "_total"
        lines.append(f"# TYPE {base} counter")
        lines.append(f"{base} {_format(value)}")
    for name, value in registry.gauges.items():
        base = prom_name(name, prefix) + _unit_suffix(name)
        lines.append(f"# TYPE {base} gauge")
        lines.append(f"{base} {_format(value)}")
    for path, stats in sorted(registry.spans.items()):
        base = prom_name(path, prefix) + "_seconds"
        lines.append(f"# TYPE {base} summary")
        lines.append(f"{base}_count {stats.count}")
        lines.append(f"{base}_sum {_format(stats.seconds)}")
        lines.append(f"# TYPE {base}_min gauge")
        lines.append(f"{base}_min {_format(stats.min_seconds)}")
        lines.append(f"# TYPE {base}_max gauge")
        lines.append(f"{base}_max {_format(stats.max_seconds)}")
    merged = dict(registry.histograms)
    if histograms:
        merged.update(histograms)
    for name in sorted(merged):
        lines.extend(render_histogram(name, merged[name], prefix))
    return "\n".join(lines) + "\n"
