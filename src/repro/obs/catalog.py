"""The metric catalogue: every span, counter and gauge the library emits.

``docs/OBSERVABILITY.md`` renders this catalogue as the user-facing
reference, and ``tests/test_docs.py`` checks the two against each other
in both directions, so a new instrumentation site must be registered
here (and documented) before it can ship.

Names may contain placeholders — ``{level}`` for a stratum number,
``{method}`` / ``{algorithm}`` for a benchmark method label — which
:func:`is_known_metric` expands when validating a concrete emission.
Span paths compose hierarchically (``bench/build/ours/labeling``), so
validation matches the catalogue name against the *suffix* of a path.
"""

from __future__ import annotations

import re
from dataclasses import dataclass

__all__ = ["MetricSpec", "CATALOG", "catalog_names", "catalog_unit",
           "is_known_metric"]

_PLACEHOLDERS = {
    "{level}": r"\d+",
    "{method}": r"[^/]+",
    "{algorithm}": r"[^/]+",
    "{bucket}": r"[a-z0-9-]+",
    "{class}": r"[a-z_]+",
    # engine names are kebab-case, optionally behind the "observed:"
    # wrapper prefix (repro.engine.registry.OBSERVED_PREFIX)
    "{engine}": r"(?:observed:)?[a-z0-9-]+",
    "{observer}": r"[a-z0-9-]+",
    # wire-verb names are snake_case (add_edge, remove_node, ...)
    "{verb}": r"[a-z_]+",
}


@dataclass(frozen=True)
class MetricSpec:
    """One catalogued metric."""

    name: str      #: catalogue name, possibly with placeholders
    kind: str      #: "span" | "counter" | "gauge" | "histogram"
    unit: str      #: "seconds", "count", ...
    emitted: str   #: one line: which code path emits it, and when


CATALOG: tuple[MetricSpec, ...] = (
    # -- spans (units: seconds; aggregated count/total/min/max) -------
    MetricSpec("condense", "span", "seconds",
               "ChainIndex.build — Tarjan SCC condensation of the "
               "input graph"),
    MetricSpec("stratify", "span", "seconds",
               "stratify() — level peeling plus the C_j/P_j link sets"),
    MetricSpec("matching/level-{level}", "span", "seconds",
               "phase 1, once per stratum: bipartite construction, "
               "Hopcroft-Karp, virtual-node spawning for the level "
               "whose bottoms are V_{level}"),
    MetricSpec("resolution", "span", "seconds",
               "phase 2 — transactional virtual-node resolution"),
    MetricSpec("stitch", "span", "seconds",
               "tail-to-head stitch pass; only when a split occurred"),
    MetricSpec("labeling", "span", "seconds",
               "build_labeling() — the reverse-topological index-"
               "sequence merge"),
    MetricSpec("persist/save", "span", "seconds",
               "save_index() — JSON serialisation of a built index"),
    MetricSpec("persist/load", "span", "seconds",
               "load_index() — parse plus validation"),
    MetricSpec("maintenance/rebuild", "span", "seconds",
               "DynamicChainIndex construction and rebuild()"),
    MetricSpec("bench/build/{method}", "span", "seconds",
               "bench harness — full index build of one method"),
    MetricSpec("bench/cover/{method}", "span", "seconds",
               "chain-cover ablation — decomposition only"),
    MetricSpec("bench/matching/{algorithm}", "span", "seconds",
               "matching ablation — one maximum-matching run"),
    MetricSpec("bench/query_batch", "span", "seconds",
               "bench harness — one timed batch of queries"),
    MetricSpec("service/request", "span", "seconds",
               "ReachabilityService — handling of one wire request "
               "(parse to response)"),
    MetricSpec("service/swap", "span", "seconds",
               "IndexManager — one rebuild-and-swap: pack a static "
               "ChainIndex from the shadow's graph and publish it"),
    MetricSpec("engine/build/{engine}", "span", "seconds",
               "EngineSpec.build — construction of one registered "
               "engine (composite builds nest one per component)"),
    MetricSpec("observers/prepare/{observer}", "span", "seconds",
               "ObserverChain.wrap — table build of one observer "
               "(also on re-prepare after a write)"),
    # -- counters (units: count unless noted) -------------------------
    MetricSpec("matching/pairs", "counter", "count",
               "phase 1 — matched pairs, summed over the levels"),
    MetricSpec("matching/bfs_rounds", "counter", "count",
               "hopcroft_karp() — BFS phases run"),
    MetricSpec("matching/augmentations", "counter", "count",
               "hopcroft_karp() — augmenting paths applied"),
    MetricSpec("build/chains", "counter", "count",
               "ChainIndex.build — chains in the final decomposition "
               "(any method; one build per session reads directly)"),
    MetricSpec("build/virtual_nodes", "counter", "count",
               "phase 1 — virtual nodes created (Definition 4)"),
    MetricSpec("build/virtual_edges_direct", "counter", "count",
               "phase 1 — inherited real-parent bipartite edges"),
    MetricSpec("build/virtual_edges_s", "counter", "count",
               "phase 1 — rerouting (support-set) bipartite edges"),
    MetricSpec("build/transfers", "counter", "count",
               "phase 2 — alternating-path transfers committed"),
    MetricSpec("build/descents", "counter", "count",
               "phase 2 — tower descents taken"),
    MetricSpec("build/rollbacks", "counter", "count",
               "phase 2 — transactions rolled back"),
    MetricSpec("build/splits", "counter", "count",
               "phase 2 — matched pairs split (no sound realisation)"),
    MetricSpec("build/stitched", "counter", "count",
               "stitch pass — chains re-joined after splits"),
    MetricSpec("build/unanchored", "counter", "count",
               "phase 2 — virtual nodes never matched from above"),
    MetricSpec("labeling/merge_ops", "counter", "count",
               "build_labeling() — (chain, position) candidate merges, "
               "the paper's O(b*e) work unit"),
    MetricSpec("query/answered", "counter", "count",
               "scalar and batch query paths — reachability queries "
               "answered by the static or dynamic index, or by an "
               "ObserverChain in front of one (batch calls count "
               "len(pairs) in one publish)"),
    MetricSpec("query/prefilter_hits", "counter", "count",
               "scalar and batch query paths — negative queries "
               "rejected by the O(1) topological-rank/level pre-filter "
               "before any binary search; the observer chain counts "
               "its topo-interval and level-bound hits here too, so "
               "the attribution survives the lift out of the kernel"),
    MetricSpec("query/probes", "counter", "count",
               "scalar and batch query paths — binary-search probes "
               "(non-reflexive queries surviving the pre-filter)"),
    MetricSpec("maintenance/nodes_added", "counter", "count",
               "DynamicChainIndex.add_node calls"),
    MetricSpec("maintenance/edges_added", "counter", "count",
               "DynamicChainIndex.add_edge — edges actually inserted"),
    MetricSpec("maintenance/label_updates", "counter", "count",
               "DynamicChainIndex.add_edge — ancestor labels changed "
               "by the upward worklist pass (TolIndex.add_edge counts "
               "its propagated label entries here too)"),
    MetricSpec("maintenance/edges_removed", "counter", "count",
               "TolIndex.remove_edge and IndexManager.remove_edge — "
               "edges actually deleted from the served graph"),
    MetricSpec("maintenance/nodes_removed", "counter", "count",
               "TolIndex.remove_node and IndexManager.remove_node — "
               "nodes deleted along with their incident edges"),
    MetricSpec("service/requests", "counter", "count",
               "ReachabilityService — wire requests received (any op)"),
    MetricSpec("service/batches", "counter", "count",
               "MicroBatcher — coalesced batches handed to a kernel "
               "call (flushes plus inline query_batch requests)"),
    MetricSpec("service/batch_size/{bucket}", "counter", "count",
               "MicroBatcher — batch-size histogram: batches whose "
               "size fell in the bucket (le-1, le-4, le-16, le-64, "
               "le-256, inf)"),
    MetricSpec("service/cache_hits", "counter", "count",
               "MicroBatcher — queries answered from the epoch-keyed "
               "LRU result cache"),
    MetricSpec("service/cache_misses", "counter", "count",
               "MicroBatcher — queries that missed the result cache "
               "and went to the kernel"),
    MetricSpec("service/overloaded", "counter", "count",
               "MicroBatcher.submit — queries rejected by the bounded "
               "queue (the explicit backpressure path)"),
    MetricSpec("service/writes", "counter", "count",
               "IndexManager — writes (inserts and removals) absorbed "
               "by the shadow"),
    MetricSpec("service/writes/{verb}", "counter", "count",
               "IndexManager — the same writes, broken down by wire "
               "verb (add_edge, add_node, remove_edge, remove_node)"),
    MetricSpec("service/swaps", "counter", "count",
               "IndexManager — snapshots promoted by rebuild-and-swap"),
    MetricSpec("service/reattach", "counter", "count",
               "WorkerPool — segment re-attaches completed by workers "
               "after an epoch publish (one per worker per swap)"),
    MetricSpec("service/capture_records", "counter", "count",
               "RequestCapture — wire requests admitted into the "
               "journal ring (serve --capture, after sampling)"),
    MetricSpec("service/capture_dropped", "counter", "count",
               "RequestCapture — oldest journal records evicted when "
               "the bounded ring overflowed"),
    MetricSpec("slo/breaches", "counter", "count",
               "SloTracker.evaluate — objectives newly found "
               "non-compliant over the slow window (each breach event "
               "also lands in the bounded breach log)"),
    MetricSpec("engine/queries/{engine}", "counter", "count",
               "engine adapters — queries answered through the engine "
               "seam (batch calls count len(pairs) in one publish)"),
    MetricSpec("engine/cross_rejects", "counter", "count",
               "CompositeEngine — pairs answered False from the "
               "partition map alone (different weak components)"),
    MetricSpec("observers/hit/{observer}", "counter", "count",
               "ObserverChain — queries settled in O(1) by the named "
               "observer (plus the chain's own 'reflexive' bucket for "
               "same-node/same-SCC pairs)"),
    MetricSpec("observers/miss", "counter", "count",
               "ObserverChain — queries every observer passed on, "
               "answered by the wrapped engine's index instead"),
    # -- gauges -------------------------------------------------------
    MetricSpec("build/levels", "gauge", "levels",
               "stratify() — the stratification height h"),
    MetricSpec("build/components", "gauge", "components",
               "ChainIndex.build — SCC count of the input"),
    MetricSpec("matching/level-{level}/pairs", "gauge", "count",
               "phase 1 — matched pairs at one level"),
    MetricSpec("index/size_words", "gauge", "16-bit words",
               "ChainIndex.build — label size, the paper's table unit"),
    MetricSpec("index/label_bytes", "gauge", "bytes",
               "ChainIndex.build — in-memory label-column footprint "
               "under the built codec (packed CSR words, or the "
               "varint blob plus byte offsets when compressed)"),
    MetricSpec("index/label_entries", "gauge", "entries",
               "ChainIndex.build — total (chain, position) index-"
               "sequence entries across all nodes, codec-independent"),
    MetricSpec("service/queue_depth", "gauge", "queries",
               "MicroBatcher — queue depth observed at each flush"),
    MetricSpec("service/epoch", "gauge", "epoch",
               "IndexManager — epoch of the published snapshot"),
    MetricSpec("service/workers", "gauge", "workers",
               "WorkerPool — live worker processes serving the pool "
               "(0 in single-process mode)"),
    MetricSpec("engine/components", "gauge", "components",
               "CompositeEngine.build — weak components partitioned"),
    MetricSpec("dynamic/label_entries", "gauge", "entries",
               "TolIndex — total Lin/Lout label entries after a "
               "build or any maintenance operation"),
    MetricSpec("observers/o1_answer_ratio", "gauge", "ratio",
               "ObserverChain — share of the last scalar call or batch "
               "answered by observers without touching the engine"),
    MetricSpec("slo/compliance_ratio/{class}", "gauge", "ratio",
               "SloTracker.evaluate — share of the class's slow-window "
               "samples inside its objective threshold (min across the "
               "class's objectives; 'availability' counts ok requests)"),
    MetricSpec("slo/burn_rate_fast/{class}", "gauge", "ratio",
               "SloTracker.evaluate — error-budget burn rate over the "
               "fast window (default 5 m); 1.0 = exactly on budget, "
               "max across the class's objectives"),
    MetricSpec("slo/burn_rate_slow/{class}", "gauge", "ratio",
               "SloTracker.evaluate — error-budget burn rate over the "
               "slow window (default 1 h), the breach-verdict window"),
    # -- histograms (units: seconds; log-bucketed distributions) ------
    MetricSpec("service/latency/{class}", "histogram", "seconds",
               "ReachabilityService — end-to-end latency of one query "
               "request, by answer class (positive, negative, "
               "prefilter_hit, cache_hit, batch, error)"),
    MetricSpec("service/request_latency", "histogram", "seconds",
               "ReachabilityService — end-to-end latency of every "
               "wire request, any op"),
    MetricSpec("service/queue_wait", "histogram", "seconds",
               "MicroBatcher — time a queued query waited between "
               "enqueue and its flush"),
    MetricSpec("service/kernel_batch", "histogram", "seconds",
               "MicroBatcher — duration of one coalesced "
               "is_reachable_many kernel call"),
)


def catalog_names() -> set[str]:
    """Every catalogued metric name (placeholders unexpanded)."""
    return {spec.name for spec in CATALOG}


def _compile(name: str) -> re.Pattern:
    pattern = re.escape(name)
    for placeholder, expansion in _PLACEHOLDERS.items():
        pattern = pattern.replace(re.escape(placeholder), expansion)
    return re.compile(r"(?:^|.*/)" + pattern + r"$")


_MATCHERS = [_compile(spec.name) for spec in CATALOG]


def is_known_metric(name: str) -> bool:
    """True when ``name`` instantiates a catalogued metric.

    Accepts hierarchical span paths by matching the catalogue entry
    against the path suffix: ``bench/build/ours/labeling`` is known
    because ``labeling`` is.
    """
    return any(matcher.match(name) for matcher in _MATCHERS)


def catalog_unit(name: str) -> str | None:
    """The catalogued unit of a concrete metric name, else ``None``.

    Used by the Prometheus renderer to suffix ``_seconds`` onto
    time-valued series; placeholder expansion and span-path suffix
    matching follow :func:`is_known_metric`.
    """
    for spec, matcher in zip(CATALOG, _MATCHERS):
        if matcher.match(name):
            return spec.unit
    return None
