"""Total-order labeling: a fully dynamic 2-hop reachability index.

Every node gets a fixed *rank* in a total priority order (smaller rank
= higher priority, assigned at build time by the TOL degree heuristic
``(out+1)·(in+1)``; nodes added later take the next free rank and
ranks are never reused).  Each node ``x`` carries two label sets of
ranks,

* ``Lout(x)`` — hubs ``h`` with ``x ⇝ h``,
* ``Lin(x)``  — hubs ``h`` with ``h ⇝ x``,

and a query is one set intersection::

    u ⇝ v   iff   Lout(u) ∩ Lin(v) ≠ ∅

The invariant maintained through every mutation is *canonical ⊆
labels ⊆ true*: every stored entry is a true reachability fact, and
the **canonical** entries — ``r(h) ∈ Lin(x)`` iff ``h ⇝ x`` and no
vertex on any ``h ⇝ x`` path outranks ``h`` — are always present.
Canonical labels answer every reachable pair (route any ``a ⇝ b``
through its minimum-rank midpoint), so queries stay exact while
redundant-but-true entries are allowed to accumulate between
:meth:`TolIndex.rebuild` calls.

* **Build** is pruned landmark labeling: hubs are processed in
  ascending rank, each running a forward and a backward BFS that stop
  at nodes already covered by a higher-priority hub.
* **Insert** ``u → v`` resumes exactly the hub BFSs that can gain
  entries: every hub in ``Lin(u)`` continues forward from ``v``,
  every hub in ``Lout(v)`` continues backward from ``u``.
* **Delete** removes the graph edge/node first, then repairs the
  region ``A × D`` (ancestors of the tail × descendants of the head —
  the only pairs whose reachability can change): stale entries are
  *purged* by re-checking suspects against one exact BFS per affected
  hub, and missing canonical entries are *re-grown* by re-running the
  affected hubs' pruned BFSs over the new graph.

The index is DAG-only and DAG-maintaining: an insert that would close
a cycle raises :class:`~repro.graph.errors.NotADAGError` before the
graph is touched (cyclic *input* belongs to the condensation engines).
Labels are keyed by node object, not dense id, because
:meth:`~repro.graph.digraph.DiGraph.remove_node` renumbers ids.
"""

from __future__ import annotations

from collections import deque
from collections.abc import Hashable, Iterable

from repro.graph.digraph import DiGraph
from repro.graph.errors import NodeNotFoundError, NotADAGError
from repro.graph.topology import check_dag
from repro.obs import OBS

__all__ = ["TolIndex"]

Node = Hashable


class TolIndex:
    """An incrementally-maintained 2-hop index over a DAG.

    >>> index = TolIndex.from_graph(
    ...     DiGraph.from_edges([("a", "b"), ("b", "c")]))
    >>> index.is_reachable("a", "c")
    True
    >>> index.remove_edge("b", "c")
    >>> index.is_reachable("a", "c")
    False
    """

    def __init__(self, graph: DiGraph) -> None:
        self._graph = graph
        self._rank: dict[Node, int] = {}
        self._node_of_rank: dict[int, Node] = {}
        self._lin: dict[Node, set[int]] = {}
        self._lout: dict[Node, set[int]] = {}
        #: inverted labels: rank -> the nodes whose Lin/Lout contain it
        self._cover_in: dict[int, set[Node]] = {}
        self._cover_out: dict[int, set[Node]] = {}
        self._next_rank = 0
        self._rebuild_from_graph()

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    @classmethod
    def from_graph(cls, graph: DiGraph) -> "TolIndex":
        """Index a DAG (the graph is copied; cyclic input is rejected)."""
        check_dag(graph)
        return cls(graph.copy())

    def _rebuild_from_graph(self) -> None:
        with OBS.span("maintenance/rebuild"):
            graph = self._graph
            nodes = graph.nodes()
            # TOL's static priority: high-degree nodes first (stable
            # sort keeps insertion order as the tie-break).
            order = sorted(
                nodes,
                key=lambda n: -((graph.out_degree(n) + 1)
                                * (graph.in_degree(n) + 1)))
            self._rank = {node: r for r, node in enumerate(order)}
            self._node_of_rank = dict(enumerate(order))
            self._next_rank = len(order)
            self._lin = {node: set() for node in nodes}
            self._lout = {node: set() for node in nodes}
            self._cover_in = {}
            self._cover_out = {}
            for r_h, hub in enumerate(order):
                self._label_pass(r_h, hub, forward=True)
                self._label_pass(r_h, hub, forward=False)
        self._publish_gauge()

    def _label_pass(self, r_h: int, hub: Node, forward: bool) -> None:
        """One pruned landmark BFS: spread ``r_h`` from ``hub``."""
        graph = self._graph
        rank = self._rank
        if forward:
            hub_labels, labels, step = (self._lout[hub], self._lin,
                                        graph.successors)
        else:
            hub_labels, labels, step = (self._lin[hub], self._lout,
                                        graph.predecessors)
        add = self._add_in if forward else self._add_out
        queue = deque((hub,))
        seen = {hub}
        while queue:
            x = queue.popleft()
            if x != hub:
                if rank[x] < r_h:
                    continue            # a higher-priority hub owns x
                if not hub_labels.isdisjoint(labels[x]):
                    continue            # pair (hub, x) already covered
            add(x, r_h)
            for y in step(x):
                if y not in seen:
                    seen.add(y)
                    queue.append(y)

    def rebuild(self) -> None:
        """Re-rank and relabel from scratch (compacts the labels —
        maintenance keeps them *correct* but not *minimal*)."""
        self._rebuild_from_graph()

    # ------------------------------------------------------------------
    # label bookkeeping
    # ------------------------------------------------------------------
    def _add_in(self, node: Node, r: int) -> None:
        self._lin[node].add(r)
        self._cover_in.setdefault(r, set()).add(node)

    def _add_out(self, node: Node, r: int) -> None:
        self._lout[node].add(r)
        self._cover_out.setdefault(r, set()).add(node)

    def _drop_in(self, node: Node, r: int) -> None:
        self._lin[node].discard(r)
        owners = self._cover_in.get(r)
        if owners is not None:
            owners.discard(node)
            if not owners:
                del self._cover_in[r]

    def _drop_out(self, node: Node, r: int) -> None:
        self._lout[node].discard(r)
        owners = self._cover_out.get(r)
        if owners is not None:
            owners.discard(node)
            if not owners:
                del self._cover_out[r]

    def _publish_gauge(self) -> None:
        if OBS.enabled:
            OBS.gauge("dynamic/label_entries", self.label_entries())

    # ------------------------------------------------------------------
    # updates: insertion
    # ------------------------------------------------------------------
    def add_node(self, node: Node) -> None:
        """Insert an isolated node at the lowest priority."""
        self._graph.add_node(node)
        r = self._next_rank
        self._next_rank += 1
        self._rank[node] = r
        self._node_of_rank[r] = node
        self._lin[node] = set()
        self._lout[node] = set()
        self._add_in(node, r)
        self._add_out(node, r)
        if OBS.enabled:
            OBS.count("maintenance/nodes_added")
        self._publish_gauge()

    def add_edge(self, tail: Node, head: Node) -> None:
        """Insert ``tail → head``; rejects edges that would close a cycle.

        Exactly the hub BFSs that can gain entries are resumed: hubs
        reaching ``tail`` spread forward from ``head``, hubs reached
        from ``head`` spread backward from ``tail``.
        """
        graph = self._graph
        graph.node_id(tail)
        graph.node_id(head)
        if tail == head:
            return
        if self._covered(head, tail):
            raise NotADAGError(
                f"edge ({tail!r}, {head!r}) would create a cycle")
        graph.add_edge(tail, head)
        if OBS.enabled:
            OBS.count("maintenance/edges_added")
        if self._covered(tail, head):
            return                       # no pair's reachability changed
        label_updates = 0
        for r_h in sorted(self._lin[tail]):
            label_updates += self._insert_pass(r_h, head, forward=True)
        for r_h in sorted(self._lout[head]):
            label_updates += self._insert_pass(r_h, tail, forward=False)
        if OBS.enabled:
            OBS.count("maintenance/label_updates", label_updates)
        self._publish_gauge()

    def _insert_pass(self, r_h: int, start: Node, forward: bool) -> int:
        """Resume hub ``r_h``'s pruned BFS from ``start``."""
        graph = self._graph
        rank = self._rank
        hub = self._node_of_rank[r_h]
        if forward:
            hub_labels, labels, step = (self._lout[hub], self._lin,
                                        graph.successors)
        else:
            hub_labels, labels, step = (self._lin[hub], self._lout,
                                        graph.predecessors)
        add = self._add_in if forward else self._add_out
        added = 0
        queue = deque((start,))
        seen = {start}
        while queue:
            x = queue.popleft()
            if rank[x] < r_h:
                continue
            if not hub_labels.isdisjoint(labels[x]):
                continue                 # covered (incl. r_h already set)
            add(x, r_h)
            added += 1
            for y in step(x):
                if y not in seen:
                    seen.add(y)
                    queue.append(y)
        return added

    # ------------------------------------------------------------------
    # updates: deletion
    # ------------------------------------------------------------------
    def remove_edge(self, tail: Node, head: Node) -> None:
        """Remove ``tail → head`` and repair the labels in place.

        Raises :class:`~repro.graph.errors.EdgeNotFoundError` if the
        edge is absent, :class:`NodeNotFoundError` for an unknown
        endpoint.
        """
        graph = self._graph
        graph.remove_edge(tail, head)
        if OBS.enabled:
            OBS.count("maintenance/edges_removed")
        if head in self._reach_set(tail, forward=True):
            # an alternate tail ⇝ head path survives, so no pair's
            # reachability changed and every label entry is still true
            self._publish_gauge()
            return
        ancestors = self._reach_set(tail, forward=False)
        descendants = self._reach_set(head, forward=True)
        self._purge_and_repair(ancestors, descendants)
        self._publish_gauge()

    def remove_node(self, node: Node) -> None:
        """Remove ``node`` with its incident edges; repair in place.

        Raises :class:`NodeNotFoundError` (``role="node"``) if absent.
        """
        graph = self._graph
        if not graph.has_node(node):
            raise NodeNotFoundError(node, role="node")
        had_preds = bool(graph.predecessors(node))
        had_succs = bool(graph.successors(node))
        ancestors = self._reach_set(node, forward=False)
        ancestors.discard(node)
        descendants = self._reach_set(node, forward=True)
        descendants.discard(node)
        graph.remove_node(node)
        # retire the node's own hub: every entry of rank r_n is gone
        # (its rank is a permanent hole — never reused)
        r_n = self._rank.pop(node)
        del self._node_of_rank[r_n]
        for x in self._cover_in.pop(r_n, ()):
            if x != node:
                self._lin[x].discard(r_n)
        for x in self._cover_out.pop(r_n, ()):
            if x != node:
                self._lout[x].discard(r_n)
        for r in self._lin.pop(node):
            owners = self._cover_in.get(r)
            if owners is not None:
                owners.discard(node)
        for r in self._lout.pop(node):
            owners = self._cover_out.get(r)
            if owners is not None:
                owners.discard(node)
        if OBS.enabled:
            OBS.count("maintenance/nodes_removed")
        if had_preds and had_succs:
            # only transit pairs (ancestor, descendant) can have lost
            # their last path; a source/sink node breaks none
            self._purge_and_repair(ancestors, descendants)
        self._publish_gauge()

    def _purge_and_repair(self, ancestors: set[Node],
                          descendants: set[Node]) -> None:
        """Fix the ``ancestors × descendants`` region after a removal.

        Any entry that became false pairs a hub in ``ancestors`` with
        an owner in ``descendants`` (Lin side; mirrored for Lout) —
        a path that died must have crossed the removed edge/node.
        Purge those suspects against one exact BFS per affected hub,
        then re-run the affected hubs' pruned label passes: entries
        that became *canonical* (their old higher-priority witness
        path died) are re-grown.  Repair prunes only on rank and on a
        strictly-smaller covering hub — never on presence — so it is
        complete even though the labels it consults are mid-repair.
        """
        rank = self._rank
        for hub in ancestors:
            owners = self._cover_in.get(rank[hub])
            if owners is None or owners.isdisjoint(descendants):
                continue
            suspects = owners & descendants
            still = self._reach_set(hub, forward=True)
            for x in suspects - still:
                self._drop_in(x, rank[hub])
        for hub in descendants:
            owners = self._cover_out.get(rank[hub])
            if owners is None or owners.isdisjoint(ancestors):
                continue
            suspects = owners & ancestors
            still = self._reach_set(hub, forward=False)
            for x in suspects - still:
                self._drop_out(x, rank[hub])
        # hubs that can no longer reach the region cannot be missing
        # entries into it — one multi-source BFS each side filters them
        reaches_region = self._multi_reach_set(descendants,
                                               forward=False)
        reached_from_region = self._multi_reach_set(ancestors,
                                                    forward=True)
        for hub in sorted(ancestors & reaches_region, key=rank.get):
            self._repair_pass(rank[hub], hub, forward=True)
        for hub in sorted(descendants & reached_from_region,
                          key=rank.get):
            self._repair_pass(rank[hub], hub, forward=False)

    def _repair_pass(self, r_h: int, hub: Node, forward: bool) -> None:
        """Re-grow hub ``r_h``'s canonical entries over the new graph."""
        graph = self._graph
        rank = self._rank
        if forward:
            hub_labels, labels, step = (self._lout[hub], self._lin,
                                        graph.successors)
        else:
            hub_labels, labels, step = (self._lin[hub], self._lout,
                                        graph.predecessors)
        add = self._add_in if forward else self._add_out
        queue = deque((hub,))
        seen = {hub}
        while queue:
            x = queue.popleft()
            if x != hub:
                if rank[x] < r_h:
                    continue
                witnesses = hub_labels & labels[x]
                witnesses.discard(r_h)
                if witnesses:
                    continue             # a smaller hub covers (hub, x)
                if r_h not in labels[x]:
                    add(x, r_h)
            for y in step(x):
                if y not in seen:
                    seen.add(y)
                    queue.append(y)

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def is_reachable(self, source: Node, target: Node) -> bool:
        """Reflexive reachability on node objects.

        Raises :class:`NodeNotFoundError` with ``role`` naming the
        missing operand (``"source"`` / ``"target"``), matching the
        static :meth:`ChainIndex.is_reachable` contract.
        """
        if source not in self._lout:
            raise NodeNotFoundError(source, role="source")
        if target not in self._lin:
            raise NodeNotFoundError(target, role="target")
        return self._covered(source, target)

    def is_reachable_many(
            self, pairs: Iterable[tuple[Node, Node]]) -> list[bool]:
        """Answer a batch of ``(source, target)`` pairs in one pass."""
        lout = self._lout
        lin = self._lin
        answers: list[bool] = []
        for source, target in pairs:
            out_labels = lout.get(source)
            if out_labels is None:
                raise NodeNotFoundError(source, role="source")
            in_labels = lin.get(target)
            if in_labels is None:
                raise NodeNotFoundError(target, role="target")
            answers.append(not out_labels.isdisjoint(in_labels))
        if OBS.enabled:
            OBS.count("query/answered", len(answers))
        return answers

    def _covered(self, source: Node, target: Node) -> bool:
        return not self._lout[source].isdisjoint(self._lin[target])

    # ------------------------------------------------------------------
    # traversal helpers
    # ------------------------------------------------------------------
    def _reach_set(self, start: Node, forward: bool) -> set[Node]:
        """Exact BFS closure of ``start`` (inclusive), either way."""
        step = (self._graph.successors if forward
                else self._graph.predecessors)
        seen = {start}
        queue = deque((start,))
        while queue:
            for y in step(queue.popleft()):
                if y not in seen:
                    seen.add(y)
                    queue.append(y)
        return seen

    def _multi_reach_set(self, starts: set[Node],
                         forward: bool) -> set[Node]:
        """Exact multi-source BFS closure of ``starts`` (inclusive)."""
        step = (self._graph.successors if forward
                else self._graph.predecessors)
        seen = set(starts)
        queue = deque(starts)
        while queue:
            for y in step(queue.popleft()):
                if y not in seen:
                    seen.add(y)
                    queue.append(y)
        return seen

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------
    @property
    def graph(self) -> DiGraph:
        """The indexed DAG — a live view, mutate only through the index."""
        return self._graph

    @property
    def num_nodes(self) -> int:
        """Nodes currently indexed."""
        return self._graph.num_nodes

    def label_entries(self) -> int:
        """Total stored Lin + Lout entries (the ``dynamic/label_entries``
        gauge)."""
        return (sum(len(labels) for labels in self._lin.values())
                + sum(len(labels) for labels in self._lout.values()))

    def size_words(self) -> int:
        """Same 16-bit-word accounting as the other indexes."""
        return 2 * self._graph.num_nodes + 2 * self.label_entries()
