"""repro.dynamic — incrementally-maintained total-order labeling.

The write-heavy counterpart of the static chain engines: a TOL-style
2-hop reachability index (Zhu et al., SIGMOD'14; the butterfly-style
variant sketched in ROADMAP.md) that absorbs **edge and node
insertions and deletions in place**, without the rebuild-and-swap the
rest of the serving stack falls back to.  Registered behind the
engine seam as ``dynamic-tol`` — the only engine advertising the
``deletable`` capability flag.

See ``docs/DYNAMIC.md`` for the design, the maintenance cost model
and when to prefer ``dynamic-tol`` over rebuild-and-swap.
"""

from repro.dynamic.tol import TolIndex

__all__ = ["TolIndex"]
