"""Opt-in request journal: a bounded, sampled ring of wire requests.

``repro-graph serve --capture PATH`` attaches a :class:`RequestCapture`
to the service.  The serving path calls :meth:`RequestCapture.record`
once per captured request — query, query_batch, and the write verbs —
with the fields replay needs: a **monotonic** millisecond offset from
journal start, the verb and its arguments, the answer class, the
snapshot epoch, the measured latency, and the outcome.  When the
service is off (``capture=None``, the default) the only cost on the
request path is one ``is not None`` check, which is what keeps the
feature inside the <2% disabled-overhead CI gate.

Bounding: the ring holds at most ``capacity`` records; on overflow the
*oldest* record is evicted and counted in :attr:`dropped` (and in the
``service/capture_dropped`` counter when the OBS registry is enabled),
so a long-running server journals its trailing window, never unbounded
memory.  ``sample`` < 1.0 keeps that window representative under heavy
traffic by admitting each request with fixed probability from a seeded
:class:`random.Random` — deterministic for tests.

On flush (and on service shutdown) the journal is written as NDJSON: a
header line (``{"kind": "repro.capture", "v": 1, ...}``) followed by
one record per line, ascending ``ts_ms``.  :func:`load_journal` reads
it back; :func:`repro.bench.replay.schedule_from_journal` turns it
into a replayable schedule.  Format reference: ``docs/WORKLOADS.md``.
"""

from __future__ import annotations

import json
import random
import threading
import time
from collections import deque
from pathlib import Path

from repro.obs import OBS

__all__ = ["RequestCapture", "load_journal", "CAPTURE_KIND",
           "CAPTURE_VERSION"]

CAPTURE_KIND = "repro.capture"
CAPTURE_VERSION = 1

#: verbs worth journaling (responses to ping/stats/metrics/slo carry
#: no replayable load).
CAPTURED_OPS = frozenset({
    "query", "query_batch",
    "add_edge", "add_node", "remove_edge", "remove_node", "reload",
})


class RequestCapture:
    """Bounded sampling NDJSON journal of wire requests."""

    def __init__(self, path, *, capacity: int = 65536,
                 sample: float = 1.0, seed: int = 0) -> None:
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        if not 0.0 < sample <= 1.0:
            raise ValueError("sample must be in (0, 1]")
        self.path = Path(path)
        self.capacity = capacity
        self.sample = sample
        self._ring: deque[dict] = deque()
        self._rng = random.Random(seed)
        self._lock = threading.Lock()
        self._origin = time.monotonic()
        self._started_unix = time.time()
        self.seen = 0        #: capturable requests offered
        self.sampled = 0     #: requests admitted past the sampler
        self.dropped = 0     #: oldest records evicted by the ring bound

    def record(self, op: str, *, klass: str | None = None,
               **fields) -> None:
        """Journal one request (drops ``None`` fields; cheap when
        sampled out).  Called from the serving path; ``klass`` lands
        in the record as ``"class"``."""
        now = time.monotonic()
        with self._lock:
            self.seen += 1
            if self.sample < 1.0 and self._rng.random() >= self.sample:
                return
            self.sampled += 1
            if len(self._ring) >= self.capacity:
                self._ring.popleft()
                self.dropped += 1
                if OBS.enabled:
                    OBS.count("service/capture_dropped")
            entry = {"ts_ms": round(1e3 * (now - self._origin), 3),
                     "op": op}
            if klass is not None:
                entry["class"] = klass
            entry.update((key, value) for key, value in fields.items()
                         if value is not None)
            self._ring.append(entry)
        if OBS.enabled:
            OBS.count("service/capture_records")

    # -- introspection ------------------------------------------------
    def __len__(self) -> int:
        with self._lock:
            return len(self._ring)

    def describe(self) -> dict:
        """Counters for logs and the serve shutdown summary."""
        with self._lock:
            return {"path": str(self.path), "records": len(self._ring),
                    "seen": self.seen, "sampled": self.sampled,
                    "dropped": self.dropped, "capacity": self.capacity,
                    "sample": self.sample}

    # -- persistence --------------------------------------------------
    def flush(self) -> Path:
        """Write header + ring to :attr:`path` (atomic via rename)."""
        with self._lock:
            records = list(self._ring)
            header = {"kind": CAPTURE_KIND, "v": CAPTURE_VERSION,
                      "started_unix": self._started_unix,
                      "capacity": self.capacity, "sample": self.sample,
                      "seen": self.seen, "sampled": self.sampled,
                      "dropped": self.dropped, "records": len(records)}
        tmp = self.path.with_name(self.path.name + ".tmp")
        with tmp.open("w", encoding="utf-8") as stream:
            stream.write(json.dumps(header, sort_keys=True,
                                    separators=(",", ":")) + "\n")
            for entry in records:
                stream.write(json.dumps(entry, sort_keys=True,
                                        separators=(",", ":")) + "\n")
        tmp.replace(self.path)
        return self.path

    def close(self) -> Path:
        """Flush; the journal is a plain file, nothing else to release."""
        return self.flush()


def load_journal(path) -> tuple[dict, list[dict]]:
    """Read a capture journal back as ``(header, records)``.

    Tolerates a missing header (plain NDJSON of records) so
    hand-written schedules replay through the same loader.
    """
    header: dict = {}
    records: list[dict] = []
    with Path(path).open("r", encoding="utf-8") as stream:
        for line in stream:
            line = line.strip()
            if not line:
                continue
            entry = json.loads(line)
            if not isinstance(entry, dict):
                raise ValueError("journal lines must be JSON objects")
            if entry.get("kind") == CAPTURE_KIND and not records:
                header = entry
                continue
            records.append(entry)
    return header, records
