"""Exception hierarchy of the serving layer.

Service errors deliberately do **not** derive from
:class:`repro.graph.errors.GraphError`: a full queue or a dropped
connection is an operational condition of the *server*, not a defect in
the *graph*.  The TCP server maps each subclass to a stable wire-level
``error`` code (see ``docs/SERVICE.md``) so clients can branch without
parsing messages.
"""

from __future__ import annotations

__all__ = [
    "ServiceError",
    "OverloadedError",
    "WritesUnsupportedError",
    "RemoteError",
]


class ServiceError(Exception):
    """Base class for all errors raised by :mod:`repro.service`."""


class OverloadedError(ServiceError):
    """The micro-batch queue is full; the request was rejected.

    This is the backpressure contract: the server sheds load with an
    explicit ``overloaded`` error instead of buffering without bound.
    Clients should back off and retry.
    """

    def __init__(self, pending: int, limit: int) -> None:
        super().__init__(
            f"query queue full ({pending} pending, limit {limit}); "
            f"retry with backoff")
        self.pending = pending
        self.limit = limit


class WritesUnsupportedError(ServiceError):
    """The manager has no dynamic shadow, so writes cannot be absorbed.

    Happens when the served graph was cyclic at build time (the dynamic
    index requires a DAG) or the manager was opened read-only.
    """


class RemoteError(ServiceError):
    """The server answered a client request with an error response.

    ``code`` carries the wire-level error code (``"overloaded"``,
    ``"unknown_node"``, ``"cycle"``, ``"bad_request"``, ``"timeout"``,
    ``"unsupported"``, ``"internal"``); the message is the server's
    human-readable explanation.
    """

    def __init__(self, code: str, message: str) -> None:
        super().__init__(f"{code}: {message}")
        self.code = code
