"""Zero-copy snapshot publishing over POSIX shared memory.

The packed :class:`~repro.core.index.ChainIndex` kernel is a handful
of contiguous native signed-long buffers (PR 2's CSR layout), which is
exactly the shape that maps into
:class:`multiprocessing.shared_memory.SharedMemory`: the parent
process dumps one epoch's labeling **bytes** into a named segment once
(:func:`dump_index`), and any number of worker processes attach the
same segment read-only (:func:`attach_index`) and serve queries
against ``memoryview``-backed labelings — no JSON parse, no array
copy, one physical copy of the label data for the whole pool.

Segment layout (one contiguous region)::

    [0:8)              MAGIC  b"reproSHM"
    [8:16)             header length H (uint64, little-endian)
    [16:16+H)          header JSON (utf-8)
    data_start = align8(16 + H)
    data_start + fields[name][0]   raw bytes of each packed array
    data_start + meta[0]           meta JSON (members/dag_edges/chains)

The header describes everything needed to map the arrays back::

    {"version": 2, "epoch": E, "labeling_crc32": CRC,
     "codec": "packed" | "compressed", "entries": N,
     "itemsize": 8, "byteorder": "little", "num_chains": K,
     "method": "stratified",
     "fields": {"chain_of": [offset, count], ...},
     "meta": [offset, length]}

Layout version 2 added the ``codec`` field: a ``compressed`` segment
carries the four scalar columns as signed-long arrays plus the
``sequence_byte_offsets`` array and the raw varint ``sequence_blob``
(its ``fields`` count is a byte length), exactly the columns of
:class:`repro.core.labelstore.LabelStore` — workers attach the blob
as a read-only byte view and decode per query, so the zero-copy
property holds for both codecs.

``labeling_crc32`` is the *same* checksum persistence records for the
segment's codec (:meth:`repro.core.labelstore.LabelStore.checksum` —
for ``compressed`` the CRC covers the raw varint bytes), so a segment
corrupted or torn mid-publish is rejected at attach with
:class:`~repro.graph.errors.IndexFormatError` — exactly like a
truncated index file.  ``itemsize`` / ``byteorder`` guard against a
reader whose ``array('l')`` width or endianness differs from the
writer's (impossible for a worker forked from the same interpreter,
cheap to check anyway).

Lifecycle contract: the **creator** (the pool parent) owns the
segment — it keeps the :class:`SharedMemory` handle and calls
``close()`` + ``unlink()`` once every worker has re-attached to a
newer epoch.  An **attacher** never unlinks; it detaches with
:meth:`AttachedIndex.close` after dropping every reference to the
borrowed index (the mapping cannot be released while exported
memoryviews are alive — ``close`` raises :class:`BufferError` then).
Attachers never register with the ``resource_tracker``, so a worker
exiting does not unlink a segment the rest of the pool still serves
(Python 3.13's ``track=False`` where available, a register stub around
the constructor before that).
"""

from __future__ import annotations

import json
import os
import secrets
import struct
import sys
from array import array
from multiprocessing import resource_tracker
from multiprocessing.shared_memory import SharedMemory

from repro.core.chains import ChainDecomposition
from repro.core.index import ChainIndex
from repro.core.labeling import ChainLabeling, labeling_from_store
from repro.core.labelstore import (
    CODECS,
    LabelStore,
    compressed_checksum,
    packed_checksum,
)
from repro.graph.digraph import DiGraph
from repro.graph.errors import GraphFormatError, IndexFormatError
from repro.graph.scc import Condensation

__all__ = ["dump_index", "attach_index", "AttachedIndex",
           "segment_name", "SHM_VERSION", "MAGIC"]

MAGIC = b"reproSHM"
SHM_VERSION = 2
_ITEMSIZE = array("l").itemsize
_BYTEORDER = sys.byteorder


def _align8(offset: int) -> int:
    return (offset + 7) & ~7


def segment_name(prefix: str = "repro") -> str:
    """A collision-resistant segment base name for this process."""
    return f"{prefix}-{os.getpid()}-{secrets.token_hex(4)}"


def dump_index(index: ChainIndex, name: str | None = None, *,
               epoch: int = 0) -> SharedMemory:
    """Publish ``index`` into a named shared-memory segment.

    Writes the label-store columns (``store.fields()`` under the
    index's codec — the CSR arrays for ``packed``, the scalar columns
    plus byte offsets and the raw varint blob for ``compressed``)
    byte-for-byte plus a JSON meta region (SCC members, condensation
    edges, chains) and the self-describing header above.  Returns the
    created :class:`SharedMemory` — the caller owns it and must
    ``close()`` and ``unlink()`` it when no attacher needs it any
    more.

    Raises :class:`GraphFormatError` when a node label is not a JSON
    scalar (same contract as persistence).
    """
    if not isinstance(index, ChainIndex):
        raise GraphFormatError(
            f"cannot publish {type(index).__name__} to shared memory: "
            f"only a packed ChainIndex maps into a segment")
    condensation = index._condensation
    meta = {
        "members": condensation.members,
        "dag_edges": [list(edge) for edge in condensation.dag.edges()],
        "chains": index._decomposition.chains,
        "method": index.method,
    }
    try:
        meta_bytes = json.dumps(meta, separators=(",", ":")).encode("utf-8")
    except TypeError as exc:
        raise GraphFormatError(
            f"node labels are not JSON-serialisable: {exc}") from None
    store = index._labeling.store
    fields = store.fields()
    field_bytes = {field: bytes(buffer)
                   for field, buffer in fields.items()}
    itemsize = _ITEMSIZE

    offset = 0
    layout: dict[str, list[int]] = {}
    for field, raw in field_bytes.items():
        # counts are array items, except the blob's — a byte length.
        count = (len(raw) if field == "sequence_blob"
                 else len(fields[field]))
        layout[field] = [offset, count]
        offset = _align8(offset + len(raw))
    meta_offset = offset
    offset = _align8(offset + len(meta_bytes))

    header = {
        "version": SHM_VERSION,
        "epoch": epoch,
        "labeling_crc32": store.checksum(),
        "codec": store.codec,
        "entries": store.num_entries,
        "itemsize": itemsize,
        "byteorder": _BYTEORDER,
        "num_chains": store.num_chains,
        "method": index.method,
        "fields": layout,
        "meta": [meta_offset, len(meta_bytes)],
    }
    header_bytes = json.dumps(header, separators=(",", ":")).encode("utf-8")
    data_start = _align8(16 + len(header_bytes))
    total = data_start + offset

    shm = SharedMemory(name=name or segment_name(), create=True,
                       size=max(total, 1))
    try:
        buf = shm.buf
        buf[0:8] = MAGIC
        buf[8:16] = struct.pack("<Q", len(header_bytes))
        buf[16:16 + len(header_bytes)] = header_bytes
        for field, raw in field_bytes.items():
            start = data_start + layout[field][0]
            buf[start:start + len(raw)] = raw
        buf[data_start + meta_offset:
            data_start + meta_offset + len(meta_bytes)] = meta_bytes
    except BaseException:
        shm.close()
        shm.unlink()
        raise
    return shm


class AttachedIndex:
    """A read-only :class:`ChainIndex` borrowed from a segment.

    ``index`` answers queries against memoryviews over the mapped
    segment; ``epoch`` and ``labeling_crc32`` echo the publisher's
    header.  :meth:`close` detaches — every reference to ``index``
    (and any labeling view taken from it) must be dropped first, or
    the mapping is still exported and ``close`` raises
    :class:`BufferError`.
    """

    def __init__(self, shm: SharedMemory, index: ChainIndex,
                 epoch: int, labeling_crc32: int) -> None:
        self.shm = shm
        self.index: ChainIndex | None = index
        self.epoch = epoch
        self.labeling_crc32 = labeling_crc32
        self.name = shm.name

    def close(self) -> None:
        """Drop the borrowed index and release the mapping.

        Raises :class:`BufferError` when views over the segment are
        still alive elsewhere (e.g. the index is still published as a
        snapshot backend) — the caller defers and retries after the
        last reference is gone.
        """
        self.index = None
        try:
            self.shm.close()
        except BufferError:
            import gc
            gc.collect()                     # break any lingering cycle
            self.shm.close()

    def __repr__(self) -> str:
        state = "closed" if self.index is None else "attached"
        return f"<AttachedIndex {self.name} epoch={self.epoch} {state}>"


def _attach_segment(name: str) -> SharedMemory:
    """Attach without registering with the resource tracker.

    An attacher must never unlink the segment — the creator owns
    reclamation.  Python 3.13 grew ``track=False`` for exactly this;
    on earlier versions attach-side registration is suppressed by
    stubbing ``resource_tracker.register`` around the constructor
    (bpo-39959).  Unregistering *after* the fact would be wrong here,
    not just ugly: pool workers share the parent's tracker process, so
    a worker's unregister would erase the creator's registration and
    the tracker would log a KeyError when the parent finally unlinks.
    """
    try:
        return SharedMemory(name=name, track=False)
    except TypeError:
        original = resource_tracker.register
        resource_tracker.register = lambda *args, **kwargs: None
        try:
            return SharedMemory(name=name)
        finally:
            resource_tracker.register = original


def attach_index(name: str) -> AttachedIndex:
    """Attach the segment ``name`` and borrow its index read-only.

    Validates the magic, layout version, item width and byte order,
    recomputes ``labeling_crc32`` over the mapped arrays and compares
    it against the header (raising
    :class:`~repro.graph.errors.IndexFormatError` on mismatch — a torn
    or corrupt segment is never served), then constructs a
    :class:`ChainIndex` whose labeling holds read-only memoryview
    slices of the mapping: zero bytes of label data are copied.
    """
    shm = _attach_segment(name)
    try:
        return _attach_validated(shm)
    except BaseException:
        shm.close()
        raise


def _attach_validated(shm: SharedMemory) -> AttachedIndex:
    buf = shm.buf
    if bytes(buf[0:8]) != MAGIC:
        raise IndexFormatError(
            f"segment {shm.name!r} is not a repro snapshot "
            f"(bad magic)")
    header_len = struct.unpack("<Q", bytes(buf[8:16]))[0]
    try:
        header = json.loads(bytes(buf[16:16 + header_len]))
    except (ValueError, UnicodeDecodeError) as exc:
        raise IndexFormatError(
            f"segment {shm.name!r} has a corrupt header: {exc}"
        ) from None
    if header.get("version") != SHM_VERSION:
        raise IndexFormatError(
            f"segment {shm.name!r} has layout version "
            f"{header.get('version')!r}; this build reads "
            f"{SHM_VERSION}")
    if header.get("byteorder") != _BYTEORDER:
        raise IndexFormatError(
            f"segment {shm.name!r} was written {header.get('byteorder')}"
            f"-endian; this host is {_BYTEORDER}-endian")
    itemsize = _ITEMSIZE
    if header.get("itemsize") != itemsize:
        raise IndexFormatError(
            f"segment {shm.name!r} uses {header.get('itemsize')}-byte "
            f"items; this interpreter's array('l') is {itemsize} bytes")
    codec = header.get("codec", "packed")
    if codec not in CODECS:
        raise IndexFormatError(
            f"segment {shm.name!r} declares unknown label codec "
            f"{codec!r}; this build reads {CODECS}")
    data_start = _align8(16 + header_len)
    views: dict[str, memoryview] = {}
    try:
        for field, (offset, count) in header["fields"].items():
            start = data_start + offset
            if field == "sequence_blob":     # count is a byte length
                views[field] = buf[start:start + count].toreadonly()
            else:
                views[field] = (buf[start:start + count * itemsize]
                                .cast("l").toreadonly())
        recorded = header["labeling_crc32"]
        actual = (packed_checksum if codec == "packed"
                  else compressed_checksum)(views)
        if actual != recorded:
            raise IndexFormatError(
                f"segment {shm.name!r} checksum mismatch: header "
                f"records CRC32 {recorded}, arrays hash to {actual} — "
                f"the segment is torn or corrupt; re-publish it")
        meta_offset, meta_len = header["meta"]
        meta = json.loads(bytes(buf[data_start + meta_offset:
                                    data_start + meta_offset + meta_len]))
        if codec == "packed":
            labeling = ChainLabeling(
                num_chains=header["num_chains"],
                chain_of=views["chain_of"],
                position_of=views["position_of"],
                rank_of=views["rank_of"],
                level_of=views["level_of"],
                seq_offsets=views["sequence_offsets"],
                seq_chains=views["sequence_chains"],
                seq_positions=views["sequence_positions"],
            )
        else:
            labeling = labeling_from_store(LabelStore.compressed(
                header["num_chains"],
                chain_of=views["chain_of"],
                position_of=views["position_of"],
                rank_of=views["rank_of"],
                level_of=views["level_of"],
                seq_byte_offsets=views["sequence_byte_offsets"],
                seq_blob=views["sequence_blob"],
                num_entries=header["entries"],
            ))
        index = _index_from_meta(meta, labeling, header["method"])
    except BaseException:
        views.clear()                        # release before shm.close()
        raise
    return AttachedIndex(shm, index, header["epoch"], recorded)


def _index_from_meta(meta: dict, labeling: ChainLabeling,
                     method: str) -> ChainIndex:
    """Rebuild the condensation/decomposition around borrowed labels.

    Mirrors persistence's document reconstruction; the heavyweight
    part — the label arrays — stays in the segment.
    """
    members = meta["members"]
    component_of: dict = {}
    for component, nodes in enumerate(members):
        for node in nodes:
            component_of[node] = component
    dag = DiGraph()
    for component in range(len(members)):
        dag.add_node(component)
    for tail, head in meta["dag_edges"]:
        dag.add_edge(tail, head)
    condensation = Condensation(dag=dag, component_of=component_of,
                                members=members)
    decomposition = ChainDecomposition(chains=meta["chains"])
    return ChainIndex(condensation, decomposition, labeling, method)
