"""A small blocking client for the NDJSON reachability service.

Used by ``repro-graph query --remote HOST:PORT``, the serve-smoke load
generator's sequential baseline, and any synchronous embedder.  One
socket, one request in flight at a time (responses arrive in request
order); concurrency comes from opening more clients.

Idempotent read verbs (``query``, ``query_batch``, ``stats``,
``metrics``, ``ping``) transparently reconnect and retry **once** when
the connection drops mid-call (``ECONNRESET`` / ``EPIPE`` / the server
closing the stream) — under the worker pool a respawned worker
replaces a SIGKILLed sibling within the same port, so the client's
next attempt lands on a healthy process instead of surfacing a
:class:`ServiceError`.  Writes and timeouts are never retried: a write
may have been applied before the connection died, and a timeout says
nothing about the connection.
"""

from __future__ import annotations

import json
import socket

from repro.service.errors import RemoteError, ServiceError

__all__ = ["ServiceClient"]

#: wire ops safe to retry after a transparent reconnect: answering one
#: twice is indistinguishable from answering it once.  The write verbs
#: — ``add_edge`` / ``add_node`` / ``remove_edge`` / ``remove_node`` /
#: ``reload`` — are deliberately absent: a dropped connection says
#: nothing about whether the mutation landed, and replaying a removal
#: could delete an edge re-inserted in between.
_IDEMPOTENT_OPS = frozenset(
    {"query", "query_batch", "stats", "metrics", "slo", "ping"})


class _ConnectionDropped(Exception):
    """Internal: the TCP connection died mid-call (retryable)."""

    def __init__(self, message: str,
                 cause: OSError | None = None) -> None:
        super().__init__(message)
        self.cause = cause


class ServiceClient:
    """Blocking NDJSON client: ``ServiceClient("127.0.0.1", 7431)``."""

    def __init__(self, host: str, port: int,
                 timeout: float = 10.0) -> None:
        self._host = host
        self._port = port
        self._timeout = timeout
        self._connect()

    def _connect(self) -> None:
        self._sock = socket.create_connection(
            (self._host, self._port), timeout=self._timeout)
        self._reader = self._sock.makefile("rb")

    @classmethod
    def from_address(cls, address: str,
                     timeout: float = 10.0) -> "ServiceClient":
        """Connect to a ``HOST:PORT`` string (IPv6 in brackets)."""
        host, _, port = address.rpartition(":")
        if not host or not port.isdigit():
            raise ValueError(
                f"expected HOST:PORT, got {address!r}")
        return cls(host.strip("[]"), int(port), timeout=timeout)

    # ------------------------------------------------------------------
    # verbs
    # ------------------------------------------------------------------
    def query(self, source, target) -> tuple[int, bool]:
        """``(epoch, reachable)`` for one pair."""
        response = self.call({"op": "query", "source": source,
                              "target": target})
        return response["epoch"], response["reachable"]

    def query_traced(self, source, target) -> tuple[int, bool, dict]:
        """``(epoch, reachable, trace)`` — the trace is the server's
        stage-by-stage latency breakdown for this request."""
        response = self.call({"op": "query", "source": source,
                              "target": target, "trace": True})
        return (response["epoch"], response["reachable"],
                response["trace"])

    def query_batch(self, pairs) -> tuple[int, list[bool]]:
        """``(epoch, answers)`` for a batch of pairs, in order."""
        response = self.call({"op": "query_batch",
                              "pairs": [list(pair) for pair in pairs]})
        return response["epoch"], response["reachable"]

    def add_edge(self, source, target, create: bool = True) -> dict:
        """Insert an edge; returns the server's acknowledgement."""
        return self.call({"op": "add_edge", "source": source,
                          "target": target, "create": create})

    def add_node(self, node) -> dict:
        """Insert an isolated node."""
        return self.call({"op": "add_node", "node": node})

    def remove_edge(self, source, target) -> dict:
        """Remove an edge; ``response["removed"]`` is False when the
        edge was not present (mirror of ``add_edge``'s duplicate)."""
        return self.call({"op": "remove_edge", "source": source,
                          "target": target})

    def remove_node(self, node) -> dict:
        """Remove a node and every incident edge."""
        return self.call({"op": "remove_node", "node": node})

    def reload(self, force: bool = False) -> int:
        """Trigger a rebuild-and-swap; returns the new epoch."""
        return self.call({"op": "reload", "force": force})["epoch"]

    def stats(self) -> dict:
        """The server's ``stats`` payload."""
        return self.call({"op": "stats"})["stats"]

    def metrics(self) -> str:
        """The server's Prometheus text exposition document."""
        return self.call({"op": "metrics"})["text"]

    def slo(self) -> dict:
        """The server's SLO report (``enabled: False`` when the
        server was started without objectives)."""
        return self.call({"op": "slo"})["slo"]

    def ping(self) -> int:
        """Liveness check; returns the current epoch."""
        return self.call({"op": "ping"})["epoch"]

    # ------------------------------------------------------------------
    # plumbing
    # ------------------------------------------------------------------
    def call(self, request: dict) -> dict:
        """Send one request object, return its ``ok`` response.

        Raises :class:`RemoteError` (carrying the wire-level ``code``)
        for an error response and :class:`ServiceError` when the
        connection drops mid-call.  Idempotent read verbs reconnect
        and retry once before giving up (see module docstring).
        """
        try:
            return self._call_once(request)
        except _ConnectionDropped as exc:
            if request.get("op") not in _IDEMPOTENT_OPS:
                raise ServiceError(str(exc)) from exc.cause
            try:
                self.close()
            except OSError:
                pass
            try:
                self._connect()
                return self._call_once(request)
            except (_ConnectionDropped, OSError) as retry_exc:
                raise ServiceError(
                    f"retry after reconnect failed: {retry_exc}"
                ) from retry_exc

    def _call_once(self, request: dict) -> dict:
        payload = json.dumps(request, separators=(",", ":"))
        try:
            self._sock.sendall(payload.encode("utf-8") + b"\n")
            line = self._reader.readline()
        except socket.timeout as exc:
            # not retryable: the request may still be in flight
            raise ServiceError(f"connection failed: {exc}") from exc
        except OSError as exc:
            raise _ConnectionDropped(f"connection failed: {exc}",
                                     exc) from exc
        if not line:
            raise _ConnectionDropped("server closed the connection")
        response = json.loads(line)
        if not response.get("ok"):
            raise RemoteError(response.get("error", "internal"),
                              response.get("message", ""))
        return response

    def close(self) -> None:
        try:
            self._reader.close()
        finally:
            self._sock.close()

    def __enter__(self) -> "ServiceClient":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
