"""A small blocking client for the NDJSON reachability service.

Used by ``repro-graph query --remote HOST:PORT``, the serve-smoke load
generator's sequential baseline, and any synchronous embedder.  One
socket, one request in flight at a time (responses arrive in request
order); concurrency comes from opening more clients.
"""

from __future__ import annotations

import json
import socket

from repro.service.errors import RemoteError, ServiceError

__all__ = ["ServiceClient"]


class ServiceClient:
    """Blocking NDJSON client: ``ServiceClient("127.0.0.1", 7431)``."""

    def __init__(self, host: str, port: int,
                 timeout: float = 10.0) -> None:
        self._sock = socket.create_connection((host, port),
                                              timeout=timeout)
        self._reader = self._sock.makefile("rb")

    @classmethod
    def from_address(cls, address: str,
                     timeout: float = 10.0) -> "ServiceClient":
        """Connect to a ``HOST:PORT`` string (IPv6 in brackets)."""
        host, _, port = address.rpartition(":")
        if not host or not port.isdigit():
            raise ValueError(
                f"expected HOST:PORT, got {address!r}")
        return cls(host.strip("[]"), int(port), timeout=timeout)

    # ------------------------------------------------------------------
    # verbs
    # ------------------------------------------------------------------
    def query(self, source, target) -> tuple[int, bool]:
        """``(epoch, reachable)`` for one pair."""
        response = self.call({"op": "query", "source": source,
                              "target": target})
        return response["epoch"], response["reachable"]

    def query_traced(self, source, target) -> tuple[int, bool, dict]:
        """``(epoch, reachable, trace)`` — the trace is the server's
        stage-by-stage latency breakdown for this request."""
        response = self.call({"op": "query", "source": source,
                              "target": target, "trace": True})
        return (response["epoch"], response["reachable"],
                response["trace"])

    def query_batch(self, pairs) -> tuple[int, list[bool]]:
        """``(epoch, answers)`` for a batch of pairs, in order."""
        response = self.call({"op": "query_batch",
                              "pairs": [list(pair) for pair in pairs]})
        return response["epoch"], response["reachable"]

    def add_edge(self, source, target, create: bool = True) -> dict:
        """Insert an edge; returns the server's acknowledgement."""
        return self.call({"op": "add_edge", "source": source,
                          "target": target, "create": create})

    def add_node(self, node) -> dict:
        """Insert an isolated node."""
        return self.call({"op": "add_node", "node": node})

    def reload(self, force: bool = False) -> int:
        """Trigger a rebuild-and-swap; returns the new epoch."""
        return self.call({"op": "reload", "force": force})["epoch"]

    def stats(self) -> dict:
        """The server's ``stats`` payload."""
        return self.call({"op": "stats"})["stats"]

    def metrics(self) -> str:
        """The server's Prometheus text exposition document."""
        return self.call({"op": "metrics"})["text"]

    def ping(self) -> int:
        """Liveness check; returns the current epoch."""
        return self.call({"op": "ping"})["epoch"]

    # ------------------------------------------------------------------
    # plumbing
    # ------------------------------------------------------------------
    def call(self, request: dict) -> dict:
        """Send one request object, return its ``ok`` response.

        Raises :class:`RemoteError` (carrying the wire-level ``code``)
        for an error response and :class:`ServiceError` when the
        connection drops mid-call.
        """
        payload = json.dumps(request, separators=(",", ":"))
        try:
            self._sock.sendall(payload.encode("utf-8") + b"\n")
            line = self._reader.readline()
        except OSError as exc:
            raise ServiceError(f"connection failed: {exc}") from exc
        if not line:
            raise ServiceError("server closed the connection")
        response = json.loads(line)
        if not response.get("ok"):
            raise RemoteError(response.get("error", "internal"),
                              response.get("message", ""))
        return response

    def close(self) -> None:
        try:
            self._reader.close()
        finally:
            self._sock.close()

    def __enter__(self) -> "ServiceClient":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
