"""Multi-process serving: one writer, N zero-copy query workers.

The single-process service is GIL-bound: however fast the batch
kernel, one interpreter caps the concurrent qps.  :class:`WorkerPool`
removes that cap without duplicating the index:

* the **parent** stays the sole writer — it owns the real
  :class:`~repro.service.manager.IndexManager` (shadow, writes,
  rebuild-and-swap) and publishes each epoch's packed
  :class:`~repro.core.index.ChainIndex` into a named shared-memory
  segment (:mod:`repro.service.shm`), one physical copy per epoch;
* each **worker** process attaches the segment read-only and runs a
  full :class:`~repro.service.server.ReachabilityService` (batcher,
  cache, tracing) over memoryview-backed labels — attach cost is a
  header parse plus a CRC pass, not an index copy;
* the kernel spreads connections across workers via **SO_REUSEPORT**
  (every worker listens on the same port), falling back to one shared
  inherited listening socket where the option is unavailable.

Swaps stay zero-downtime.  The parent rebuilds off-lock exactly as in
single-process mode, dumps epoch+1 under a *new* segment name, and
broadcasts ``attach`` over each worker's control pipe.  A worker
re-attaches on its event loop (so a kernel call can never observe a
half-swapped backend), acks ``reattached``, and keeps answering from
the old mapping until the instant it publishes the new one.  The old
segment is unlinked once every worker told to move has acked or died
— a name is only ever attached while it is current, so unlinking a
retired name while a straggler still *maps* it is safe (POSIX keeps
the mapping alive until the last detach).

The control pipe is also the pool's data plane for everything that is
not a query: workers proxy ``add_edge`` / ``add_node`` /
``remove_edge`` / ``remove_node`` / ``reload`` to the parent (RPC
with id-matched responses), and ``stats`` /
``metrics`` return pool-wide aggregates — the parent polls every
worker for an export (counters, histogram states, registry state) and
merges them exactly (histograms by bucket count, counters by sum), so
a scrape through any worker sees one coherent view.

Worker crashes are contained: the supervisor thread watches process
sentinels, respawns dead workers attached to the current segment, and
cleans their pending acks so a SIGKILL never wedges segment
reclamation.  ``service/workers`` (gauge) and ``service/reattach``
(counter) surface the pool's shape in the catalogue.
"""

from __future__ import annotations

import asyncio
import itertools
import json
import os
import signal
import socket
import threading
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from multiprocessing import connection as mp_connection
from multiprocessing import get_context

from repro.core.index import ChainIndex
from repro.graph.errors import (
    GraphError,
    GraphFormatError,
    NodeNotFoundError,
    NotADAGError,
)
from repro.obs import OBS, Histogram, MetricsRegistry, open_log, promtext
from repro.service import shm as shm_mod
from repro.service.errors import ServiceError, WritesUnsupportedError
from repro.service.manager import IndexManager, Snapshot
from repro.service.server import ReachabilityService

__all__ = ["WorkerPool"]

#: slowest traces kept after merging the per-worker rings
_MERGED_TRACES = 16


# ----------------------------------------------------------------------
# RPC error transport (parent exception -> worker re-raise)
# ----------------------------------------------------------------------
def _error_payload(exc: BaseException) -> dict:
    payload = {"type": type(exc).__name__, "message": str(exc)}
    if isinstance(exc, NodeNotFoundError):
        payload["node"] = exc.node
        payload["role"] = exc.role
    return payload


def _rebuild_error(payload: dict) -> Exception:
    """Map a wire error back onto the exception the server dispatch
    table classifies (unknown_node / cycle / unsupported / ...)."""
    kind = payload.get("type")
    message = payload.get("message", "")
    if kind == "NodeNotFoundError":
        return NodeNotFoundError(payload.get("node"), payload.get("role"))
    if kind == "NotADAGError":
        return NotADAGError(message)
    if kind == "WritesUnsupportedError":
        return WritesUnsupportedError(message)
    if kind in ("ValueError", "TypeError", "KeyError"):
        return ValueError(message)
    if kind in ("GraphFormatError", "IndexFormatError"):
        return GraphFormatError(message)
    if kind == "GraphError":
        return GraphError(message)
    return ServiceError(f"{kind}: {message}")


# ----------------------------------------------------------------------
# worker side
# ----------------------------------------------------------------------
class _AttachedManager:
    """The worker's manager facade: borrowed snapshot + parent RPC.

    Satisfies the slice of the :class:`IndexManager` surface the
    service uses — lock-free ``query_many`` against the attached
    (memoryview-backed) ChainIndex, writes and ``swap`` proxied to the
    parent over the control pipe, where the single real shadow lives.
    """

    def __init__(self, control: "_WorkerControl", engine: str) -> None:
        self._control = control
        self._engine = engine
        self._lock = threading.Lock()
        self._snapshot: Snapshot | None = None
        self._attachment: shm_mod.AttachedIndex | None = None
        #: retired attachments whose buffers were still exported at
        #: close time; retried at the next retire
        self._deferred: list[shm_mod.AttachedIndex] = []
        self.pending_writes = 0
        self.swap_count = 0
        self.writable = True
        self.event_log = None
        self.segment: str | None = None

    # -- snapshot plumbing --------------------------------------------
    def publish(self, attachment: shm_mod.AttachedIndex) -> None:
        """Swap the served snapshot to a freshly attached segment."""
        index = attachment.index
        index.is_reachable_many([])          # pre-build the batch kernel
        snapshot = Snapshot(attachment.epoch, index, None, kind="static")
        with self._lock:
            old = self._attachment
            self._attachment = attachment
            self._snapshot = snapshot
            self.segment = attachment.name
        if old is not None:
            self._retire(old)

    def _retire(self, attachment: shm_mod.AttachedIndex) -> None:
        self._deferred.append(attachment)
        still_exported = []
        for deferred in self._deferred:
            try:
                deferred.close()
            except BufferError:
                # a kernel call or cache entry still holds a view;
                # retry at the next swap (and the OS reclaims at exit)
                still_exported.append(deferred)
        self._deferred = still_exported

    # -- reads (lock-free, like the static IndexManager path) ---------
    @property
    def snapshot(self) -> Snapshot:
        return self._snapshot

    @property
    def epoch(self) -> int:
        return self._snapshot.epoch

    def query_many(self, pairs) -> tuple[int, list[bool]]:
        snapshot = self._snapshot
        return snapshot.epoch, snapshot.backend.is_reachable_many(pairs)

    def is_reachable(self, source, target) -> bool:
        return self.query_many([(source, target)])[1][0]

    # -- writes / swap: proxied to the parent -------------------------
    def add_edge(self, tail, head, *, create: bool = False) -> bool:
        result = self._control.rpc("add_edge", source=tail, target=head,
                                   create=create)
        self.pending_writes = result["pending_writes"]
        return result["added"]

    def add_node(self, node) -> bool:
        result = self._control.rpc("add_node", node=node)
        self.pending_writes = result["pending_writes"]
        return result["added"]

    def remove_edge(self, source, target) -> bool:
        result = self._control.rpc("remove_edge", source=source,
                                   target=target)
        self.pending_writes = result["pending_writes"]
        return result["removed"]

    def remove_node(self, node) -> bool:
        result = self._control.rpc("remove_node", node=node)
        self.pending_writes = result["pending_writes"]
        return result["removed"]

    def swap(self, force: bool = False) -> Snapshot:
        result = self._control.rpc("reload", force=force)
        self.swap_count = result["swaps"]
        self.pending_writes = result.get("pending_writes", 0)
        # the worker reattaches asynchronously; report the parent's
        # published epoch, which is what the reload ack means
        return Snapshot(result["epoch"], self._snapshot.backend, None,
                        kind="static")

    def stats(self) -> dict:
        """Local index facts (the pool aggregate replaces this with
        the parent's authoritative section)."""
        snapshot = self._snapshot
        return {
            "epoch": snapshot.epoch if snapshot else None,
            "mode": "attached",
            "kind": "attached",
            "engine": self._engine,
            "segment": self.segment,
            "writable": self.writable,
            "pending_writes": self.pending_writes,
            "swaps": self.swap_count,
        }

    def close(self) -> None:
        with self._lock:
            attachment = self._attachment
            self._attachment = None
            self._snapshot = None
        if attachment is not None:
            self._retire(attachment)


class _WorkerControl:
    """The worker's end of the control pipe.

    One reader thread multiplexes everything inbound: parent commands
    (``attach`` / ``export`` / ``drain``) are handled directly or
    scheduled onto the event loop, RPC responses resolve id-keyed
    waiters.  Sends share one lock (Connection is not thread-safe)."""

    def __init__(self, conn, worker_id: int,
                 rpc_timeout: float = 30.0) -> None:
        self.conn = conn
        self.worker_id = worker_id
        self.rpc_timeout = rpc_timeout
        self.manager: _AttachedManager | None = None
        self.service: ReachabilityService | None = None
        self.loop: asyncio.AbstractEventLoop | None = None
        self.stop_event: asyncio.Event | None = None
        self.reattaches = 0
        self._send_lock = threading.Lock()
        self._ids = itertools.count(1)
        self._pending: dict[int, list] = {}
        self._pending_lock = threading.Lock()

    def send(self, kind: str, payload: dict) -> None:
        try:
            with self._send_lock:
                self.conn.send((kind, payload))
        except (BrokenPipeError, OSError):
            pass                             # parent gone; drain follows

    def rpc(self, op: str, **kwargs):
        """Ask the parent to run ``op``; blocks the calling thread
        (the server invokes this via ``asyncio.to_thread``)."""
        request_id = next(self._ids)
        waiter = [threading.Event(), None]
        with self._pending_lock:
            self._pending[request_id] = waiter
        self.send("rpc", {"id": request_id, "op": op, "kwargs": kwargs})
        if not waiter[0].wait(self.rpc_timeout):
            with self._pending_lock:
                self._pending.pop(request_id, None)
            raise ServiceError(
                f"pool parent did not answer {op!r} within "
                f"{self.rpc_timeout}s")
        response = waiter[1]
        if response.get("error"):
            raise _rebuild_error(response["error"])
        return response["result"]

    # -- inbound ------------------------------------------------------
    def reader(self) -> None:
        while True:
            try:
                kind, payload = self.conn.recv()
            except (EOFError, OSError):
                break
            if kind == "rpc_response":
                with self._pending_lock:
                    waiter = self._pending.pop(payload["id"], None)
                if waiter is not None:
                    waiter[1] = payload
                    waiter[0].set()
            elif kind == "attach":
                loop = self.loop
                if loop is not None:
                    loop.call_soon_threadsafe(self._reattach,
                                              payload["segment"])
            elif kind == "export":
                try:
                    data = self._collect_export()
                    self.send("export", {"id": payload["id"],
                                         "data": data})
                except Exception as exc:  # noqa: BLE001 - report, don't die
                    self.send("export", {
                        "id": payload["id"], "data": None,
                        "error": f"{type(exc).__name__}: {exc}"})
            elif kind == "drain":
                loop, stop = self.loop, self.stop_event
                if loop is not None and stop is not None:
                    loop.call_soon_threadsafe(stop.set)

    def _reattach(self, segment: str) -> None:
        """Runs on the event loop — a batcher flush can never observe
        a half-swapped backend, because flushes run inline there too."""
        try:
            attachment = shm_mod.attach_index(segment)
        except Exception as exc:  # noqa: BLE001 - parent decides the fix
            self.send("attach_failed", {
                "segment": segment,
                "error": f"{type(exc).__name__}: {exc}"})
            return
        self.manager.publish(attachment)
        self.reattaches += 1
        if OBS.enabled:
            OBS.count("service/reattach")
        self.send("reattached", {"segment": segment,
                                 "epoch": attachment.epoch,
                                 "reattaches": self.reattaches})

    def _collect_export(self) -> dict:
        service = self.service
        batcher = service.batcher
        return {
            "pid": os.getpid(),
            "worker_id": self.worker_id,
            "epoch": self.manager.epoch,
            "reattaches": self.reattaches,
            "stats": service.stats(),
            "hist": {
                "request_latency": service.request_latency.state(),
                "class_latency": {
                    klass: histogram.state()
                    for klass, histogram
                    in list(service.class_latency.items())},
                "queue_wait": batcher.queue_wait.state(),
                "kernel_batch": batcher.kernel_batch.state(),
            },
            "registry": OBS.state(),
        }


def _worker_main(worker_id: int, conn, config: dict) -> None:
    """Entry point of one spawned worker process."""
    # the parent coordinates shutdown over the control pipe; a Ctrl-C
    # delivered to the whole process group must not kill workers
    # mid-drain
    signal.signal(signal.SIGINT, signal.SIG_IGN)
    control = _WorkerControl(conn, worker_id)
    try:
        asyncio.run(_worker_amain(control, config))
    except Exception as exc:  # noqa: BLE001 - surface before dying
        control.send("failed", {"worker_id": worker_id,
                                "error": f"{type(exc).__name__}: {exc}"})
        raise


async def _worker_amain(control: _WorkerControl, config: dict) -> None:
    control.loop = asyncio.get_running_loop()
    control.stop_event = asyncio.Event()
    manager = _AttachedManager(control, config["engine"])
    manager.publish(shm_mod.attach_index(config["segment"]))
    control.manager = manager
    options = dict(config.get("service_options") or {})
    capture = options.get("capture")
    if isinstance(capture, (str, os.PathLike)):
        # one journal per worker: siblings must not clobber each other
        options["capture"] = f"{capture}.worker{control.worker_id}"
    service = ReachabilityService(
        manager,
        host=config["host"], port=config["port"],
        reuse_port=config["reuse_port"],
        sock=config.get("listen_sock"),
        stats_provider=lambda: control.rpc("stats"),
        metrics_provider=lambda: control.rpc("metrics"),
        **options)
    control.service = service
    reader = threading.Thread(target=control.reader, daemon=True,
                              name=f"repro-pool-control-{control.worker_id}")
    reader.start()
    host, port = await service.start()
    control.send("ready", {"worker_id": control.worker_id,
                           "pid": os.getpid(), "host": host,
                           "port": port, "epoch": manager.epoch})
    await control.stop_event.wait()
    await service.shutdown()
    control.send("stopped", {"worker_id": control.worker_id,
                             "pid": os.getpid()})


# ----------------------------------------------------------------------
# parent side
# ----------------------------------------------------------------------
class _WorkerHandle:
    __slots__ = ("worker_id", "process", "conn", "pid", "epoch",
                 "reattaches", "ready", "send_lock", "failure")

    def __init__(self, worker_id: int, process, conn) -> None:
        self.worker_id = worker_id
        self.process = process
        self.conn = conn
        self.pid: int | None = None
        self.epoch: int | None = None
        self.reattaches = 0
        self.ready = threading.Event()
        self.send_lock = threading.Lock()
        self.failure: str | None = None


class WorkerPool:
    """N query workers over shared-memory snapshots, one writer.

    ``manager`` must be a chain-engine :class:`IndexManager` created
    with ``auto_swap_after=None`` — the pool owns write-triggered
    swaps (``swap_after``), because a manager-internal auto-swap would
    publish a snapshot the workers never hear about.
    """

    def __init__(self, manager: IndexManager, *, workers: int,
                 host: str = "127.0.0.1", port: int = 0,
                 swap_after: int | None = None,
                 metrics_port: int | None = None,
                 service_options: dict | None = None,
                 reuse_port: bool | None = None,
                 respawn: bool = True,
                 max_respawns: int | None = None, log=None,
                 drain_grace: float = 10.0) -> None:
        if workers < 1:
            raise ValueError("a worker pool needs at least 1 worker")
        backend = manager.snapshot.backend
        if not isinstance(backend, ChainIndex):
            raise ServiceError(
                f"worker pool requires a chain engine backend "
                f"(got {type(backend).__name__}); run with --workers 0 "
                f"for other engines")
        self.manager = manager
        self.num_workers = workers
        self.swap_after = swap_after
        self.metrics_port = metrics_port
        self.respawn = respawn
        #: cap on crash respawns, so a worker dying on arrival (bad
        #: environment, import failure) cannot fork-storm the host
        self.max_respawns = (workers * 5 if max_respawns is None
                             else max_respawns)
        self.drain_grace = drain_grace
        self._service_options = dict(service_options or {})
        self._host = host
        self._port = port
        self._reuse_port = (hasattr(socket, "SO_REUSEPORT")
                            if reuse_port is None else reuse_port)
        self._ctx = get_context("spawn")
        self._handles: dict[int, _WorkerHandle] = {}
        self._lock = threading.Lock()
        self._publish_lock = threading.Lock()
        self._current_segment = None
        #: retired segments: name -> {"shm": handle, "waiting": set}
        self._retired: dict[str, dict] = {}
        self._reserve_sock: socket.socket | None = None
        self._listen_sock: socket.socket | None = None
        self._supervisor: threading.Thread | None = None
        self._stopping = False
        self._started = False
        self._respawns = 0
        self._reattach_total = 0
        self._export_ids = itertools.count(1)
        self._exports: dict[int, list] = {}
        self._swap_thread: threading.Thread | None = None
        self._metrics_httpd: ThreadingHTTPServer | None = None
        self.metrics_address: tuple[str, int] | None = None
        self.log = open_log(log) if log is not None else None
        if self.log is not None:
            manager.event_log = self.log
        self._started_at = 0.0

    def _log_event(self, event: str, **fields) -> None:
        if self.log is not None:
            self.log.log(event, **fields)

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    @property
    def address(self) -> tuple[str, int]:
        return self._host, self._port

    @property
    def epoch(self) -> int:
        return self.manager.epoch

    def worker_pids(self) -> list[int]:
        with self._lock:
            return [handle.pid for handle in self._handles.values()
                    if handle.pid is not None
                    and handle.process.is_alive()]

    def alive_workers(self) -> int:
        with self._lock:
            return sum(1 for handle in self._handles.values()
                       if handle.process.is_alive())

    def ready(self) -> bool:
        """``/readyz`` condition: started, not stopping, the segment
        published, and every configured worker alive and attached."""
        if not self._started or self._stopping:
            return False
        with self._lock:
            if self._current_segment is None:
                return False
            handles = list(self._handles.values())
        live = [handle for handle in handles
                if handle.process.is_alive() and handle.ready.is_set()]
        return len(live) >= self.num_workers

    def describe(self) -> dict:
        """The ready-file payload: address, epoch, worker pids."""
        return {"host": self._host, "port": self._port,
                "epoch": self.manager.epoch,
                "workers": self.alive_workers(),
                "pids": self.worker_pids()}

    def start(self, timeout: float = 60.0) -> tuple[str, int]:
        """Reserve the port, publish epoch 0, spawn + await workers."""
        self._bind()
        index = self.manager.snapshot.backend
        self._current_segment = shm_mod.dump_index(
            index, name=shm_mod.segment_name(), epoch=self.manager.epoch)
        for worker_id in range(self.num_workers):
            self._spawn(worker_id)
        self._supervisor = threading.Thread(
            target=self._supervise, daemon=True,
            name="repro-pool-supervisor")
        self._supervisor.start()
        deadline = time.monotonic() + timeout
        for handle in list(self._handles.values()):
            remaining = max(0.0, deadline - time.monotonic())
            if not handle.ready.wait(remaining):
                failure = handle.failure or "did not become ready"
                self.stop(timeout=5.0)
                raise ServiceError(
                    f"worker {handle.worker_id} failed to start: "
                    f"{failure}")
        if self.metrics_port is not None:
            self._start_metrics_listener()
        self._started = True
        self._started_at = time.monotonic()
        if OBS.enabled:
            OBS.gauge("service/workers", self.alive_workers())
        self._log_event("pool_listening", host=self._host,
                        port=self._port, workers=self.alive_workers(),
                        pids=self.worker_pids(),
                        epoch=self.manager.epoch,
                        reuse_port=self._reuse_port)
        return self.address

    def _bind(self) -> None:
        """Reserve the pool's port before any worker exists.

        SO_REUSEPORT path: bind (without listening) a placeholder
        socket so the port number is fixed and held — a TCP socket
        that never listens receives no connections, so it does not
        dilute the kernel's load balancing across the workers.
        Fallback path: create the one listening socket here and hand
        it to every worker (kernel balances ``accept`` instead).
        """
        family = socket.AF_INET6 if ":" in self._host else socket.AF_INET
        sock = socket.socket(family, socket.SOCK_STREAM)
        try:
            sock.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
            if self._reuse_port:
                sock.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEPORT, 1)
            sock.bind((self._host, self._port))
            if not self._reuse_port:
                sock.listen(1024)
        except BaseException:
            sock.close()
            raise
        self._host, self._port = sock.getsockname()[:2]
        if self._reuse_port:
            self._reserve_sock = sock
        else:
            self._listen_sock = sock

    def _spawn(self, worker_id: int) -> None:
        parent_conn, child_conn = self._ctx.Pipe()
        config = {
            "segment": self._current_segment.name,
            "host": self._host,
            "port": self._port,
            "reuse_port": self._reuse_port,
            "listen_sock": self._listen_sock,
            "engine": self.manager._engine,
            "service_options": self._service_options,
        }
        process = self._ctx.Process(
            target=_worker_main, args=(worker_id, child_conn, config),
            daemon=True, name=f"repro-pool-worker-{worker_id}")
        process.start()
        child_conn.close()
        with self._lock:
            self._handles[worker_id] = _WorkerHandle(
                worker_id, process, parent_conn)

    def stop(self, timeout: float | None = None) -> None:
        """Graceful pool drain: every worker drains its own service,
        then segments and sockets are reclaimed."""
        if self._stopping:
            return
        self._stopping = True
        timeout = self.drain_grace if timeout is None else timeout
        with self._lock:
            handles = list(self._handles.values())
        self._log_event("pool_drain_start", workers=len(handles))
        for handle in handles:
            self._send(handle, "drain", {})
        deadline = time.monotonic() + timeout
        for handle in handles:
            remaining = max(0.1, deadline - time.monotonic())
            handle.process.join(remaining)
        for handle in handles:
            if handle.process.is_alive():
                handle.process.terminate()
                handle.process.join(2.0)
            if handle.process.is_alive():
                handle.process.kill()
                handle.process.join(2.0)
            try:
                handle.conn.close()
            except OSError:
                pass
        if self._supervisor is not None:
            self._supervisor.join(timeout=5.0)
        if self._metrics_httpd is not None:
            self._metrics_httpd.shutdown()
            self._metrics_httpd.server_close()
        for retired in list(self._retired.values()):
            self._reclaim(retired["shm"])
        self._retired.clear()
        if self._current_segment is not None:
            self._reclaim(self._current_segment)
            self._current_segment = None
        for sock in (self._reserve_sock, self._listen_sock):
            if sock is not None:
                sock.close()
        self._reserve_sock = self._listen_sock = None
        self.manager.close()
        if OBS.enabled:
            OBS.gauge("service/workers", 0)
        self._log_event("pool_drain_finish", respawns=self._respawns,
                        reattaches=self._reattach_total)

    @staticmethod
    def _reclaim(segment) -> None:
        try:
            segment.close()
        except BufferError:
            pass
        try:
            segment.unlink()
        except FileNotFoundError:
            pass

    def __enter__(self) -> "WorkerPool":
        return self

    def __exit__(self, *exc_info) -> None:
        self.stop()

    # ------------------------------------------------------------------
    # supervisor: control-pipe multiplexing + crash respawn
    # ------------------------------------------------------------------
    def _supervise(self) -> None:
        while not self._stopping:
            with self._lock:
                handles = list(self._handles.values())
            conns = {handle.conn: handle for handle in handles}
            sentinels = {handle.process.sentinel: handle
                         for handle in handles}
            try:
                ready = mp_connection.wait(
                    list(conns) + list(sentinels), timeout=0.2)
            except OSError:
                continue
            dead = []
            for item in ready:
                handle = conns.get(item)
                if handle is not None:
                    self._drain_conn(handle)
                else:
                    dead.append(sentinels[item])
            for handle in dead:
                if not handle.process.is_alive():
                    self._drain_conn(handle)   # last words, if any
                    self._on_death(handle)

    def _drain_conn(self, handle: _WorkerHandle) -> None:
        while True:
            try:
                if not handle.conn.poll():
                    return
                kind, payload = handle.conn.recv()
            except (EOFError, OSError):
                return
            self._on_message(handle, kind, payload)

    def _on_message(self, handle: _WorkerHandle, kind: str,
                    payload: dict) -> None:
        if kind == "ready":
            handle.pid = payload["pid"]
            handle.epoch = payload["epoch"]
            handle.ready.set()
            if OBS.enabled:
                OBS.gauge("service/workers", self.alive_workers())
            self._log_event("worker_ready", worker=handle.worker_id,
                            pid=handle.pid, epoch=handle.epoch)
        elif kind == "reattached":
            handle.epoch = payload["epoch"]
            handle.reattaches = payload["reattaches"]
            self._reattach_total += 1
            if OBS.enabled:
                OBS.count("service/reattach")
            self._release_waiter(handle.worker_id)
            self._log_event("worker_reattached",
                            worker=handle.worker_id,
                            epoch=handle.epoch,
                            segment=payload.get("segment"))
        elif kind == "attach_failed":
            # the worker is stuck on a stale epoch; recycle it — the
            # respawn path attaches the current segment from scratch
            handle.failure = payload.get("error")
            self._log_event("worker_attach_failed",
                            worker=handle.worker_id,
                            error=handle.failure)
            handle.process.terminate()
        elif kind == "export":
            waiter = self._exports.get(payload["id"])
            if waiter is not None:
                waiter[1] = payload
                waiter[0].set()
        elif kind == "rpc":
            threading.Thread(
                target=self._handle_rpc, args=(handle, payload),
                daemon=True,
                name=f"repro-pool-rpc-{payload['id']}").start()
        elif kind == "failed":
            handle.failure = payload.get("error")
            self._log_event("worker_failed", worker=handle.worker_id,
                            error=handle.failure)
        elif kind == "stopped":
            self._log_event("worker_stopped", worker=handle.worker_id,
                            pid=payload.get("pid"))

    def _on_death(self, handle: _WorkerHandle) -> None:
        with self._lock:
            current = self._handles.get(handle.worker_id)
            if current is not handle:
                return                       # already replaced
            del self._handles[handle.worker_id]
        try:
            handle.conn.close()
        except OSError:
            pass
        self._release_waiter(handle.worker_id)
        if OBS.enabled:
            OBS.gauge("service/workers", self.alive_workers())
        self._log_event("worker_exit", worker=handle.worker_id,
                        pid=handle.pid,
                        exitcode=handle.process.exitcode,
                        respawn=self.respawn and not self._stopping)
        if (self.respawn and not self._stopping
                and self._respawns < self.max_respawns):
            self._respawns += 1
            self._spawn(handle.worker_id)

    # ------------------------------------------------------------------
    # parent RPC surface (worker-proxied writes / reload / aggregates)
    # ------------------------------------------------------------------
    def _handle_rpc(self, handle: _WorkerHandle, payload: dict) -> None:
        op = payload.get("op")
        kwargs = payload.get("kwargs") or {}
        try:
            if op == "add_edge":
                added = self.manager.add_edge(
                    kwargs["source"], kwargs["target"],
                    create=kwargs.get("create", True))
                result = {"added": added, "epoch": self.manager.epoch,
                          "pending_writes": self.manager.pending_writes}
                self._maybe_swap_after()
            elif op == "add_node":
                added = self.manager.add_node(kwargs["node"])
                result = {"added": added, "epoch": self.manager.epoch,
                          "pending_writes": self.manager.pending_writes}
                self._maybe_swap_after()
            elif op == "remove_edge":
                removed = self.manager.remove_edge(
                    kwargs["source"], kwargs["target"])
                result = {"removed": removed,
                          "epoch": self.manager.epoch,
                          "pending_writes": self.manager.pending_writes}
                self._maybe_swap_after()
            elif op == "remove_node":
                removed = self.manager.remove_node(kwargs["node"])
                result = {"removed": removed,
                          "epoch": self.manager.epoch,
                          "pending_writes": self.manager.pending_writes}
                self._maybe_swap_after()
            elif op == "reload":
                epoch = self.publish_swap(
                    force=bool(kwargs.get("force", False)))
                result = {"epoch": epoch,
                          "swaps": self.manager.swap_count,
                          "pending_writes": self.manager.pending_writes}
            elif op == "stats":
                result = self.aggregate_stats()
            elif op == "metrics":
                result = self.aggregate_metrics()
            else:
                raise ValueError(f"unknown pool rpc {op!r}")
            response = {"id": payload["id"], "result": result}
        except Exception as exc:  # noqa: BLE001 - ship back to the worker
            response = {"id": payload["id"],
                        "error": _error_payload(exc)}
        self._send(handle, "rpc_response", response)

    def _send(self, handle: _WorkerHandle, kind: str,
              payload: dict) -> None:
        try:
            with handle.send_lock:
                handle.conn.send((kind, payload))
        except (BrokenPipeError, OSError):
            pass                             # death path reclaims it

    def _maybe_swap_after(self) -> None:
        """Single-flight background publish once enough writes landed.

        Mirrors IndexManager's auto-swap, lifted to the pool so the
        new epoch is published to the segment and broadcast — a
        manager-internal swap would leave workers on the old mapping
        forever.
        """
        threshold = self.swap_after
        if threshold is None \
                or self.manager.pending_writes < threshold:
            return
        with self._lock:
            thread = self._swap_thread
            if thread is not None and thread.is_alive():
                return
            thread = threading.Thread(target=self.publish_swap,
                                      daemon=True,
                                      name="repro-pool-swap")
            self._swap_thread = thread
            thread.start()

    # ------------------------------------------------------------------
    # epoch publication
    # ------------------------------------------------------------------
    def publish_swap(self, force: bool = False) -> int:
        """Rebuild-and-swap, then publish + broadcast the new epoch.

        Zero-downtime end to end: the rebuild runs off-lock in the
        parent, workers keep serving the old mapping until each
        re-attaches on its own loop, and the old segment name is
        unlinked only after every instructed worker acked or died.
        Returns the (possibly unchanged) published epoch.
        """
        with self._publish_lock:
            before = self.manager.epoch
            snapshot = self.manager.swap(force)
            if snapshot.epoch == before:
                return before                # nothing pending, no-op
            segment = shm_mod.dump_index(snapshot.backend,
                                         name=shm_mod.segment_name(),
                                         epoch=snapshot.epoch)
            with self._lock:
                old = self._current_segment
                self._current_segment = segment
                waiting = {handle.worker_id
                           for handle in self._handles.values()
                           if handle.ready.is_set()
                           and handle.process.is_alive()}
                if waiting:
                    self._retired[old.name] = {"shm": old,
                                               "waiting": waiting}
                handles = [self._handles[worker_id]
                           for worker_id in waiting]
            if not waiting:
                self._reclaim(old)
            for handle in handles:
                self._send(handle, "attach",
                           {"segment": segment.name,
                            "epoch": snapshot.epoch})
            self._log_event("pool_publish", epoch=snapshot.epoch,
                            segment=segment.name,
                            awaiting=sorted(waiting))
            return snapshot.epoch

    def _release_waiter(self, worker_id: int) -> None:
        """Drop ``worker_id`` from every retired segment's waiting set
        (it reattached or died); unlink segments nobody waits on."""
        with self._lock:
            done = []
            for name, entry in self._retired.items():
                entry["waiting"].discard(worker_id)
                if not entry["waiting"]:
                    done.append(name)
            reclaim = [self._retired.pop(name)["shm"] for name in done]
        for segment in reclaim:
            self._reclaim(segment)
            self._log_event("segment_unlinked", segment=segment.name)

    def wait_epoch(self, epoch: int, timeout: float = 30.0) -> bool:
        """Block until every live worker serves ``epoch`` (or newer)."""
        deadline = time.monotonic() + timeout
        while time.monotonic() < deadline:
            with self._lock:
                handles = [handle for handle in self._handles.values()
                           if handle.process.is_alive()]
            if handles and all(handle.epoch is not None
                               and handle.epoch >= epoch
                               for handle in handles):
                return True
            time.sleep(0.01)
        return False

    # ------------------------------------------------------------------
    # pool-wide aggregation
    # ------------------------------------------------------------------
    def _collect_exports(self, timeout: float = 5.0) -> list[dict]:
        with self._lock:
            handles = [handle for handle in self._handles.values()
                       if handle.ready.is_set()
                       and handle.process.is_alive()]
        waiters = []
        for handle in handles:
            export_id = next(self._export_ids)
            waiter = [threading.Event(), None]
            self._exports[export_id] = waiter
            self._send(handle, "export", {"id": export_id})
            waiters.append((export_id, waiter))
        deadline = time.monotonic() + timeout
        exports = []
        for export_id, waiter in waiters:
            remaining = max(0.0, deadline - time.monotonic())
            if waiter[0].wait(remaining):
                payload = waiter[1]
                if payload and payload.get("data") is not None:
                    exports.append(payload["data"])
            self._exports.pop(export_id, None)
        return exports

    def aggregate_stats(self) -> dict:
        """One coherent ``stats`` payload for the whole pool.

        Counters sum, histograms merge exactly by bucket state, the
        slow-trace rings interleave; the ``index`` section is the
        parent manager's (authoritative — it owns the shadow), and a
        ``pool`` section describes the processes themselves.
        """
        exports = self._collect_exports()
        request_latency = Histogram()
        class_latency: dict[str, Histogram] = {}
        queue_wait, kernel_batch = Histogram(), Histogram()
        server = {"requests": 0, "errors": 0, "connections": 0,
                  "recent_qps": 0.0}
        batching = {"batches": 0, "coalesced_queries": 0,
                    "largest_batch": 0, "queue_depth": 0,
                    "overloaded": 0, "size_buckets": {}}
        cache = {"size": 0, "capacity": 0, "hits": 0, "misses": 0}
        cache_seen = False
        slow_traces: list[dict] = []
        workers = []
        uptime = (time.monotonic() - self._started_at
                  if self._started_at else 0.0)
        for export in exports:
            stats = export["stats"]
            hist = export["hist"]
            request_latency.merge_state(hist["request_latency"])
            for klass, state in hist["class_latency"].items():
                class_latency.setdefault(klass,
                                         Histogram()).merge_state(state)
            queue_wait.merge_state(hist["queue_wait"])
            kernel_batch.merge_state(hist["kernel_batch"])
            for key in ("requests", "errors", "connections"):
                server[key] += stats["server"][key]
            server["recent_qps"] += stats["server"]["recent_qps"]
            for key in ("batches", "coalesced_queries", "queue_depth",
                        "overloaded"):
                batching[key] += stats["batching"][key]
            batching["largest_batch"] = max(
                batching["largest_batch"],
                stats["batching"]["largest_batch"])
            for bucket, count in stats["batching"]["size_buckets"].items():
                batching["size_buckets"][bucket] = \
                    batching["size_buckets"].get(bucket, 0) + count
            for key in ("max_batch", "max_wait_us", "max_pending"):
                batching.setdefault(key, stats["batching"][key])
            if stats.get("cache"):
                cache_seen = True
                for key in ("size", "capacity", "hits", "misses"):
                    cache[key] += stats["cache"][key]
            slow_traces.extend(stats.get("slow_traces", []))
            workers.append({
                "worker_id": export["worker_id"],
                "pid": export["pid"],
                "epoch": export["epoch"],
                "reattaches": export["reattaches"],
                "requests": stats["server"]["requests"],
                "recent_qps": stats["server"]["recent_qps"],
            })
        p50, p99, p999 = request_latency.percentiles(0.50, 0.99, 0.999)
        server.update({
            "uptime_seconds": uptime,
            "p50_ms": 1e3 * p50,
            "p99_ms": 1e3 * p99,
            "p999_ms": 1e3 * p999,
        })
        batching["mean_batch_size"] = (
            batching["coalesced_queries"] / batching["batches"]
            if batching["batches"] else 0.0)
        batching["queue_wait"] = queue_wait.summary()
        batching["kernel_batch"] = kernel_batch.summary()
        lookups = cache["hits"] + cache["misses"]
        cache["hit_rate"] = cache["hits"] / lookups if lookups else 0.0
        slow_traces.sort(key=lambda trace: trace.get("total_ms", 0.0),
                         reverse=True)
        workers.sort(key=lambda worker: worker["worker_id"])
        return {
            "server": server,
            "latency": {klass: histogram.summary()
                        for klass, histogram
                        in sorted(class_latency.items())},
            "slow_traces": slow_traces[:_MERGED_TRACES],
            "index": self.manager.stats(),
            "batching": batching,
            "cache": cache if cache_seen else None,
            "workers": workers,
            "pool": {
                "workers": self.alive_workers(),
                "configured_workers": self.num_workers,
                "respawns": self._respawns,
                "reattaches": self._reattach_total,
                "epoch": self.manager.epoch,
                "segment": (self._current_segment.name
                            if self._current_segment else None),
                "reuse_port": self._reuse_port,
            },
        }

    def aggregate_metrics(self) -> str:
        """The pool-wide Prometheus exposition document.

        Workers ship their registry *state* (raw histogram buckets,
        PR 4's mergeable design) and the parent folds them — plus its
        own registry, which holds the swap spans — into one rendering.
        """
        exports = self._collect_exports()
        registry = MetricsRegistry()
        request_latency = Histogram()
        class_latency: dict[str, Histogram] = {}
        queue_wait, kernel_batch = Histogram(), Histogram()
        requests = errors = connections = 0
        for export in exports:
            registry.merge_state(export["registry"])
            hist = export["hist"]
            request_latency.merge_state(hist["request_latency"])
            for klass, state in hist["class_latency"].items():
                class_latency.setdefault(klass,
                                         Histogram()).merge_state(state)
            queue_wait.merge_state(hist["queue_wait"])
            kernel_batch.merge_state(hist["kernel_batch"])
            stats = export["stats"]["server"]
            requests += stats["requests"]
            errors += stats["errors"]
            connections += stats["connections"]
        registry.merge_state(OBS.state())    # parent spans: service/swap
        extra = {"service/request_latency": request_latency,
                 "service/queue_wait": queue_wait,
                 "service/kernel_batch": kernel_batch}
        for klass, histogram in class_latency.items():
            extra[f"service/latency/{klass}"] = histogram
        lines = [promtext.render(registry, histograms=extra).rstrip("\n")]
        merged_counters = registry.counters
        merged_gauges = registry.gauges
        for name, value in (("service/requests", requests),
                            ("service/errors", errors),
                            ("service/reattach", self._reattach_total)):
            if name in merged_counters:
                continue
            base = promtext.prom_name(name) + "_total"
            lines.append(f"# TYPE {base} counter")
            lines.append(f"{base} {value}")
        for name, value in (("service/epoch", self.manager.epoch),
                            ("service/connections", connections),
                            ("service/workers", self.alive_workers())):
            if name in merged_gauges:
                continue
            base = promtext.prom_name(name)
            lines.append(f"# TYPE {base} gauge")
            lines.append(f"{base} {value}")
        return "\n".join(lines) + "\n"

    # ------------------------------------------------------------------
    # Prometheus HTTP exposition (parent-hosted under the pool)
    # ------------------------------------------------------------------
    def _start_metrics_listener(self) -> None:
        pool = self

        class _Handler(BaseHTTPRequestHandler):
            def do_GET(self) -> None:  # noqa: N802 - stdlib contract
                route = self.path.split("?", 1)[0]
                if route == "/healthz":
                    body = b"ok\n"
                    self.send_response(200)
                    content_type = "text/plain; charset=utf-8"
                elif route == "/readyz":
                    ready = pool.ready()
                    body = (json.dumps({"ready": ready,
                                        "epoch": pool.manager.epoch,
                                        "workers": pool.alive_workers(),
                                        "expected": pool.num_workers})
                            .encode("utf-8") + b"\n")
                    self.send_response(200 if ready else 503)
                    content_type = "application/json"
                elif route not in ("/", "/metrics"):
                    body = (b"not found; scrape /metrics or probe "
                            b"/healthz, /readyz\n")
                    self.send_response(404)
                    content_type = "text/plain; charset=utf-8"
                else:
                    body = pool.aggregate_metrics().encode("utf-8")
                    self.send_response(200)
                    content_type = promtext.CONTENT_TYPE
                self.send_header("Content-Type", content_type)
                self.send_header("Content-Length", str(len(body)))
                self.end_headers()
                self.wfile.write(body)

            def log_message(self, *args) -> None:
                pass                         # no stderr chatter

        self._metrics_httpd = ThreadingHTTPServer(
            (self._host, self.metrics_port), _Handler)
        self.metrics_address = \
            self._metrics_httpd.server_address[:2]
        threading.Thread(target=self._metrics_httpd.serve_forever,
                         daemon=True,
                         name="repro-pool-metrics").start()
