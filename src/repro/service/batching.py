"""Micro-batching: coalesce concurrent queries into one kernel call.

The static index answers a 256-query batch barely slower than a single
query once the per-call overhead (attribute lookups, kernel dispatch,
OBS bookkeeping) is paid, so the cheapest way to serve many concurrent
clients is the inference-server trick: queue single queries as they
arrive, wait at most ``max_wait_us`` for company, and hand the whole
batch to :meth:`ChainIndex.is_reachable_many` at once.

Policy knobs:

* ``max_batch`` — largest coalesced batch handed to the kernel;
* ``max_wait_us`` — how long the first query in an empty queue waits
  for companions before the flush (the latency price of batching);
* ``max_pending`` — bound on queued queries.  At the bound,
  :meth:`submit` fails fast with :class:`OverloadedError` — explicit
  backpressure instead of unbounded buffering.

Answers resolve through the :class:`~repro.service.cache.ResultCache`
first (keyed by epoch, so a snapshot swap invalidates by
construction); cache misses go to the manager in one batch, and every
result a client sees is tagged with the epoch it is exact for.
"""

from __future__ import annotations

import asyncio
import time
from collections import deque

from repro.obs import OBS, Histogram
from repro.service.cache import ResultCache
from repro.service.errors import OverloadedError, ServiceError
from repro.service.manager import IndexManager

__all__ = ["MicroBatcher", "BATCH_SIZE_BUCKETS"]

#: histogram bucket upper bounds for the batch-size distribution
#: (``service/batch_size/{bucket}``); sizes above the last bound count
#: into ``inf``.
BATCH_SIZE_BUCKETS = (1, 4, 16, 64, 256)


def _bucket_name(size: int) -> str:
    for bound in BATCH_SIZE_BUCKETS:
        if size <= bound:
            return f"le-{bound}"
    return "inf"


class MicroBatcher:
    """Coalesces concurrently submitted queries (one per event loop)."""

    def __init__(self, manager: IndexManager,
                 cache: ResultCache | None = None, *,
                 max_batch: int = 128, max_wait_us: int = 500,
                 max_pending: int = 1024) -> None:
        if max_batch < 1:
            raise ValueError("max_batch must be >= 1")
        if max_pending < 1:
            raise ValueError("max_pending must be >= 1")
        self._manager = manager
        self._cache = cache
        self.max_batch = max_batch
        self.max_wait_us = max_wait_us
        self.max_pending = max_pending
        # (pair, Future, Trace | None, enqueued_at) entries
        self._pending: deque = deque()
        self._wakeup: asyncio.Event | None = None
        self._task: asyncio.Task | None = None
        self._closed = False
        # always-on stats for the `stats` verb (OBS mirrors them when
        # the registry is enabled)
        self.batches = 0
        self.coalesced = 0
        self.largest_batch = 0
        self.overloaded = 0
        self.size_buckets: dict[str, int] = {}
        #: enqueue → flush wait per queued query (seconds)
        self.queue_wait = Histogram()
        #: duration of one coalesced kernel call (seconds)
        self.kernel_batch = Histogram()

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    async def start(self) -> None:
        """Start the flush loop on the running event loop."""
        if self._task is not None:
            return
        self._wakeup = asyncio.Event()
        self._task = asyncio.get_running_loop().create_task(
            self._run(), name="repro-service-flush")

    async def close(self, drain: bool = True) -> None:
        """Stop the flush loop; with ``drain`` resolve queued queries."""
        self._closed = True
        if self._task is not None:
            self._wakeup.set()
            try:
                await self._task
            except asyncio.CancelledError:
                pass
            self._task = None
        if drain:
            self._flush_all()
        else:
            while self._pending:
                _, future, _, _ = self._pending.popleft()
                if not future.done():
                    future.set_exception(
                        ServiceError("batcher closed before flush"))

    # ------------------------------------------------------------------
    # submission
    # ------------------------------------------------------------------
    async def submit(self, source, target,
                     trace=None) -> tuple[int, bool]:
        """Queue one query; resolves to ``(epoch, reachable)``.

        Raises :class:`OverloadedError` immediately when the queue is
        at ``max_pending`` — the caller (the server) turns that into
        the wire-level ``overloaded`` error.  A
        :class:`~repro.service.tracing.Trace` passed in rides along
        and collects ``enqueue`` / ``flush`` / ``cache`` / ``kernel``
        marks as the query crosses the batcher.
        """
        if self._closed:
            raise ServiceError("service is shutting down")
        if len(self._pending) >= self.max_pending:
            self.overloaded += 1
            if OBS.enabled:
                OBS.count("service/overloaded")
            raise OverloadedError(len(self._pending), self.max_pending)
        if trace is not None:
            trace.mark("enqueue", queue_depth=len(self._pending))
        future = asyncio.get_running_loop().create_future()
        self._pending.append(((source, target), future, trace,
                              time.perf_counter()))
        if self._wakeup is not None:
            self._wakeup.set()
        return await future

    def submit_many(self, pairs: list,
                    trace=None) -> tuple[int, list[bool]]:
        """Answer an already-batched request inline (no queue).

        ``query_batch`` arrives pre-coalesced, so it bypasses the queue
        and its backpressure bound (the wire framing bounds its size)
        but still runs through the cache and counts as one kernel
        batch.  One trace covers the whole batch.
        """
        if self._closed:
            raise ServiceError("service is shutting down")
        self._note_batch(len(pairs))
        if trace is not None:
            trace.mark("flush", batch=len(pairs), inline=True)
        traces = [trace] + [None] * (len(pairs) - 1) if trace else None
        return self._resolve(pairs, traces)

    @property
    def queue_depth(self) -> int:
        """Queries currently queued for the next flush."""
        return len(self._pending)

    # ------------------------------------------------------------------
    # the flush loop
    # ------------------------------------------------------------------
    async def _run(self) -> None:
        wakeup = self._wakeup
        while True:
            await wakeup.wait()
            wakeup.clear()
            if self._closed:
                return
            while self._pending:
                if self.max_wait_us and len(self._pending) < self.max_batch:
                    # coalescing window: let concurrent submitters pile
                    # into this flush
                    await asyncio.sleep(self.max_wait_us / 1e6)
                try:
                    self._flush_once()
                except Exception:  # noqa: BLE001 - a poisoned batch must
                    # never kill the flush loop: every later query would
                    # hang until its request timeout
                    if OBS.enabled:
                        OBS.count("service/flush_errors")
                await asyncio.sleep(0)       # yield to submitters
                if self._closed:
                    return

    def _flush_all(self) -> None:
        while self._pending:
            self._flush_once()

    def _flush_once(self) -> None:
        pending = self._pending
        batch = [pending.popleft()
                 for _ in range(min(len(pending), self.max_batch))]
        if OBS.enabled:
            OBS.gauge("service/queue_depth", len(pending))
        entries = [entry for entry in batch if not entry[1].done()]
        if not entries:                      # all timed out / cancelled
            return
        self._note_batch(len(entries))
        now = time.perf_counter()
        obs_enabled = OBS.enabled
        for _, _, trace, enqueued_at in entries:
            waited = max(0.0, now - enqueued_at)
            self.queue_wait.observe(waited)
            if obs_enabled:
                OBS.observe("service/queue_wait", waited)
            if trace is not None:
                trace.mark("flush", batch=len(entries),
                           queue_depth=len(pending))
        pairs = [pair for pair, _, _, _ in entries]
        traces = [trace for _, _, trace, _ in entries]
        try:
            epoch, answers = self._resolve(pairs, traces)
        except Exception:  # noqa: BLE001 - e.g. unknown node (GraphError)
            # or an unhashable pair from wire JSON (TypeError); one bad
            # pair must fail only its own query, not the whole batch
            self._resolve_individually(entries)
            return
        for (_, future, _, _), answer in zip(entries, answers):
            if not future.done():
                future.set_result((epoch, answer))

    def _resolve_individually(self, entries: list) -> None:
        """Per-pair fallback so one bad pair fails only its query."""
        for pair, future, trace, _ in entries:
            if future.done():
                continue
            try:
                epoch, answers = self._manager.query_many([pair])
            except Exception as exc:  # noqa: BLE001 - routed to the future
                future.set_exception(exc)
            else:
                if trace is not None:
                    trace.epoch = epoch
                    trace.mark("kernel", epoch=epoch, batch=1)
                future.set_result((epoch, answers[0]))

    def _timed_query_many(self, pairs: list) -> tuple[int, list[bool]]:
        """One kernel call, timed into the ``kernel_batch`` histogram."""
        kernel_start = time.perf_counter()
        epoch, answers = self._manager.query_many(pairs)
        elapsed = time.perf_counter() - kernel_start
        self.kernel_batch.observe(elapsed)
        if OBS.enabled:
            OBS.observe("service/kernel_batch", elapsed)
        return epoch, answers

    def _resolve(self, pairs: list,
                 traces: list | None = None) -> tuple[int, list[bool]]:
        """Cache + kernel resolution, consistent at one epoch.

        Looks the batch up in the cache at the current epoch, answers
        the misses in one kernel call, and re-resolves from scratch in
        the rare case a swap lands between the cache pass and the
        kernel call (so hits and misses can never mix epochs).
        """
        manager = self._manager
        cache = self._cache
        if traces is None:
            traces = [None] * len(pairs)
        if cache is None:
            epoch, answers = self._timed_query_many(pairs)
            for trace in traces:
                if trace is not None:
                    trace.epoch = epoch
                    trace.mark("kernel", epoch=epoch, batch=len(pairs))
            return epoch, answers
        epoch = manager.epoch
        answers: list = [None] * len(pairs)
        miss_positions = []
        hits = 0
        for position, (source, target) in enumerate(pairs):
            cached = cache.get(epoch, source, target, traces[position])
            if cached is None:
                miss_positions.append(position)
            else:
                answers[position] = cached
                hits += 1
        if OBS.enabled:
            if hits:
                OBS.count("service/cache_hits", hits)
            if miss_positions:
                OBS.count("service/cache_misses", len(miss_positions))
        if not miss_positions:
            return epoch, answers
        miss_pairs = [pairs[position] for position in miss_positions]
        kernel_epoch, kernel_answers = self._timed_query_many(miss_pairs)
        if kernel_epoch != epoch and hits:
            # a swap raced the cache pass; the hits answered for the
            # old epoch, so take the whole batch from the new snapshot
            kernel_epoch, kernel_answers = self._timed_query_many(pairs)
            for (source, target), answer in zip(pairs, kernel_answers):
                cache.put(kernel_epoch, source, target, answer)
            for trace in traces:
                if trace is not None:
                    # stale cache hits were re-answered by the kernel
                    trace.klass = None
                    trace.epoch = kernel_epoch
                    trace.mark("kernel", epoch=kernel_epoch,
                               batch=len(pairs))
            return kernel_epoch, kernel_answers
        for position, answer in zip(miss_positions, kernel_answers):
            source, target = pairs[position]
            cache.put(kernel_epoch, source, target, answer)
            answers[position] = answer
            trace = traces[position]
            if trace is not None:
                trace.epoch = kernel_epoch
                trace.mark("kernel", epoch=kernel_epoch,
                           batch=len(miss_pairs))
        return kernel_epoch, answers

    def _note_batch(self, size: int) -> None:
        self.batches += 1
        self.coalesced += size
        if size > self.largest_batch:
            self.largest_batch = size
        bucket = _bucket_name(size)
        self.size_buckets[bucket] = self.size_buckets.get(bucket, 0) + 1
        if OBS.enabled:
            OBS.count("service/batches")
            OBS.count(f"service/batch_size/{bucket}")

    def stats(self) -> dict:
        """Counters for the ``stats`` verb and the bench report."""
        return {
            "batches": self.batches,
            "coalesced_queries": self.coalesced,
            "mean_batch_size": (self.coalesced / self.batches
                                if self.batches else 0.0),
            "largest_batch": self.largest_batch,
            "queue_depth": len(self._pending),
            "overloaded": self.overloaded,
            "size_buckets": dict(self.size_buckets),
            "max_batch": self.max_batch,
            "max_wait_us": self.max_wait_us,
            "max_pending": self.max_pending,
            "queue_wait": self.queue_wait.summary(),
            "kernel_batch": self.kernel_batch.summary(),
        }
