"""Per-request tracing: where did one slow request spend its time?

Aggregate histograms say the p99 moved; a trace says *why*.  Every
query request gets a :class:`Trace` minted by the server: a process-
unique id plus timestamped stage marks as the request crosses the
serving path —

``accept`` (request parsed; queue depth and epoch at arrival) →
``enqueue`` (handed to the micro-batcher) → ``flush`` (its batch was
picked up; batch size and queue depth at flush) → ``cache`` /
``kernel`` (answered from the result cache, or by the coalesced
``is_reachable_many`` call; epoch it answered at) → ``respond``.

The marks are monotonic-clock offsets from the trace's start, so the
rendered breakdown reports per-stage **durations** (the gap between
consecutive marks) whose sum is bounded by the request's total
latency.  A request carrying ``"trace": true`` gets its breakdown
echoed in the response; independently, the server keeps every trace
long enough to feed the per-class latency histograms, the slow-query
log, and a bounded ring of the slowest recent traces (the ``stats``
verb's ``slow_traces``).

Tracing is always on for query requests: one small object and a few
``perf_counter`` calls per request, orders of magnitude below the
socket round-trip it measures.
"""

from __future__ import annotations

import heapq
import itertools
import threading
import time
from typing import Any

__all__ = ["Trace", "SlowTraceRing"]

_ids = itertools.count(1)


class Trace:
    """One request's stage marks, cheap enough to mint per request."""

    __slots__ = ("trace_id", "op", "started", "marks", "klass", "epoch",
                 "total_seconds")

    def __init__(self, op: str) -> None:
        self.trace_id = f"q-{next(_ids):x}"
        self.op = op
        self.started = time.perf_counter()
        #: list of ``(stage, offset_seconds, fields)`` in mark order
        self.marks: list[tuple[str, float, dict]] = []
        #: answer class, set by whichever hop settled the query
        #: (``cache_hit`` by the cache; the server classifies the rest)
        self.klass: str | None = None
        self.epoch: int | None = None
        self.total_seconds = 0.0

    def mark(self, stage: str, **fields: Any) -> None:
        """Record reaching ``stage`` now, with optional context."""
        self.marks.append(
            (stage, time.perf_counter() - self.started, fields))

    def finish(self) -> float:
        """Close the trace; returns (and stores) the total seconds."""
        self.total_seconds = time.perf_counter() - self.started
        return self.total_seconds

    def to_dict(self) -> dict:
        """The wire/stats shape: per-stage durations, ms, in order.

        Each stage's ``ms`` is the time since the previous mark (the
        first mark counts from the trace's start), so the stage sum
        never exceeds ``total_ms``.
        """
        stages = []
        previous = 0.0
        for stage, offset, fields in self.marks:
            entry = {"stage": stage,
                     "ms": 1e3 * max(0.0, offset - previous)}
            entry.update(fields)
            stages.append(entry)
            previous = offset
        return {
            "trace_id": self.trace_id,
            "op": self.op,
            "class": self.klass,
            "epoch": self.epoch,
            "total_ms": 1e3 * self.total_seconds,
            "stages": stages,
        }


class SlowTraceRing:
    """The N slowest recent traces, bounded memory, thread-safe.

    A min-heap keyed by total latency: a finished trace enters if the
    ring has room or it is slower than the ring's current fastest
    member (which it evicts).  ``snapshot`` lists slowest-first —
    what the ``stats`` verb serves.
    """

    def __init__(self, capacity: int = 16) -> None:
        if capacity < 1:
            raise ValueError("trace ring capacity must be >= 1")
        self.capacity = capacity
        self._heap: list[tuple[float, int, dict]] = []
        self._seq = itertools.count()
        self._lock = threading.Lock()

    def offer(self, trace: Trace) -> bool:
        """Consider a finished trace; True when it was retained."""
        entry = (trace.total_seconds, next(self._seq), trace.to_dict())
        with self._lock:
            if len(self._heap) < self.capacity:
                heapq.heappush(self._heap, entry)
                return True
            if entry[0] <= self._heap[0][0]:
                return False
            heapq.heapreplace(self._heap, entry)
            return True

    def snapshot(self) -> list[dict]:
        """The retained traces, slowest first."""
        with self._lock:
            ordered = sorted(self._heap,
                             key=lambda entry: entry[0], reverse=True)
        return [entry[2] for entry in ordered]

    def __len__(self) -> int:
        with self._lock:
            return len(self._heap)
