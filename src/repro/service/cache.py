"""LRU result cache keyed by ``(epoch, source, target)``.

Keying on the snapshot epoch makes invalidation structural: a snapshot
swap bumps the epoch, so every cached answer from the previous graph
version simply stops being addressable and ages out of the LRU — no
flush, no generation counters, no risk of serving a stale answer as
fresh.  An entry is only ever returned for the exact graph version it
was computed on.

The cache is a plain dict in insertion order (CPython ≥ 3.7), with
hits re-inserted to refresh recency — O(1) per operation.  A lock
keeps it usable from threaded embedders; the asyncio server calls it
from one event loop, where the lock is uncontended.
"""

from __future__ import annotations

import threading

__all__ = ["ResultCache"]


class ResultCache:
    """Bounded LRU of reachability answers.

    >>> cache = ResultCache(capacity=2)
    >>> cache.put(0, "a", "b", True)
    >>> cache.get(0, "a", "b")
    True
    >>> cache.get(1, "a", "b") is None     # other epoch: miss
    True
    """

    def __init__(self, capacity: int = 4096) -> None:
        if capacity < 1:
            raise ValueError("cache capacity must be >= 1")
        self.capacity = capacity
        self._entries: dict[tuple, bool] = {}
        self._lock = threading.Lock()
        self.hits = 0
        self.misses = 0

    def get(self, epoch: int, source, target,
            trace=None) -> bool | None:
        """The cached answer for the pair at ``epoch``, else ``None``.

        A hit settles the query, so when the caller threads a
        :class:`~repro.service.tracing.Trace` through, the hit marks a
        ``cache`` stage and claims the ``cache_hit`` answer class.
        """
        key = (epoch, source, target)
        with self._lock:
            try:
                answer = self._entries.pop(key)
            except KeyError:
                self.misses += 1
                return None
            self._entries[key] = answer      # re-insert: most recent
            self.hits += 1
        if trace is not None:
            trace.klass = "cache_hit"
            trace.epoch = epoch
            trace.mark("cache", epoch=epoch)
        return answer

    def put(self, epoch: int, source, target, answer: bool) -> None:
        """Remember ``answer``, evicting the least recent past capacity."""
        key = (epoch, source, target)
        with self._lock:
            self._entries.pop(key, None)
            self._entries[key] = answer
            if len(self._entries) > self.capacity:
                self._entries.pop(next(iter(self._entries)))

    def __len__(self) -> int:
        return len(self._entries)

    @property
    def hit_rate(self) -> float:
        """Hits over lookups since construction (0.0 when unused)."""
        lookups = self.hits + self.misses
        return self.hits / lookups if lookups else 0.0

    def stats(self) -> dict:
        """Counters for the ``stats`` verb and the bench report."""
        with self._lock:
            return {
                "size": len(self._entries),
                "capacity": self.capacity,
                "hits": self.hits,
                "misses": self.misses,
                "hit_rate": self.hit_rate,
            }

    def __repr__(self) -> str:
        return (f"<ResultCache size={len(self._entries)}"
                f"/{self.capacity} hits={self.hits} "
                f"misses={self.misses}>")
