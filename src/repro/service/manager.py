"""The live index behind an atomic, epoch-tagged snapshot.

:class:`IndexManager` is the serving layer's source of truth.  It
keeps two structures:

* the **published snapshot** — an immutable :class:`Snapshot` whose
  backend is a frozen, packed :class:`~repro.core.index.ChainIndex`.
  Reads are lock-free: a query grabs the current snapshot with one
  attribute load (atomic under CPython) and runs entirely against
  frozen arrays, so in-flight queries are never blocked by writes or
  swaps and every answer is exact for the graph version its epoch
  names;
* the **shadow** — a :class:`~repro.core.maintenance.DynamicChainIndex`
  (or, for ``engine="dynamic-tol"``, a fully dynamic
  :class:`~repro.dynamic.TolIndex`) that absorbs ``add_edge`` /
  ``add_node`` incrementally under a write lock.  Writes do not touch
  the published snapshot; they become visible when a
  **rebuild-and-swap** packs a fresh static index from a copy of the
  shadow's graph (off-lock, so queries keep flowing) and atomically
  publishes it with ``epoch + 1``.

Deletions (``remove_edge`` / ``remove_node``) route by capability:
a ``deletable`` shadow repairs its labels in place, any other shadow
mutates its graph and re-derives its labels — either way the write
follows the same visibility rules as inserts.

``mode="dynamic"`` flips the trade-off for mutation-heavy workloads:
the published snapshot *is* the shadow, every write bumps the epoch
immediately, and queries briefly take the write lock so each batch is
consistent with the epoch it reports.  Both modes answer through the
same :class:`~repro.core.protocols.BatchReachability` surface.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass

from repro.core.index import ChainIndex
from repro.core.maintenance import DynamicChainIndex
from repro.core.protocols import BatchReachability
from repro.graph.digraph import DiGraph
from repro.graph.errors import (
    EdgeExistsError,
    EdgeNotFoundError,
    NodeNotFoundError,
    NotADAGError,
)
from repro.obs import OBS
from repro.service.errors import WritesUnsupportedError

__all__ = ["Snapshot", "IndexManager"]

_MODES = ("static", "dynamic")


@dataclass(frozen=True)
class Snapshot:
    """One published graph version: an epoch, a backend, its graph.

    ``graph`` is the exact graph version the backend answers for — a
    private copy in static mode (safe to BFS against even while newer
    writes land), the live shadow graph in dynamic mode, and ``None``
    for an index loaded from a file (the original graph is not
    recoverable from the condensation).  ``packed_seconds`` records
    how long the static pack took (0.0 for dynamic snapshots).
    """

    epoch: int
    backend: BatchReachability
    graph: DiGraph | None
    kind: str = "static"
    packed_seconds: float = 0.0

    def __repr__(self) -> str:
        nodes = self.graph.num_nodes if self.graph is not None else "?"
        return (f"<Snapshot epoch={self.epoch} kind={self.kind} "
                f"nodes={nodes}>")


class IndexManager:
    """Concurrent reachability queries over a mutable graph.

    >>> from repro import DiGraph
    >>> manager = IndexManager.from_graph(
    ...     DiGraph.from_edges([("a", "b"), ("b", "c")]))
    >>> manager.query_many([("a", "c"), ("c", "a")])
    (0, [True, False])
    >>> manager.add_edge("c", "d", create=True)
    True
    >>> manager.swap().epoch          # promote the write
    1
    >>> manager.query_many([("a", "d")])
    (1, [True])
    """

    def __init__(self, snapshot: Snapshot,
                 shadow: DynamicChainIndex | None, *,
                 method: str = "stratified", mode: str = "static",
                 engine: str | None = None,
                 auto_swap_after: int | None = None) -> None:
        if mode not in _MODES:
            raise ValueError(
                f"unknown mode {mode!r}; expected one of {_MODES}")
        self._snapshot = snapshot
        self._shadow = shadow
        self._method = method
        self._engine = engine if engine is not None \
            else f"chain-{method}"
        self._mode = mode
        self._auto_swap_after = auto_swap_after
        self._lock = threading.Lock()        # guards shadow + publish
        self._swap_lock = threading.Lock()   # serialises swaps
        self._swap_thread: threading.Thread | None = None
        self._pending = 0
        self._swaps = 0
        self._writes = 0
        #: optional :class:`~repro.obs.logging.JsonLinesLogger`; when
        #: set, swap lifecycle events (``swap_start`` / ``swap_finish``)
        #: are emitted as structured JSON lines
        self.event_log = None

    def _log_event(self, event: str, **fields) -> None:
        log = self.event_log
        if log is not None:
            log.log(event, **fields)

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    @classmethod
    def from_graph(cls, graph: DiGraph, *, method: str = "stratified",
                   mode: str = "static", engine: str | None = None,
                   auto_swap_after: int | None = None) -> "IndexManager":
        """Manage ``graph`` (copied — later mutation goes through the
        manager).

        ``engine`` selects any registered engine
        (:func:`repro.engine.names`) as the packed backend; ``method``
        is the legacy spelling of the chain engines
        (``method="closure"`` ≡ ``engine="chain-closure"``) and the two
        cannot disagree.  ``engine="dynamic"`` / ``"dynamic-tol"``
        imply ``mode="dynamic"``.  Whether writes are accepted is a
        *capability* question, not a type question: writes flow when
        the shadow exists (DAG input), whatever engine answers reads.
        Static mode accepts cyclic graphs for read-only service (the
        dynamic shadow needs a DAG, so writes then raise
        :class:`WritesUnsupportedError`); dynamic mode requires a DAG
        outright.
        """
        engine, method, mode = cls._resolve_engine(engine, method, mode)
        version = graph.copy()
        try:
            if engine == "dynamic-tol":
                from repro.dynamic import TolIndex
                shadow = TolIndex.from_graph(version)
            else:
                shadow = DynamicChainIndex.from_graph(version)
        except NotADAGError:
            if mode == "dynamic":
                raise
            shadow = None
        if mode == "dynamic":
            snapshot = Snapshot(0, shadow, shadow.graph, kind="dynamic")
        else:
            index, seconds = cls._pack(version, engine)
            snapshot = Snapshot(0, index, version, kind="static",
                                packed_seconds=seconds)
        return cls(snapshot, shadow, method=method, mode=mode,
                   engine=engine, auto_swap_after=auto_swap_after)

    @staticmethod
    def _resolve_engine(engine: str | None, method: str,
                        mode: str) -> tuple[str, str, str]:
        """Reconcile the ``engine`` name with the legacy ``method``."""
        from repro.engine import get
        if engine is None:
            engine = "dynamic" if mode == "dynamic" \
                else f"chain-{method}"
        get(engine)                          # fail fast on unknown names
        if engine.startswith("chain-"):
            chain_method = engine[len("chain-"):]
            if method not in ("stratified", chain_method):
                raise ValueError(
                    f"engine {engine!r} conflicts with "
                    f"method {method!r}")
            method = chain_method
        elif engine in ("dynamic", "dynamic-tol"):
            mode = "dynamic"
        return engine, method, mode

    @classmethod
    def from_index_file(cls, path, *,
                        method: str = "stratified") -> "IndexManager":
        """Serve a persisted index read-only (see ``save_index``).

        Accepts both persistence formats: a version-2 file publishes a
        :class:`ChainIndex`, a version-3 composite manifest publishes
        the reconstructed ``CompositeEngine``.  The original graph
        cannot be reconstructed from the persisted condensation, so
        there is no shadow: writes raise
        :class:`WritesUnsupportedError` and ``swap`` is a no-op.
        """
        from repro.core.persistence import load_index
        index = load_index(path)
        index.is_reachable_many([])          # pre-build the batch kernel
        if isinstance(index, ChainIndex):
            engine = f"chain-{index.method}"
            method = index.method
        else:
            engine = index.name
        return cls(Snapshot(0, index, None, kind="static"), None,
                   method=method, mode="static", engine=engine)

    @staticmethod
    def _pack(graph: DiGraph, engine: str):
        """Build the selected engine's packed backend for ``graph``.

        Chain engines publish the raw :class:`ChainIndex` (no adapter
        hop on the serving path); every other name builds through the
        registry.
        """
        with OBS.span("service/swap") as span:
            if engine.startswith("chain-"):
                index = ChainIndex.build(graph,
                                         method=engine[len("chain-"):])
            else:
                from repro.engine import build
                index = build(engine, graph)
            index.is_reachable_many([])      # pre-build the batch kernel
        return index, span.seconds

    # ------------------------------------------------------------------
    # reads
    # ------------------------------------------------------------------
    @property
    def snapshot(self) -> Snapshot:
        """The currently published snapshot (one atomic read)."""
        return self._snapshot

    @property
    def epoch(self) -> int:
        """Epoch of the published snapshot."""
        return self._snapshot.epoch

    def query_many(self, pairs) -> tuple[int, list[bool]]:
        """Answer ``pairs`` against one consistent snapshot.

        Returns ``(epoch, answers)``: every answer is exact for the
        graph version ``epoch`` names.  Lock-free in static mode; in
        dynamic mode the write lock is held for the batch so the
        answers and the reported epoch cannot tear against a racing
        write.
        """
        snapshot = self._snapshot
        if snapshot.kind == "static":
            return snapshot.epoch, snapshot.backend.is_reachable_many(pairs)
        with self._lock:
            snapshot = self._snapshot
            return snapshot.epoch, snapshot.backend.is_reachable_many(pairs)

    def is_reachable(self, source, target) -> bool:
        """Scalar convenience over :meth:`query_many`."""
        return self.query_many([(source, target)])[1][0]

    # ------------------------------------------------------------------
    # writes
    # ------------------------------------------------------------------
    @property
    def writable(self) -> bool:
        """Whether this manager can absorb writes."""
        return self._shadow is not None

    def add_edge(self, tail, head, *, create: bool = False) -> bool:
        """Absorb ``tail → head`` into the shadow.

        Returns ``True`` when the edge was inserted, ``False`` when it
        already existed.  ``create=True`` adds missing endpoint nodes
        first.  Raises :class:`NotADAGError` for a cycle-closing edge,
        :class:`~repro.graph.errors.NodeNotFoundError` for unknown
        endpoints without ``create``, and
        :class:`WritesUnsupportedError` on a read-only manager.  In
        static mode the write becomes visible at the next swap; in
        dynamic mode immediately (with an epoch bump).
        """
        with self._lock:
            shadow = self._require_shadow()
            missing = ([node for node in dict.fromkeys((tail, head))
                        if node not in shadow.graph] if create else [])
            if missing:
                # A fresh endpoint has no edges, so this insert cannot
                # be a duplicate or close a cycle: creating the nodes
                # first can never leave them dangling behind a
                # rejection (which would be an unrecorded write).
                for node in missing:
                    shadow.add_node(node)
                shadow.add_edge(tail, head)
            else:
                # both endpoints pre-exist, so rejection is possible —
                # and nothing was created that would need rollback
                try:
                    shadow.add_edge(tail, head)
                except EdgeExistsError:
                    return False
            self._record_write("add_edge")
        self._maybe_auto_swap()
        return True

    def add_node(self, node) -> bool:
        """Absorb an isolated node; ``False`` when already present."""
        with self._lock:
            shadow = self._require_shadow()
            if node in shadow.graph:
                return False
            shadow.add_node(node)
            self._record_write("add_node")
        self._maybe_auto_swap()
        return True

    def remove_edge(self, source, target) -> bool:
        """Remove ``source → target`` from the shadow.

        Returns ``True`` when the edge was removed, ``False`` when it
        was not present (the mirror of :meth:`add_edge` returning
        ``False`` for a duplicate).  Raises
        :class:`~repro.graph.errors.NodeNotFoundError` (with ``role``)
        for unknown endpoints and :class:`WritesUnsupportedError` on a
        read-only manager.  A ``deletable`` shadow (``dynamic-tol``)
        repairs its labels in place; any other shadow mutates its
        graph and re-derives its labels, the same rebuild-and-swap
        cost model as inserts.
        """
        with self._lock:
            shadow = self._require_shadow()
            graph = shadow.graph
            for node, role in ((source, "source"), (target, "target")):
                if node not in graph:
                    raise NodeNotFoundError(node, role=role)
            try:
                if hasattr(shadow, "remove_edge"):
                    shadow.remove_edge(source, target)
                else:
                    graph.remove_edge(source, target)
                    shadow.rebuild()
            except EdgeNotFoundError:
                return False
            self._record_write("remove_edge")
        self._maybe_auto_swap()
        return True

    def remove_node(self, node) -> bool:
        """Remove ``node`` and its incident edges from the shadow.

        Returns ``True``; raises
        :class:`~repro.graph.errors.NodeNotFoundError` with
        ``role="node"`` when the node is absent, and
        :class:`WritesUnsupportedError` on a read-only manager.
        Routing mirrors :meth:`remove_edge`.
        """
        with self._lock:
            shadow = self._require_shadow()
            if node not in shadow.graph:
                raise NodeNotFoundError(node, role="node")
            if hasattr(shadow, "remove_node"):
                shadow.remove_node(node)
            else:
                shadow.graph.remove_node(node)
                shadow.rebuild()
            self._record_write("remove_node")
        self._maybe_auto_swap()
        return True

    def _require_shadow(self) -> DynamicChainIndex:
        if self._shadow is None:
            raise WritesUnsupportedError(
                "this manager is read-only (cyclic graph at build "
                "time, or loaded from an index file)")
        return self._shadow

    def _record_write(self, verb: str) -> None:
        """Bump write accounting; publish immediately in dynamic mode.

        Caller holds ``self._lock``.  ``verb`` feeds the per-verb
        ``service/writes/{verb}`` counter.
        """
        self._pending += 1
        self._writes += 1
        if OBS.enabled:
            OBS.count("service/writes")
            OBS.count(f"service/writes/{verb}")
        if self._mode == "dynamic":
            shadow = self._shadow
            self._snapshot = Snapshot(self._snapshot.epoch + 1, shadow,
                                      shadow.graph, kind="dynamic")
            if OBS.enabled:
                OBS.gauge("service/epoch", self._snapshot.epoch)

    # ------------------------------------------------------------------
    # rebuild-and-swap
    # ------------------------------------------------------------------
    @property
    def pending_writes(self) -> int:
        """Writes absorbed by the shadow but not yet in a static pack."""
        return self._pending

    @property
    def swap_count(self) -> int:
        """Snapshots promoted since construction."""
        return self._swaps

    def swap(self, force: bool = False) -> Snapshot:
        """Pack the shadow into a fresh snapshot and publish it.

        Static mode: copies the shadow's graph under the lock, builds a
        packed :class:`ChainIndex` *off* the lock (queries keep
        flowing on the old snapshot), then atomically publishes it with
        ``epoch + 1``.  Dynamic mode: re-minimises the shadow's chains
        (:meth:`DynamicChainIndex.rebuild`).  With nothing pending and
        ``force=False`` this is a no-op returning the live snapshot;
        read-only managers always no-op.  Concurrent callers serialise.
        """
        if self._shadow is None:
            return self._snapshot
        with self._swap_lock:
            with self._lock:
                if self._pending == 0 and not force:
                    return self._snapshot
                claimed = self._pending
                if self._mode == "dynamic":
                    return self._swap_dynamic_locked(claimed)
                version = self._shadow.graph.copy()
            self._log_event("swap_start", epoch=self._snapshot.epoch,
                            pending_writes=claimed, mode=self._mode)
            index, seconds = self._pack(version, self._engine)
            with self._lock:
                snapshot = Snapshot(self._snapshot.epoch + 1, index,
                                    version, kind="static",
                                    packed_seconds=seconds)
                self._snapshot = snapshot
                self._pending -= claimed
                self._swaps += 1
                if OBS.enabled:
                    OBS.count("service/swaps")
                    OBS.gauge("service/epoch", snapshot.epoch)
            self._log_event("swap_finish", epoch=snapshot.epoch,
                            pack_seconds=seconds, writes_packed=claimed)
            return snapshot

    def _swap_dynamic_locked(self, claimed: int) -> Snapshot:
        """Re-minimise the shadow in place (caller holds both locks)."""
        shadow = self._shadow
        self._log_event("swap_start", epoch=self._snapshot.epoch,
                        pending_writes=claimed, mode=self._mode)
        with OBS.span("service/swap"):
            shadow.rebuild()
        snapshot = Snapshot(self._snapshot.epoch + 1, shadow,
                            shadow.graph, kind="dynamic")
        self._snapshot = snapshot
        self._pending -= claimed
        self._swaps += 1
        if OBS.enabled:
            OBS.count("service/swaps")
            OBS.gauge("service/epoch", snapshot.epoch)
        self._log_event("swap_finish", epoch=snapshot.epoch,
                        pack_seconds=0.0, writes_packed=claimed)
        return snapshot

    def _maybe_auto_swap(self) -> None:
        """Kick a background swap once enough writes accumulated."""
        threshold = self._auto_swap_after
        if (threshold is None or self._pending < threshold
                or self._mode == "dynamic"):
            return
        with self._lock:
            # check-and-set-and-start under the lock: two racing
            # writers must not both observe "no live swap thread" and
            # double-spawn (started inside the lock so a not-yet-alive
            # thread can't be mistaken for a finished one; the new
            # thread blocks on the locks until we release, so this
            # cannot deadlock)
            thread = self._swap_thread
            if thread is not None and thread.is_alive():
                return                       # one swap in flight is enough
            thread = threading.Thread(target=self.swap, daemon=True,
                                      name="repro-service-swap")
            self._swap_thread = thread
            thread.start()

    def close(self) -> None:
        """Wait for an in-flight background swap to finish."""
        with self._lock:
            thread = self._swap_thread
        if thread is not None and thread.is_alive():
            thread.join(timeout=60.0)

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------
    def stats(self) -> dict:
        """Counters for the ``stats`` verb and the bench report."""
        from repro.engine.interface import capabilities
        snapshot = self._snapshot
        graph = snapshot.graph
        if hasattr(snapshot.backend, "supports_batch"):
            backend_caps = capabilities(snapshot.backend)
        else:
            # raw ChainIndex / DynamicChainIndex backends carry no
            # flags; report the registered engine's
            from repro.engine import get
            backend_caps = get(self._engine).capabilities
        return {
            "epoch": snapshot.epoch,
            "mode": self._mode,
            "kind": snapshot.kind,
            "engine": self._engine,
            "capabilities": backend_caps,
            "writable": self.writable,
            "pending_writes": self._pending,
            "swaps": self._swaps,
            "writes": self._writes,
            "nodes": graph.num_nodes if graph is not None else None,
            "edges": graph.num_edges if graph is not None else None,
            "last_pack_seconds": snapshot.packed_seconds,
        }

    def __repr__(self) -> str:
        return (f"<IndexManager mode={self._mode!r} "
                f"epoch={self.epoch} pending={self._pending} "
                f"swaps={self._swaps}>")
