"""The asyncio TCP front end: newline-delimited JSON, stdlib only.

One request per line, one JSON response per line, in order, per
connection (concurrency comes from many connections — which is exactly
what the micro-batcher coalesces).  Verbs: ``query``, ``query_batch``,
``add_edge``, ``add_node``, ``stats``, ``reload``, ``ping``; the wire
contract is specified in ``docs/SERVICE.md``.

Operational guarantees:

* **per-request timeout** — a request that cannot be answered within
  ``request_timeout`` seconds gets a ``timeout`` error instead of
  wedging its connection;
* **bounded backpressure** — the micro-batch queue is bounded; at the
  bound clients get an explicit ``overloaded`` error, never unbounded
  buffering;
* **graceful drain** — :meth:`ReachabilityService.shutdown` stops
  accepting connections, flushes every queued query, lets in-flight
  requests finish within a grace period, and only then tears down.

:func:`start_in_thread` runs a service on a background thread with its
own event loop — how a synchronous embedder (the CLI tests, a WSGI
app) hosts one.
"""

from __future__ import annotations

import asyncio
import json
import threading
import time
from collections import deque

from repro.graph.errors import (
    GraphError,
    NodeNotFoundError,
    NotADAGError,
)
from repro.obs import OBS
from repro.service.batching import MicroBatcher
from repro.service.cache import ResultCache
from repro.service.errors import (
    OverloadedError,
    ServiceError,
    WritesUnsupportedError,
)
from repro.service.manager import IndexManager

__all__ = ["ReachabilityService", "ThreadedService", "start_in_thread"]

#: largest accepted request line (also bounds query_batch size).
MAX_LINE_BYTES = 4 * 1024 * 1024


def _scalar(value, name: str):
    """Reject wire values that cannot be node ids / cache keys.

    JSON containers are unhashable, so letting one through would blow
    up later in the cache or the kernel instead of at the request
    boundary.
    """
    if isinstance(value, (dict, list)):
        raise ValueError(
            f"{name} must be a JSON scalar, not {type(value).__name__}")
    return value


def _percentile(sorted_values: list[float], fraction: float) -> float:
    if not sorted_values:
        return 0.0
    position = min(len(sorted_values) - 1,
                   int(fraction * len(sorted_values)))
    return sorted_values[position]


class ReachabilityService:
    """Manager + cache + micro-batcher behind one TCP listener."""

    def __init__(self, manager: IndexManager, *,
                 host: str = "127.0.0.1", port: int = 0,
                 max_batch: int = 128, max_wait_us: int = 500,
                 max_pending: int = 1024, cache_size: int = 4096,
                 request_timeout: float = 10.0,
                 drain_grace: float = 5.0) -> None:
        self.manager = manager
        self.cache = ResultCache(cache_size) if cache_size else None
        self.batcher = MicroBatcher(manager, self.cache,
                                    max_batch=max_batch,
                                    max_wait_us=max_wait_us,
                                    max_pending=max_pending)
        self.request_timeout = request_timeout
        self.drain_grace = drain_grace
        self._host = host
        self._port = port
        self._server: asyncio.AbstractServer | None = None
        self._connections: set[asyncio.Task] = set()
        self._draining = False
        self._started_at = 0.0
        self.requests = 0
        self.errors = 0
        self._latencies: deque = deque(maxlen=2048)  # (end_time, seconds)

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    @property
    def address(self) -> tuple[str, int]:
        """``(host, port)`` actually bound (valid after :meth:`start`)."""
        return self._host, self._port

    async def start(self) -> tuple[str, int]:
        """Bind the listener and start the flush loop."""
        await self.batcher.start()
        self._server = await asyncio.start_server(
            self._serve_connection, self._host, self._port,
            limit=MAX_LINE_BYTES)
        self._host, self._port = self._server.sockets[0].getsockname()[:2]
        self._started_at = time.monotonic()
        return self.address

    async def serve_forever(self) -> None:
        """Block until the server is shut down."""
        if self._server is None:
            raise ServiceError("service not started")
        try:
            await self._server.serve_forever()
        except asyncio.CancelledError:
            pass

    async def shutdown(self) -> None:
        """Graceful drain: stop accepting, flush, finish, tear down."""
        self._draining = True
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        # let in-flight requests (and their queued queries) complete
        if self._connections:
            await asyncio.wait(self._connections,
                               timeout=self.drain_grace)
        await self.batcher.close(drain=True)
        for task in list(self._connections):
            task.cancel()
        self.manager.close()

    # ------------------------------------------------------------------
    # connection handling
    # ------------------------------------------------------------------
    async def _serve_connection(self, reader: asyncio.StreamReader,
                                writer: asyncio.StreamWriter) -> None:
        task = asyncio.current_task()
        self._connections.add(task)
        try:
            while not self._draining:
                try:
                    line = await reader.readline()
                except (asyncio.IncompleteReadError, ConnectionError):
                    break
                except ValueError:
                    # readline() re-raises LimitOverrunError as
                    # ValueError when a line exceeds the stream limit
                    response = self._error(
                        None, "bad_request",
                        f"request line exceeds {MAX_LINE_BYTES} bytes")
                    try:
                        writer.write(json.dumps(response,
                                                separators=(",", ":"))
                                     .encode("utf-8") + b"\n")
                        await writer.drain()
                    except (ConnectionError, RuntimeError):
                        pass
                    break
                if not line:
                    break
                stripped = line.strip()
                if not stripped:
                    continue
                started = time.monotonic()
                response = await self._handle_line(stripped)
                ended = time.monotonic()
                self._latencies.append((ended, ended - started))
                try:
                    writer.write(json.dumps(response,
                                            separators=(",", ":"))
                                 .encode("utf-8") + b"\n")
                    await writer.drain()
                except (ConnectionError, RuntimeError):
                    break
        finally:
            self._connections.discard(task)
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, asyncio.CancelledError):
                pass

    async def _handle_line(self, line: bytes) -> dict:
        self.requests += 1
        if OBS.enabled:
            OBS.count("service/requests")
        try:
            request = json.loads(line)
        except (json.JSONDecodeError, UnicodeDecodeError) as exc:
            return self._error(None, "bad_request",
                               f"not valid JSON: {exc}")
        if not isinstance(request, dict):
            return self._error(None, "bad_request",
                               "request must be a JSON object")
        request_id = request.get("id")
        with OBS.span("service/request"):
            try:
                response = await asyncio.wait_for(
                    self._dispatch(request), self.request_timeout)
            except asyncio.TimeoutError:
                return self._error(
                    request_id, "timeout",
                    f"request exceeded {self.request_timeout}s")
            except OverloadedError as exc:
                return self._error(request_id, "overloaded", str(exc))
            except NodeNotFoundError as exc:
                response = self._error(request_id, "unknown_node",
                                       str(exc))
                if exc.role:
                    response["role"] = exc.role
                return response
            except NotADAGError as exc:
                return self._error(request_id, "cycle", str(exc))
            except WritesUnsupportedError as exc:
                return self._error(request_id, "unsupported", str(exc))
            except ServiceError as exc:      # e.g. draining batcher
                return self._error(request_id, "unavailable", str(exc))
            except (GraphError, TypeError, ValueError, KeyError) as exc:
                return self._error(request_id, "bad_request", str(exc))
            except Exception as exc:  # noqa: BLE001 - fail the request,
                return self._error(request_id, "internal",  # not the server
                                   f"{type(exc).__name__}: {exc}")
        if request_id is not None:
            response["id"] = request_id
        return response

    def _error(self, request_id, code: str, message: str) -> dict:
        self.errors += 1
        response = {"ok": False, "error": code, "message": message}
        if request_id is not None:
            response["id"] = request_id
        return response

    # ------------------------------------------------------------------
    # verbs
    # ------------------------------------------------------------------
    async def _dispatch(self, request: dict) -> dict:
        op = request.get("op")
        if op == "query":
            source = _scalar(request["source"], "source")
            target = _scalar(request["target"], "target")
            epoch, reachable = await self.batcher.submit(source, target)
            return {"ok": True, "epoch": epoch, "reachable": reachable}
        if op == "query_batch":
            pairs = request["pairs"]
            if not isinstance(pairs, list) or not all(
                    isinstance(pair, (list, tuple)) and len(pair) == 2
                    for pair in pairs):
                raise ValueError(
                    "pairs must be a list of [source, target] pairs")
            pairs = [(_scalar(source, "source"), _scalar(target, "target"))
                     for source, target in pairs]
            epoch, answers = self.batcher.submit_many(pairs)
            return {"ok": True, "epoch": epoch, "reachable": answers}
        if op == "add_edge":
            source = _scalar(request["source"], "source")
            target = _scalar(request["target"], "target")
            create = bool(request.get("create", True))
            added = await asyncio.to_thread(
                self.manager.add_edge, source, target, create=create)
            return {"ok": True, "added": added,
                    "epoch": self.manager.epoch,
                    "pending_writes": self.manager.pending_writes}
        if op == "add_node":
            added = await asyncio.to_thread(
                self.manager.add_node, _scalar(request["node"], "node"))
            return {"ok": True, "added": added,
                    "epoch": self.manager.epoch,
                    "pending_writes": self.manager.pending_writes}
        if op == "reload":
            force = bool(request.get("force", False))
            snapshot = await asyncio.to_thread(self.manager.swap, force)
            return {"ok": True, "epoch": snapshot.epoch,
                    "swaps": self.manager.swap_count}
        if op == "stats":
            return {"ok": True, "stats": self.stats()}
        if op == "ping":
            return {"ok": True, "epoch": self.manager.epoch}
        raise ValueError(f"unknown op {op!r}")

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------
    def stats(self) -> dict:
        """The ``stats`` verb payload: manager + batcher + cache + server."""
        now = time.monotonic()
        latencies = list(self._latencies)
        seconds = sorted(duration for _, duration in latencies)
        window = now - latencies[0][0] if latencies else 0.0
        recent_qps = len(latencies) / window if window > 0 else 0.0
        uptime = now - self._started_at if self._started_at else 0.0
        return {
            "server": {
                "requests": self.requests,
                "errors": self.errors,
                "connections": len(self._connections),
                "uptime_seconds": uptime,
                "recent_qps": recent_qps,
                "p50_ms": 1e3 * _percentile(seconds, 0.50),
                "p99_ms": 1e3 * _percentile(seconds, 0.99),
            },
            "index": self.manager.stats(),
            "batching": self.batcher.stats(),
            "cache": (self.cache.stats() if self.cache is not None
                      else None),
        }


# ----------------------------------------------------------------------
# threaded embedding
# ----------------------------------------------------------------------
class ThreadedService:
    """A :class:`ReachabilityService` on a background event loop.

    >>> from repro import DiGraph
    >>> from repro.service import IndexManager
    >>> manager = IndexManager.from_graph(
    ...     DiGraph.from_edges([("a", "b")]))
    >>> with start_in_thread(manager) as handle:
    ...     host, port = handle.address
    ...     # connect a ServiceClient to (host, port) here
    """

    def __init__(self, service: ReachabilityService) -> None:
        self._service = service
        self._thread = threading.Thread(target=self._main, daemon=True,
                                        name="repro-service")
        self._ready = threading.Event()
        self._loop: asyncio.AbstractEventLoop | None = None
        self._stop: asyncio.Event | None = None
        self._failure: BaseException | None = None

    @property
    def address(self) -> tuple[str, int]:
        """``(host, port)`` of the running service."""
        return self._service.address

    @property
    def service(self) -> ReachabilityService:
        return self._service

    def start(self) -> "ThreadedService":
        self._thread.start()
        self._ready.wait(timeout=30.0)
        if self._failure is not None:
            raise ServiceError(
                f"service failed to start: {self._failure}"
            ) from self._failure
        if not self._ready.is_set():
            raise ServiceError("service did not start within 30s")
        return self

    def stop(self) -> None:
        """Drain and stop the service, then join its thread."""
        loop, stop = self._loop, self._stop
        if loop is not None and stop is not None and loop.is_running():
            loop.call_soon_threadsafe(stop.set)
        self._thread.join(timeout=30.0)

    def _main(self) -> None:
        try:
            asyncio.run(self._amain())
        except BaseException as exc:  # noqa: BLE001 - surfaced via start()
            self._failure = exc
            self._ready.set()

    async def _amain(self) -> None:
        self._loop = asyncio.get_running_loop()
        self._stop = asyncio.Event()
        await self._service.start()
        self._ready.set()
        await self._stop.wait()
        await self._service.shutdown()

    def __enter__(self) -> "ThreadedService":
        return self

    def __exit__(self, *exc_info) -> None:
        self.stop()


def start_in_thread(manager: IndexManager, **kwargs) -> ThreadedService:
    """Start a service on a daemon thread; returns once it is bound."""
    return ThreadedService(ReachabilityService(manager, **kwargs)).start()
