"""The asyncio TCP front end: newline-delimited JSON, stdlib only.

One request per line, one JSON response per line, in order, per
connection (concurrency comes from many connections — which is exactly
what the micro-batcher coalesces).  Verbs: ``query``, ``query_batch``,
``add_edge``, ``add_node``, ``remove_edge``, ``remove_node``,
``stats``, ``metrics``, ``slo``, ``reload``, ``ping``; the wire
contract is specified in ``docs/SERVICE.md``.

Telemetry: every query request carries a
:class:`~repro.service.tracing.Trace` through the serving path
(``accept`` → ``enqueue`` → ``flush`` → ``cache``/``kernel`` →
``respond``); the finished trace feeds always-on per-class latency
histograms (``positive`` / ``negative`` / ``prefilter_hit`` /
``cache_hit`` / ``batch``), a bounded ring of the slowest traces
(``stats`` → ``slow_traces``), the threshold-gated slow-query log, and
— when the request carried ``"trace": true`` — a stage breakdown
echoed in the response.  The ``metrics`` verb and the optional HTTP
side listener (``metrics_port``) expose everything in Prometheus text
format (:mod:`repro.obs.promtext`); the side listener also answers
``/healthz`` (process up) and ``/readyz`` (snapshot published, not
draining) so probes need not speak the NDJSON protocol.

Two opt-in observability hooks ride the same path (both ``None`` by
default, costing one ``is not None`` check each):

* ``capture=`` — a :class:`~repro.service.capture.RequestCapture`
  journaling query/write verbs with class, epoch and latency
  (``serve --capture PATH``);
* ``slo=`` — a :class:`~repro.obs.slo.SloTracker` (or a list of
  objective sentences) fed per-class latencies and request outcomes;
  read back through the ``slo`` verb, the Prometheus listener's
  ``slo/*`` gauges, and ``repro-graph slo-report``.

Operational guarantees:

* **per-request timeout** — a request that cannot be answered within
  ``request_timeout`` seconds gets a ``timeout`` error instead of
  wedging its connection;
* **bounded backpressure** — the micro-batch queue is bounded; at the
  bound clients get an explicit ``overloaded`` error, never unbounded
  buffering;
* **graceful drain** — :meth:`ReachabilityService.shutdown` stops
  accepting connections, flushes every queued query, lets in-flight
  requests finish within a grace period, and only then tears down.

:func:`start_in_thread` runs a service on a background thread with its
own event loop — how a synchronous embedder (the CLI tests, a WSGI
app) hosts one.
"""

from __future__ import annotations

import asyncio
import json
import threading
import time
from collections import deque

from repro.graph.errors import (
    GraphError,
    NodeNotFoundError,
    NotADAGError,
)
from repro.obs import OBS, Histogram, open_log, promtext
from repro.obs.slo import SloTracker
from repro.service.batching import MicroBatcher
from repro.service.cache import ResultCache
from repro.service.capture import CAPTURED_OPS, RequestCapture
from repro.service.errors import (
    OverloadedError,
    ServiceError,
    WritesUnsupportedError,
)
from repro.service.manager import IndexManager
from repro.service.tracing import SlowTraceRing, Trace

__all__ = ["ReachabilityService", "ThreadedService", "start_in_thread"]

#: largest accepted request line (also bounds query_batch size).
MAX_LINE_BYTES = 4 * 1024 * 1024


def _scalar(value, name: str):
    """Reject wire values that cannot be node ids / cache keys.

    JSON containers are unhashable, so letting one through would blow
    up later in the cache or the kernel instead of at the request
    boundary.
    """
    if isinstance(value, (dict, list)):
        raise ValueError(
            f"{name} must be a JSON scalar, not {type(value).__name__}")
    return value


class ReachabilityService:
    """Manager + cache + micro-batcher behind one TCP listener."""

    def __init__(self, manager: IndexManager, *,
                 host: str = "127.0.0.1", port: int = 0,
                 max_batch: int = 128, max_wait_us: int = 500,
                 max_pending: int = 1024, cache_size: int = 4096,
                 request_timeout: float = 10.0,
                 drain_grace: float = 5.0,
                 metrics_port: int | None = None,
                 log=None, slow_query_ms: float | None = None,
                 trace_capacity: int = 16,
                 reuse_port: bool = False, sock=None,
                 stats_provider=None,
                 metrics_provider=None,
                 capture=None, capture_capacity: int = 65536,
                 capture_sample: float = 1.0, slo=None) -> None:
        self.manager = manager
        #: pool integration — ``reuse_port`` binds the listener with
        #: SO_REUSEPORT so sibling worker processes share one port;
        #: ``sock`` serves on an inherited, already-listening socket
        #: instead (the accept-and-hand-off fallback).  The providers,
        #: when set, replace the local ``stats``/``metrics`` payloads
        #: with pool-wide aggregates fetched from the parent (called in
        #: a thread — they may block on the control pipe).
        self.reuse_port = reuse_port
        self._sock = sock
        self.stats_provider = stats_provider
        self.metrics_provider = metrics_provider
        self.cache = ResultCache(cache_size) if cache_size else None
        self.batcher = MicroBatcher(manager, self.cache,
                                    max_batch=max_batch,
                                    max_wait_us=max_wait_us,
                                    max_pending=max_pending)
        self.request_timeout = request_timeout
        self.drain_grace = drain_grace
        self._host = host
        self._port = port
        self._server: asyncio.AbstractServer | None = None
        self._connections: set[asyncio.Task] = set()
        self._draining = False
        self._started_at = 0.0
        self.requests = 0
        self.errors = 0
        self._recent: deque = deque(maxlen=2048)    # request end times
        # always-on telemetry: the stats verb and the Prometheus
        # exposition must work even with the OBS registry disabled
        #: latency of every wire request (seconds)
        self.request_latency = Histogram()
        #: per answer-class latency histograms, created on first use
        self.class_latency: dict[str, Histogram] = {}
        #: bounded ring of the slowest traces since startup
        self.slow_traces = SlowTraceRing(trace_capacity)
        #: structured JSON-lines log (``log`` is a path, ``"-"`` for
        #: stderr, or an open stream; ``None`` disables logging)
        self.log = open_log(log) if log is not None else None
        #: slow-query threshold in milliseconds (``None`` disables the
        #: slow-query records; lifecycle events still log)
        self.slow_query_ms = slow_query_ms
        if self.log is not None:
            manager.event_log = self.log
        self.metrics_port = metrics_port
        self._metrics_server: asyncio.AbstractServer | None = None
        #: ``(host, port)`` of the HTTP exposition listener, once bound
        self.metrics_address: tuple[str, int] | None = None
        #: opt-in request journal (a path coerces to a
        #: :class:`RequestCapture` sized by ``capture_capacity`` /
        #: ``capture_sample``); ``None`` keeps the request path at a
        #: single pointer check
        if capture is not None and not isinstance(capture, RequestCapture):
            capture = RequestCapture(capture, capacity=capture_capacity,
                                     sample=capture_sample)
        self.capture: RequestCapture | None = capture
        #: opt-in SLO tracker (a list of objective sentences coerces)
        if slo is not None and not isinstance(slo, SloTracker):
            slo = SloTracker(slo)
        self.slo: SloTracker | None = slo

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    @property
    def address(self) -> tuple[str, int]:
        """``(host, port)`` actually bound (valid after :meth:`start`)."""
        return self._host, self._port

    async def start(self) -> tuple[str, int]:
        """Bind the listener(s) and start the flush loop."""
        await self.batcher.start()
        if self._sock is not None:
            self._server = await asyncio.start_server(
                self._serve_connection, sock=self._sock,
                limit=MAX_LINE_BYTES)
        else:
            self._server = await asyncio.start_server(
                self._serve_connection, self._host, self._port,
                limit=MAX_LINE_BYTES, reuse_port=self.reuse_port or None)
        self._host, self._port = self._server.sockets[0].getsockname()[:2]
        if self.metrics_port is not None:
            self._metrics_server = await asyncio.start_server(
                self._serve_metrics, self._host, self.metrics_port)
            sockname = self._metrics_server.sockets[0].getsockname()
            self.metrics_address = tuple(sockname[:2])
        self._started_at = time.monotonic()
        self._log_event("listening", host=self._host, port=self._port,
                        metrics_port=(self.metrics_address[1]
                                      if self.metrics_address else None),
                        epoch=self.manager.epoch)
        return self.address

    async def serve_forever(self) -> None:
        """Block until the server is shut down."""
        if self._server is None:
            raise ServiceError("service not started")
        try:
            await self._server.serve_forever()
        except asyncio.CancelledError:
            pass

    async def shutdown(self) -> None:
        """Graceful drain: stop accepting, flush, finish, tear down."""
        self._draining = True
        self._log_event("drain_start",
                        connections=len(self._connections),
                        queued=self.batcher.queue_depth)
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        if self._metrics_server is not None:
            self._metrics_server.close()
            await self._metrics_server.wait_closed()
        # let in-flight requests (and their queued queries) complete
        if self._connections:
            await asyncio.wait(self._connections,
                               timeout=self.drain_grace)
        await self.batcher.close(drain=True)
        for task in list(self._connections):
            task.cancel()
        if self.capture is not None:
            self.capture.close()
            self._log_event("capture_flush", **self.capture.describe())
        self.manager.close()
        self._log_event("drain_finish", requests=self.requests,
                        errors=self.errors)

    def _log_event(self, event: str, **fields) -> None:
        if self.log is not None:
            self.log.log(event, **fields)

    # ------------------------------------------------------------------
    # connection handling
    # ------------------------------------------------------------------
    async def _serve_connection(self, reader: asyncio.StreamReader,
                                writer: asyncio.StreamWriter) -> None:
        task = asyncio.current_task()
        self._connections.add(task)
        try:
            while not self._draining:
                try:
                    line = await reader.readline()
                except (asyncio.IncompleteReadError, ConnectionError):
                    break
                except ValueError:
                    # readline() re-raises LimitOverrunError as
                    # ValueError when a line exceeds the stream limit
                    response = self._error(
                        None, "bad_request",
                        f"request line exceeds {MAX_LINE_BYTES} bytes")
                    try:
                        writer.write(json.dumps(response,
                                                separators=(",", ":"))
                                     .encode("utf-8") + b"\n")
                        await writer.drain()
                    except (ConnectionError, RuntimeError):
                        pass
                    break
                if not line:
                    break
                stripped = line.strip()
                if not stripped:
                    continue
                started = time.perf_counter()
                response = await self._handle_line(stripped)
                elapsed = time.perf_counter() - started
                self.request_latency.observe(elapsed)
                if OBS.enabled:
                    OBS.observe("service/request_latency", elapsed)
                self._recent.append(time.monotonic())
                try:
                    writer.write(json.dumps(response,
                                            separators=(",", ":"))
                                 .encode("utf-8") + b"\n")
                    await writer.drain()
                except (ConnectionError, RuntimeError):
                    break
        finally:
            self._connections.discard(task)
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, asyncio.CancelledError):
                pass

    async def _handle_line(self, line: bytes) -> dict:
        self.requests += 1
        if OBS.enabled:
            OBS.count("service/requests")
        try:
            request = json.loads(line)
        except (json.JSONDecodeError, UnicodeDecodeError) as exc:
            return self._error(None, "bad_request",
                               f"not valid JSON: {exc}")
        if not isinstance(request, dict):
            return self._error(None, "bad_request",
                               "request must be a JSON object")
        request_id = request.get("id")
        op = request.get("op")
        trace = None
        if op in ("query", "query_batch"):
            trace = Trace(op)
            trace.mark("accept", queue_depth=self.batcher.queue_depth,
                       epoch=self.manager.epoch)
        capture_write = (self.capture is not None and trace is None
                         and op in CAPTURED_OPS)
        started = time.perf_counter() if capture_write else 0.0
        with OBS.span("service/request"):
            response = await self._dispatch_guarded(request, op,
                                                    request_id, trace)
        if trace is not None:
            trace.mark("respond")
            trace.finish()
            self._finish_query(trace, request, response)
        if self.slo is not None:
            self.slo.note_request(bool(response.get("ok")))
        if capture_write:
            self.capture.record(
                op, ok=bool(response.get("ok")),
                epoch=response.get("epoch"),
                latency_ms=1e3 * (time.perf_counter() - started),
                source=request.get("source"),
                target=request.get("target"),
                node=request.get("node"),
                create=(request.get("create") if op == "add_edge"
                        else None),
                force=request.get("force") if op == "reload" else None)
        if request_id is not None:
            response["id"] = request_id
        return response

    async def _dispatch_guarded(self, request: dict, op,
                                request_id, trace) -> dict:
        """Dispatch with the error taxonomy: exceptions become error
        responses (the request fails, never the server)."""
        try:
            return await asyncio.wait_for(
                self._dispatch(request, trace), self.request_timeout)
        except asyncio.TimeoutError:
            return self._error(
                request_id, "timeout",
                f"request exceeded {self.request_timeout}s")
        except OverloadedError as exc:
            self._log_event("overloaded", op=op,
                            queue_depth=self.batcher.queue_depth,
                            max_pending=self.batcher.max_pending)
            return self._error(request_id, "overloaded", str(exc))
        except NodeNotFoundError as exc:
            response = self._error(request_id, "unknown_node", str(exc))
            if exc.role:
                response["role"] = exc.role
            return response
        except NotADAGError as exc:
            return self._error(request_id, "cycle", str(exc))
        except WritesUnsupportedError as exc:
            return self._error(request_id, "unsupported", str(exc))
        except ServiceError as exc:          # e.g. draining batcher
            return self._error(request_id, "unavailable", str(exc))
        except (GraphError, TypeError, ValueError, KeyError) as exc:
            return self._error(request_id, "bad_request", str(exc))
        except Exception as exc:  # noqa: BLE001 - fail the request,
            return self._error(request_id, "internal",  # not the server
                               f"{type(exc).__name__}: {exc}")

    def _finish_query(self, trace: Trace, request: dict,
                      response: dict) -> None:
        """Route one finished query trace into the telemetry sinks."""
        if not response.get("ok"):
            # failed queries get their own class: they must not skew
            # the answer-class latencies, but SLOs still see them
            trace.klass = "error"
        elif trace.op == "query_batch":
            # a cached first pair must not reclassify the whole batch
            trace.klass = "batch"
        elif trace.klass is None:
            trace.klass = self._classify(trace.op, request, response)
        seconds = trace.total_seconds
        histogram = self.class_latency.get(trace.klass)
        if histogram is None:
            histogram = self.class_latency.setdefault(
                trace.klass, Histogram())
        histogram.observe(seconds)
        if OBS.enabled:
            OBS.observe(f"service/latency/{trace.klass}", seconds)
        if self.slo is not None:
            self.slo.observe(trace.klass, seconds)
        if self.capture is not None:
            if trace.op == "query_batch":
                self.capture.record(
                    "query_batch", klass=trace.klass,
                    pairs=request.get("pairs"),
                    epoch=response.get("epoch"),
                    latency_ms=1e3 * seconds,
                    ok=bool(response.get("ok")))
            else:
                self.capture.record(
                    "query", klass=trace.klass,
                    source=request.get("source"),
                    target=request.get("target"),
                    epoch=response.get("epoch"),
                    latency_ms=1e3 * seconds,
                    ok=bool(response.get("ok")))
        self.slow_traces.offer(trace)
        if (self.log is not None and self.slow_query_ms is not None
                and 1e3 * seconds >= self.slow_query_ms):
            self.log.log("slow_query", **trace.to_dict())
        if request.get("trace"):
            response["trace"] = trace.to_dict()

    def _classify(self, op: str, request: dict, response: dict) -> str:
        """Answer class for a settled query the cache did not claim."""
        if op == "query_batch":
            return "batch"
        if response.get("reachable"):
            return "positive"
        prefilter = getattr(self.manager.snapshot.backend,
                            "prefilter_rejects", None)
        if prefilter is not None and prefilter(request["source"],
                                               request["target"]):
            return "prefilter_hit"
        return "negative"

    def _error(self, request_id, code: str, message: str) -> dict:
        self.errors += 1
        response = {"ok": False, "error": code, "message": message}
        if request_id is not None:
            response["id"] = request_id
        return response

    # ------------------------------------------------------------------
    # verbs
    # ------------------------------------------------------------------
    async def _dispatch(self, request: dict,
                        trace: Trace | None = None) -> dict:
        op = request.get("op")
        if op == "query":
            source = _scalar(request["source"], "source")
            target = _scalar(request["target"], "target")
            epoch, reachable = await self.batcher.submit(source, target,
                                                         trace)
            return {"ok": True, "epoch": epoch, "reachable": reachable}
        if op == "query_batch":
            pairs = request["pairs"]
            if not isinstance(pairs, list) or not all(
                    isinstance(pair, (list, tuple)) and len(pair) == 2
                    for pair in pairs):
                raise ValueError(
                    "pairs must be a list of [source, target] pairs")
            pairs = [(_scalar(source, "source"), _scalar(target, "target"))
                     for source, target in pairs]
            epoch, answers = self.batcher.submit_many(pairs, trace)
            return {"ok": True, "epoch": epoch, "reachable": answers}
        if op == "add_edge":
            source = _scalar(request["source"], "source")
            target = _scalar(request["target"], "target")
            create = bool(request.get("create", True))
            added = await asyncio.to_thread(
                self.manager.add_edge, source, target, create=create)
            return {"ok": True, "added": added,
                    "epoch": self.manager.epoch,
                    "pending_writes": self.manager.pending_writes}
        if op == "add_node":
            added = await asyncio.to_thread(
                self.manager.add_node, _scalar(request["node"], "node"))
            return {"ok": True, "added": added,
                    "epoch": self.manager.epoch,
                    "pending_writes": self.manager.pending_writes}
        if op == "remove_edge":
            source = _scalar(request["source"], "source")
            target = _scalar(request["target"], "target")
            removed = await asyncio.to_thread(
                self.manager.remove_edge, source, target)
            return {"ok": True, "removed": removed,
                    "epoch": self.manager.epoch,
                    "pending_writes": self.manager.pending_writes}
        if op == "remove_node":
            removed = await asyncio.to_thread(
                self.manager.remove_node,
                _scalar(request["node"], "node"))
            return {"ok": True, "removed": removed,
                    "epoch": self.manager.epoch,
                    "pending_writes": self.manager.pending_writes}
        if op == "reload":
            force = bool(request.get("force", False))
            snapshot = await asyncio.to_thread(self.manager.swap, force)
            return {"ok": True, "epoch": snapshot.epoch,
                    "swaps": self.manager.swap_count}
        if op == "stats":
            if self.stats_provider is not None:
                payload = await asyncio.to_thread(self.stats_provider)
            else:
                payload = self.stats()
            return {"ok": True, "stats": payload}
        if op == "metrics":
            if self.metrics_provider is not None:
                text = await asyncio.to_thread(self.metrics_provider)
            else:
                text = self.render_metrics()
            return {"ok": True, "content_type": promtext.CONTENT_TYPE,
                    "text": text}
        if op == "slo":
            if self.slo is not None:
                payload = await asyncio.to_thread(self.slo.evaluate)
            else:
                payload = {"enabled": False, "objectives": [],
                           "healthy": True, "breach_count": 0,
                           "breaches": []}
            return {"ok": True, "slo": payload}
        if op == "ping":
            return {"ok": True, "epoch": self.manager.epoch}
        raise ValueError(f"unknown op {op!r}")

    # ------------------------------------------------------------------
    # Prometheus exposition
    # ------------------------------------------------------------------
    def render_metrics(self) -> str:
        """The Prometheus text document for this service.

        Combines the process-wide OBS registry (whatever is enabled)
        with the service's always-on histograms and counters, so a
        scrape is useful even when the registry is off.
        """
        extra = {"service/request_latency": self.request_latency,
                 "service/queue_wait": self.batcher.queue_wait,
                 "service/kernel_batch": self.batcher.kernel_batch}
        for klass, histogram in self.class_latency.items():
            extra[f"service/latency/{klass}"] = histogram
        lines = [promtext.render(OBS, histograms=extra).rstrip("\n")]
        # always-on counters/gauges the registry only has when enabled
        registry_counters = OBS.counters
        registry_gauges = OBS.gauges
        for name, value in (("service/requests", self.requests),
                            ("service/errors", self.errors)):
            if name in registry_counters:
                continue
            base = promtext.prom_name(name) + "_total"
            lines.append(f"# TYPE {base} counter")
            lines.append(f"{base} {value}")
        if self.capture is not None:
            for name, value in (
                    ("service/capture_records", self.capture.sampled),
                    ("service/capture_dropped", self.capture.dropped)):
                if name in registry_counters:
                    continue
                base = promtext.prom_name(name) + "_total"
                lines.append(f"# TYPE {base} counter")
                lines.append(f"{base} {value}")
        gauges = [("service/epoch", self.manager.epoch),
                  ("service/connections", len(self._connections))]
        if self.slo is not None:
            # evaluating on scrape is what detects breaches without a
            # background thread; slo/breaches rides the counter block
            report = self.slo.evaluate()
            gauges.extend(sorted(self.slo.gauge_values(report).items()))
            if "slo/breaches" not in registry_counters:
                base = promtext.prom_name("slo/breaches") + "_total"
                lines.append(f"# TYPE {base} counter")
                lines.append(f"{base} {self.slo.breach_count}")
        for name, value in gauges:
            if name in registry_gauges:
                continue
            base = promtext.prom_name(name)
            lines.append(f"# TYPE {base} gauge")
            lines.append(f"{base} {value}")
        return "\n".join(lines) + "\n"

    async def _serve_metrics(self, reader: asyncio.StreamReader,
                             writer: asyncio.StreamWriter) -> None:
        """Minimal HTTP/1.0 handler for the exposition side listener."""
        try:
            request_line = await reader.readline()
            while True:                      # drain headers
                header = await reader.readline()
                if header in (b"\r\n", b"\n", b""):
                    break
            parts = request_line.split()
            path = (parts[1].decode("latin-1", "replace")
                    if len(parts) >= 2 else "/")
            route = path.split("?", 1)[0]
            if route in ("/", "/metrics"):
                status = "200 OK"
                content_type = promtext.CONTENT_TYPE
                body = self.render_metrics().encode("utf-8")
            elif route == "/healthz":
                status = "200 OK"
                content_type = "text/plain; charset=utf-8"
                body = b"ok\n"
            elif route == "/readyz":
                ready = self.ready()
                status = "200 OK" if ready else "503 Service Unavailable"
                content_type = "application/json"
                body = (json.dumps({"ready": ready,
                                    "epoch": self.manager.epoch,
                                    "draining": self._draining})
                        .encode("utf-8") + b"\n")
            else:
                status = "404 Not Found"
                content_type = "text/plain; charset=utf-8"
                body = (b"not found; scrape /metrics or probe "
                        b"/healthz, /readyz\n")
            writer.write((f"HTTP/1.0 {status}\r\n"
                          f"Content-Type: {content_type}\r\n"
                          f"Content-Length: {len(body)}\r\n"
                          "Connection: close\r\n\r\n").encode("ascii")
                         + body)
            await writer.drain()
        except (ConnectionError, RuntimeError):
            pass
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, asyncio.CancelledError):
                pass

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------
    def ready(self) -> bool:
        """``/readyz`` condition: bound, snapshot published, not
        draining."""
        return (self._server is not None and not self._draining
                and self.manager.snapshot is not None)

    def stats(self) -> dict:
        """The ``stats`` verb payload: manager + batcher + cache +
        server + per-class latency + slowest traces."""
        now = time.monotonic()
        recent = list(self._recent)
        window = now - recent[0] if recent else 0.0
        recent_qps = len(recent) / window if window > 0 else 0.0
        uptime = now - self._started_at if self._started_at else 0.0
        p50, p99, p999 = self.request_latency.percentiles(
            0.50, 0.99, 0.999)
        return {
            "server": {
                "requests": self.requests,
                "errors": self.errors,
                "connections": len(self._connections),
                "uptime_seconds": uptime,
                "recent_qps": recent_qps,
                "p50_ms": 1e3 * p50,
                "p99_ms": 1e3 * p99,
                "p999_ms": 1e3 * p999,
            },
            "latency": {klass: histogram.summary()
                        for klass, histogram
                        in sorted(self.class_latency.items())},
            "slow_traces": self.slow_traces.snapshot(),
            "index": self.manager.stats(),
            "batching": self.batcher.stats(),
            "cache": (self.cache.stats() if self.cache is not None
                      else None),
        }


# ----------------------------------------------------------------------
# threaded embedding
# ----------------------------------------------------------------------
class ThreadedService:
    """A :class:`ReachabilityService` on a background event loop.

    >>> from repro import DiGraph
    >>> from repro.service import IndexManager
    >>> manager = IndexManager.from_graph(
    ...     DiGraph.from_edges([("a", "b")]))
    >>> with start_in_thread(manager) as handle:
    ...     host, port = handle.address
    ...     # connect a ServiceClient to (host, port) here
    """

    def __init__(self, service: ReachabilityService) -> None:
        self._service = service
        self._thread = threading.Thread(target=self._main, daemon=True,
                                        name="repro-service")
        self._ready = threading.Event()
        self._loop: asyncio.AbstractEventLoop | None = None
        self._stop: asyncio.Event | None = None
        self._failure: BaseException | None = None

    @property
    def address(self) -> tuple[str, int]:
        """``(host, port)`` of the running service."""
        return self._service.address

    @property
    def service(self) -> ReachabilityService:
        return self._service

    def start(self) -> "ThreadedService":
        self._thread.start()
        self._ready.wait(timeout=30.0)
        if self._failure is not None:
            raise ServiceError(
                f"service failed to start: {self._failure}"
            ) from self._failure
        if not self._ready.is_set():
            raise ServiceError("service did not start within 30s")
        return self

    def stop(self) -> None:
        """Drain and stop the service, then join its thread."""
        loop, stop = self._loop, self._stop
        if loop is not None and stop is not None and loop.is_running():
            loop.call_soon_threadsafe(stop.set)
        self._thread.join(timeout=30.0)

    def _main(self) -> None:
        try:
            asyncio.run(self._amain())
        except BaseException as exc:  # noqa: BLE001 - surfaced via start()
            self._failure = exc
            self._ready.set()

    async def _amain(self) -> None:
        self._loop = asyncio.get_running_loop()
        self._stop = asyncio.Event()
        await self._service.start()
        self._ready.set()
        await self._stop.wait()
        await self._service.shutdown()

    def __enter__(self) -> "ThreadedService":
        return self

    def __exit__(self, *exc_info) -> None:
        self.stop()


def start_in_thread(manager: IndexManager, **kwargs) -> ThreadedService:
    """Start a service on a daemon thread; returns once it is bound."""
    return ThreadedService(ReachabilityService(manager, **kwargs)).start()
