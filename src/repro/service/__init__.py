"""repro.service — concurrent reachability serving on the chain index.

The missing layer between the fast batch engine and "heavy traffic":

* :class:`IndexManager` — the live index behind an atomic epoch-tagged
  snapshot; lock-free reads, incremental writes into a
  :class:`~repro.core.maintenance.DynamicChainIndex` shadow, background
  rebuild-and-swap with zero query downtime;
* :class:`MicroBatcher` — coalesces concurrently submitted queries
  into single :meth:`ChainIndex.is_reachable_many` kernel calls
  (bounded queue, ``max_batch`` / ``max_wait_us`` policy, explicit
  ``overloaded`` backpressure);
* :class:`ResultCache` — LRU of answers keyed ``(epoch, src, dst)``,
  so a snapshot swap invalidates by construction;
* :class:`ReachabilityService` — a stdlib-only asyncio TCP server
  speaking newline-delimited JSON (``query`` / ``query_batch`` /
  ``add_edge`` / ``stats`` / ``metrics`` / ``reload``) with
  per-request timeouts and graceful drain, plus
  :class:`ServiceClient`, its blocking client;
* :class:`WorkerPool` — multi-process serving: each epoch's packed
  index published once into a shared-memory segment
  (:mod:`repro.service.shm`), N worker processes attached read-only
  over memoryviews (zero copies), connections spread via SO_REUSEPORT,
  writes proxied to the single parent writer, stats/metrics aggregated
  pool-wide, crash respawn and zero-downtime epoch re-attach;
* serving-path telemetry — every query carries a
  :class:`~repro.service.tracing.Trace` (``"trace": true`` echoes the
  stage breakdown), per-class latency histograms and a
  :class:`~repro.service.tracing.SlowTraceRing` feed the ``stats``
  verb, and the ``metrics`` verb / ``--metrics-port`` HTTP listener
  expose Prometheus text (:mod:`repro.obs.promtext`).

Wire protocol, batching policy, swap semantics and failure modes are
documented in ``docs/SERVICE.md``; the ``service/*`` metric family is
in ``docs/OBSERVABILITY.md``.  From the shell: ``repro-graph serve``
and ``repro-graph query --remote HOST:PORT``.
"""

from repro.service.batching import BATCH_SIZE_BUCKETS, MicroBatcher
from repro.service.cache import ResultCache
from repro.service.capture import RequestCapture, load_journal
from repro.service.client import ServiceClient
from repro.service.errors import (
    OverloadedError,
    RemoteError,
    ServiceError,
    WritesUnsupportedError,
)
from repro.service.manager import IndexManager, Snapshot
from repro.service.pool import WorkerPool
from repro.service.server import (
    ReachabilityService,
    ThreadedService,
    start_in_thread,
)
from repro.service.shm import AttachedIndex, attach_index, dump_index
from repro.service.tracing import SlowTraceRing, Trace

__all__ = [
    "IndexManager",
    "Snapshot",
    "WorkerPool",
    "dump_index",
    "attach_index",
    "AttachedIndex",
    "MicroBatcher",
    "BATCH_SIZE_BUCKETS",
    "ResultCache",
    "RequestCapture",
    "load_journal",
    "ReachabilityService",
    "Trace",
    "SlowTraceRing",
    "ThreadedService",
    "start_in_thread",
    "ServiceClient",
    "ServiceError",
    "OverloadedError",
    "RemoteError",
    "WritesUnsupportedError",
]
