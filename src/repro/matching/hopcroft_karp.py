"""Maximum bipartite matching.

:func:`hopcroft_karp` is the O(e·√n) algorithm of Hopcroft and Karp
(1973) the paper uses inside every level of the chain decomposition.
:func:`kuhn_matching` is the classical single-augmenting-path algorithm
(O(n·e)); it exists for the matching ablation benchmark and as an
independent cross-check in tests.

Both use explicit stacks instead of recursion: augmenting paths can be
as long as the side size, far past Python's recursion limit.
"""

from __future__ import annotations

from collections import deque

from repro.matching.bipartite import BipartiteGraph, Matching
from repro.obs import OBS

__all__ = ["hopcroft_karp", "kuhn_matching"]

_INF = float("inf")


def hopcroft_karp(graph: BipartiteGraph,
                  seed_matching: Matching | None = None) -> Matching:
    """Maximum matching via Hopcroft–Karp.

    ``seed_matching`` (optional) is extended rather than starting from
    scratch — the chain decomposition exploits this when a level's
    bipartite graph only gained a few virtual-node edges.  The seed is
    copied, never mutated.
    """
    matching = Matching(graph.num_tops, graph.num_bottoms)
    if seed_matching is not None:
        for top, bottom in seed_matching.pairs():
            matching.match(top, bottom)

    bottom_of = matching.bottom_of
    top_of = matching.top_of
    adj = graph.adj
    num_tops = graph.num_tops
    dist = [0.0] * num_tops

    def bfs() -> bool:
        queue = deque()
        for top in range(num_tops):
            if bottom_of[top] == Matching.UNMATCHED:
                dist[top] = 0.0
                queue.append(top)
            else:
                dist[top] = _INF
        found_free_bottom = False
        while queue:
            top = queue.popleft()
            for bottom in adj[top]:
                next_top = top_of[bottom]
                if next_top == Matching.UNMATCHED:
                    found_free_bottom = True
                elif dist[next_top] == _INF:
                    dist[next_top] = dist[top] + 1
                    queue.append(next_top)
        return found_free_bottom

    def dfs(root: int) -> bool:
        # Frames: [top, next_edge_index, chosen_bottom].  dist strictly
        # increases down the stack, so no top repeats within one path.
        frames: list[list[int]] = [[root, 0, -1]]
        while frames:
            frame = frames[-1]
            top, edge_index = frame[0], frame[1]
            neighbours = adj[top]
            descended = False
            while edge_index < len(neighbours):
                bottom = neighbours[edge_index]
                edge_index += 1
                next_top = top_of[bottom]
                if next_top == Matching.UNMATCHED:
                    frame[1] = edge_index
                    frame[2] = bottom
                    for top_f, _, bottom_f in frames:
                        bottom_of[top_f] = bottom_f
                        top_of[bottom_f] = top_f
                    return True
                if dist[next_top] == dist[top] + 1:
                    frame[1] = edge_index
                    frame[2] = bottom
                    frames.append([next_top, 0, -1])
                    descended = True
                    break
            if descended:
                continue
            dist[top] = _INF
            frames.pop()
        return False

    rounds = 0
    augmentations = 0
    while bfs():
        rounds += 1
        for top in range(num_tops):
            if bottom_of[top] == Matching.UNMATCHED and dfs(top):
                augmentations += 1
    if OBS.enabled:
        OBS.count("matching/bfs_rounds", rounds)
        OBS.count("matching/augmentations", augmentations)
    return matching


def kuhn_matching(graph: BipartiteGraph) -> Matching:
    """Maximum matching via repeated DFS augmentation (Kuhn)."""
    matching = Matching(graph.num_tops, graph.num_bottoms)
    bottom_of = matching.bottom_of
    top_of = matching.top_of
    adj = graph.adj

    def try_augment(root: int, visited: list[bool]) -> bool:
        frames: list[list[int]] = [[root, 0, -1]]
        while frames:
            frame = frames[-1]
            top, edge_index = frame[0], frame[1]
            neighbours = adj[top]
            descended = False
            while edge_index < len(neighbours):
                bottom = neighbours[edge_index]
                edge_index += 1
                if visited[bottom]:
                    continue
                visited[bottom] = True
                next_top = top_of[bottom]
                if next_top == Matching.UNMATCHED:
                    frame[1] = edge_index
                    frame[2] = bottom
                    for top_f, _, bottom_f in frames:
                        bottom_of[top_f] = bottom_f
                        top_of[bottom_f] = top_f
                    return True
                frame[1] = edge_index
                frame[2] = bottom
                frames.append([next_top, 0, -1])
                descended = True
                break
            if descended:
                continue
            frames.pop()
        return False

    for top in range(graph.num_tops):
        visited = [False] * graph.num_bottoms
        try_augment(top, visited)
    return matching
