"""Bipartite graphs and maximum matching (Hopcroft–Karp)."""

from repro.matching.alternating import (
    AlternatingForest,
    alternating_bfs,
    bottoms_to_tops,
    flip_prefix,
)
from repro.matching.bipartite import BipartiteGraph, Matching
from repro.matching.hopcroft_karp import hopcroft_karp, kuhn_matching

__all__ = [
    "BipartiteGraph",
    "Matching",
    "hopcroft_karp",
    "kuhn_matching",
    "AlternatingForest",
    "alternating_bfs",
    "bottoms_to_tops",
    "flip_prefix",
]
