"""Alternating-path machinery for the virtual-node construction.

Definition 4 of the paper records, for a free bottom node ``v``, the
alternating paths that start at each *covered parent* ``w`` of ``v``
(path positions: odd = top side, even = bottom side; edges alternate
matched / unmatched).  Rerouting then works by *transferring* (flipping)
a prefix of such a path: ``w`` is freed to adopt ``v``, every
intermediate top re-matches to the previous bottom, and the matched
partner of the final odd node becomes free so a higher-level parent can
adopt it.

This module implements that with a multi-source BFS over the top side:
``top a`` steps to ``top c`` when ``c`` is adjacent (by an unmatched
edge) to ``a``'s matched bottom.  The multi-source form de-duplicates
shared path segments, which is exactly the redundancy-elimination of
Section IV.B (two entries sharing a path suffix are discovered once).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field

from repro.matching.bipartite import BipartiteGraph, Matching

__all__ = ["bottoms_to_tops", "AlternatingForest", "alternating_bfs",
           "flip_prefix"]


def bottoms_to_tops(graph: BipartiteGraph) -> list[list[int]]:
    """Reverse adjacency: for each bottom, the tops adjacent to it."""
    reverse: list[list[int]] = [[] for _ in range(graph.num_bottoms)]
    for top, bottoms in enumerate(graph.adj):
        for bottom in bottoms:
            reverse[bottom].append(top)
    return reverse


@dataclass
class AlternatingForest:
    """Alternating-BFS forest over the top side of a bipartite graph.

    ``previous_top[x]`` is the top preceding ``x`` on the alternating
    path from its root (-1 at a root); ``root_of[x]`` is the source the
    path starts at; tops absent from ``reached`` were not reachable.
    """

    previous_top: dict[int, int] = field(default_factory=dict)
    root_of: dict[int, int] = field(default_factory=dict)
    order: list[int] = field(default_factory=list)

    def reached(self, top: int) -> bool:
        """True iff the BFS reached ``top``."""
        return top in self.root_of

    def path_to(self, top: int) -> list[int]:
        """Tops on the alternating path root..``top`` (odd positions)."""
        path = [top]
        while self.previous_top[path[-1]] != -1:
            path.append(self.previous_top[path[-1]])
        path.reverse()
        return path


def alternating_bfs(matching: Matching, reverse_adj: list[list[int]],
                    sources: list[int]) -> AlternatingForest:
    """Multi-source alternating BFS from covered top ``sources``.

    Every reached top is *covered* (the walk continues through matched
    edges only), so flipping any root-to-top prefix is always legal.
    Uncovered sources are skipped: an alternating path in the paper's
    sense must begin with a matched edge.
    """
    forest = AlternatingForest()
    queue: deque[int] = deque()
    for source in sources:
        if matching.bottom_of[source] == Matching.UNMATCHED:
            continue
        if source in forest.root_of:
            continue
        forest.root_of[source] = source
        forest.previous_top[source] = -1
        forest.order.append(source)
        queue.append(source)
    while queue:
        top = queue.popleft()
        bottom = matching.bottom_of[top]
        if bottom == Matching.UNMATCHED:  # pragma: no cover - defensive
            continue
        for next_top in reverse_adj[bottom]:
            if next_top == top or next_top in forest.root_of:
                continue
            if matching.bottom_of[next_top] == Matching.UNMATCHED:
                # A free top adjacent to a covered bottom would mean an
                # augmenting path existed; with a maximum matching this
                # cannot happen, but a *mutated* matching (mid
                # resolution) keeps maximality, so skip defensively.
                continue
            forest.root_of[next_top] = forest.root_of[top]
            forest.previous_top[next_top] = top
            forest.order.append(next_top)
            queue.append(next_top)
    return forest


def flip_prefix(matching: Matching, forest: AlternatingForest,
                final_top: int) -> tuple[int, int]:
    """Transfer the alternating path ending at ``final_top``.

    Implements the paper's "transfer the edges on the alternating path
    starting at w_i and ending at the (n_ij + 1)-th node": the root top
    becomes unmatched (ready to adopt the stranded chain top), each
    intermediate top re-matches to its predecessor's old bottom, and the
    old matched bottom of ``final_top`` becomes free.

    Returns ``(root_top, freed_bottom)``.
    """
    tops = forest.path_to(final_top)
    old_bottoms = [matching.bottom_of[t] for t in tops]
    if Matching.UNMATCHED in old_bottoms:
        raise ValueError("alternating path crosses an unmatched top")
    root = tops[0]
    matching.unmatch_top(root)
    for i in range(1, len(tops)):
        matching.match(tops[i], old_bottoms[i - 1])
    freed_bottom = old_bottoms[-1]
    return root, freed_bottom
