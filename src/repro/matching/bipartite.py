"""A minimal bipartite-graph model for the matching algorithms.

The two sides are called *tops* and *bottoms* to match the way the
chain-decomposition algorithm uses them: tops are the nodes of level
``V_{i+1}``, bottoms the nodes of ``V_i'`` (real plus virtual), and every
edge runs top → bottom (Definition 2's ``G(T, S; E)``).

Both sides use dense local indexes 0..size-1; callers keep their own
mapping to graph node ids.
"""

from __future__ import annotations

from collections.abc import Iterable

__all__ = ["BipartiteGraph", "Matching"]


class BipartiteGraph:
    """Adjacency of a bipartite graph with ``num_tops`` × ``num_bottoms``."""

    __slots__ = ("num_tops", "num_bottoms", "adj")

    def __init__(self, num_tops: int, num_bottoms: int) -> None:
        if num_tops < 0 or num_bottoms < 0:
            raise ValueError("side sizes must be non-negative")
        self.num_tops = num_tops
        self.num_bottoms = num_bottoms
        self.adj: list[list[int]] = [[] for _ in range(num_tops)]

    @classmethod
    def from_edges(cls, num_tops: int, num_bottoms: int,
                   edges: Iterable[tuple[int, int]]) -> "BipartiteGraph":
        """Build a bipartite graph from (top, bottom) pairs."""
        graph = cls(num_tops, num_bottoms)
        for top, bottom in edges:
            graph.add_edge(top, bottom)
        return graph

    def add_edge(self, top: int, bottom: int) -> None:
        """Add the edge ``top -> bottom`` (indexes are checked)."""
        if not 0 <= top < self.num_tops:
            raise ValueError(f"top index {top} out of range")
        if not 0 <= bottom < self.num_bottoms:
            raise ValueError(f"bottom index {bottom} out of range")
        self.adj[top].append(bottom)

    def add_bottom(self) -> int:
        """Grow the bottom side by one; returns the new index."""
        self.num_bottoms += 1
        return self.num_bottoms - 1

    @property
    def num_edges(self) -> int:
        """Total edge count."""
        return sum(len(neighbours) for neighbours in self.adj)


class Matching:
    """A matching of a :class:`BipartiteGraph` as two mirror arrays.

    ``bottom_of[t]`` is the bottom matched to top ``t`` (or -1);
    ``top_of[b]`` is the top matched to bottom ``b`` (or -1).
    """

    __slots__ = ("bottom_of", "top_of")

    UNMATCHED = -1

    def __init__(self, num_tops: int, num_bottoms: int) -> None:
        self.bottom_of = [self.UNMATCHED] * num_tops
        self.top_of = [self.UNMATCHED] * num_bottoms

    def match(self, top: int, bottom: int) -> None:
        """Pair ``top`` with ``bottom``, unpairing any previous partners."""
        old_bottom = self.bottom_of[top]
        if old_bottom != self.UNMATCHED:
            self.top_of[old_bottom] = self.UNMATCHED
        old_top = self.top_of[bottom]
        if old_top != self.UNMATCHED:
            self.bottom_of[old_top] = self.UNMATCHED
        self.bottom_of[top] = bottom
        self.top_of[bottom] = top

    def unmatch_top(self, top: int) -> None:
        """Free ``top`` and its partner (no-op when already free)."""
        bottom = self.bottom_of[top]
        if bottom != self.UNMATCHED:
            self.bottom_of[top] = self.UNMATCHED
            self.top_of[bottom] = self.UNMATCHED

    def is_matched_top(self, top: int) -> bool:
        """True iff ``top`` is covered."""
        return self.bottom_of[top] != self.UNMATCHED

    def is_matched_bottom(self, bottom: int) -> bool:
        """True iff ``bottom`` is covered."""
        return self.top_of[bottom] != self.UNMATCHED

    def size(self) -> int:
        """Number of matched pairs."""
        return sum(1 for b in self.bottom_of if b != self.UNMATCHED)

    def free_tops(self) -> list[int]:
        """Uncovered tops — ``free_M(T)`` in the paper's notation."""
        return [t for t, b in enumerate(self.bottom_of)
                if b == self.UNMATCHED]

    def free_bottoms(self) -> list[int]:
        """Uncovered bottoms — ``free_M(S)`` in the paper's notation."""
        return [b for b, t in enumerate(self.top_of)
                if t == self.UNMATCHED]

    def pairs(self) -> list[tuple[int, int]]:
        """All matched (top, bottom) pairs."""
        return [(t, b) for t, b in enumerate(self.bottom_of)
                if b != self.UNMATCHED]

    def check(self, graph: BipartiteGraph) -> None:
        """Verify this is a matching of ``graph`` (tests/debugging)."""
        for top, bottom in self.pairs():
            if bottom not in graph.adj[top]:
                raise ValueError(
                    f"matched pair ({top}, {bottom}) is not an edge")
            if self.top_of[bottom] != top:
                raise ValueError("matching arrays are out of sync")
        for bottom, top in enumerate(self.top_of):
            if top != self.UNMATCHED and self.bottom_of[top] != bottom:
                raise ValueError("matching arrays are out of sync")
