"""One shared writer for the ``BENCH_*.json`` report files.

Several smoke benchmarks share one JSON document (the observer smoke
merges an ``observers`` section into ``BENCH_query.json``; the SLO
smoke owns ``BENCH_slo.json`` but CI re-runs may interleave with other
writers).  Before this helper each writer hand-rolled its own
preserve-the-other-sections logic — or worse, clobbered the file —
so a new top-level section silently vanished on the next re-run.

:func:`merge_bench_json` is the single policy: read the existing
document (tolerating a missing or corrupt file), overwrite exactly the
top-level keys this run produced, keep every other section, and write
back deterministically (sorted keys, trailing newline).
"""

from __future__ import annotations

import json
from pathlib import Path

__all__ = ["merge_bench_json"]


def merge_bench_json(path, fresh: dict) -> dict:
    """Merge ``fresh``'s top-level sections into the JSON file at
    ``path``; returns the merged document actually written."""
    path = Path(path)
    previous: dict = {}
    if path.exists():
        try:
            loaded = json.loads(path.read_text())
        except (json.JSONDecodeError, OSError):
            loaded = None
        if isinstance(loaded, dict):
            previous = loaded
    document = {**previous, **fresh}
    path.write_text(json.dumps(document, indent=2, sort_keys=True)
                    + "\n")
    return document
