"""Million-node-scale smoke: concat builds, compressed labels, ingest.

One graph from the scale family (:func:`repro.graph.generators.
scale_chain_dag` — a few parallel chains cross-linked by short forward
jumps, so the chain cover stays narrow while the strata count grows
with ``n``), two builds over it:

* ``chain-concat`` — the Kritikakis–Tollis concatenation cover, one
  near-linear pass over the condensation;
* ``chain-stratified`` — the paper's cover, one bipartite matching per
  stratum (the scale family has ``n / width`` strata, which is exactly
  what this benchmark stresses).

Build times are the **minimum of several** ``time.process_time``
samples — CPU time is immune to sleep/scheduling noise and the minimum
estimates the true cost floor, which is what the CI gate in
``benchmarks/bench_scale_smoke.py`` compares (concat must build at
least 2x faster).  The same index is then re-priced under both label
codecs (the second gate: varint labels at most 0.6x the flat CSR
bytes), persisted as a format-v4 compressed file, reloaded, and probed
with a query burst whose answers are cross-checked against BFS — so
the benchmark doubles as an end-to-end build/persist/serve
equivalence check.
"""

from __future__ import annotations

import random
import tempfile
import time
from pathlib import Path

from repro.baselines.traversal import TraversalIndex
from repro.core.index import ChainIndex
from repro.core.persistence import (
    describe_index_file,
    load_index,
    save_index,
)
from repro.graph.generators import scale_chain_dag

__all__ = ["scale_engine_smoke", "scale_large_trajectory",
           "scale_workload"]

#: Timing samples per engine; the minimum is the reported build time.
BUILD_SAMPLES = 3


def scale_workload(scale: float = 1.0):
    """The benchmark graph: ~200k nodes / ~240k edges at scale 1.0."""
    nodes = max(2_000, int(200_000 * scale))
    width = 3
    extra = nodes // 5
    graph = scale_chain_dag(nodes, nodes - width + extra, width=width,
                            cross_span=300 * width, seed=0)
    label = (f"scale_chain_dag({graph.num_nodes} nodes, "
             f"{graph.num_edges} arcs, width {width})")
    return graph, label


def _min_build_seconds(graph, method: str) -> tuple[float, ChainIndex]:
    """Min-of-N CPU-time build; returns (seconds, last index)."""
    best = None
    index = None
    for _ in range(BUILD_SAMPLES):
        started = time.process_time()
        index = ChainIndex.build(graph, method=method)
        elapsed = time.process_time() - started
        best = elapsed if best is None else min(best, elapsed)
    return best, index


def _query_probe(index: ChainIndex, graph, queries: int) -> dict:
    """Time a query burst; cross-check a slice of it against BFS."""
    rng = random.Random(97)
    n = graph.num_nodes
    pairs = [(rng.randrange(n), rng.randrange(n))
             for _ in range(queries)]
    started = time.perf_counter()
    answers = index.is_reachable_many(pairs)
    elapsed = time.perf_counter() - started
    bfs = TraversalIndex.build(graph)
    mismatches = sum(
        1 for (source, target), answer in list(zip(pairs, answers))[:200]
        if answer != bfs.is_reachable(source, target))
    return {
        "queries": queries,
        "qps": queries / elapsed if elapsed else float("inf"),
        "positive": sum(answers),
        "bfs_mismatches": mismatches,
    }


def scale_engine_smoke(scale: float = 1.0) -> dict:
    """Build, compress, persist, reload and serve one scale graph."""
    graph, label = scale_workload(scale)
    queries = max(200, int(2_000 * scale))

    concat_seconds, index = _min_build_seconds(graph, "concat")
    stratified_seconds, stratified = _min_build_seconds(graph,
                                                        "stratified")

    flat_bytes = index.with_codec("packed").label_bytes()
    compressed = index.with_codec("compressed")
    compressed_bytes = compressed.label_bytes()

    with tempfile.TemporaryDirectory() as tmp:
        path = Path(tmp) / "scale.idx"
        save_index(compressed, path)
        described = describe_index_file(path)
        reloaded = load_index(path)
        probe = _query_probe(reloaded, graph, queries)

    return {
        "workload": label,
        "nodes": graph.num_nodes,
        "edges": graph.num_edges,
        "build_samples": BUILD_SAMPLES,
        "concat_build_seconds": concat_seconds,
        "stratified_build_seconds": stratified_seconds,
        "build_speedup": stratified_seconds / concat_seconds,
        "concat_chains": index.num_chains,
        "stratified_chains": stratified.num_chains,
        "label_entries": index.label_entries(),
        "flat_label_bytes": flat_bytes,
        "compressed_label_bytes": compressed_bytes,
        "compression_ratio": compressed_bytes / flat_bytes,
        "file_bytes": described["file_bytes"],
        "file_codec": described["codec"],
        "file_version": described["version"],
        **{f"query_{key}": value for key, value in probe.items()},
    }


def scale_large_trajectory(nodes: int = 1_000_000,
                           edges: int = 10_000_000,
                           queries: int = 20_000,
                           bfs_checks: int = 20) -> dict:
    """The million-node run: build, persist, attach and serve 1M/10M.

    A single wall-clock pass (no min-of-N — at this size one sample is
    the honest number and stratified is not raced): generate the scale
    family at ``nodes``/``edges``, build ``chain-concat`` once, price
    both codecs, persist the compressed v4 file, reload it, publish it
    into a shared-memory segment, and drive a query burst through the
    *attached* (zero-copy) index, cross-checking a slice against BFS.
    Reported once per release into ``BENCH_scale.json`` under
    ``scale_large`` — too heavy for the per-commit CI gate, which runs
    :func:`scale_engine_smoke` instead.
    """
    import resource

    from repro.service import attach_index, dump_index

    width = 3
    started = time.perf_counter()
    graph = scale_chain_dag(nodes, edges, width=width,
                            cross_span=300 * width, seed=0)
    generate_seconds = time.perf_counter() - started

    started = time.perf_counter()
    index = ChainIndex.build(graph, method="concat")
    build_seconds = time.perf_counter() - started

    flat_bytes = index.with_codec("packed").label_bytes()
    compressed = index.with_codec("compressed")
    compressed_bytes = compressed.label_bytes()

    with tempfile.TemporaryDirectory() as tmp:
        path = Path(tmp) / "scale_large.idx"
        started = time.perf_counter()
        save_index(compressed, path)
        persist_seconds = time.perf_counter() - started
        described = describe_index_file(path)
        started = time.perf_counter()
        reloaded = load_index(path)
        load_seconds = time.perf_counter() - started

    shm = dump_index(reloaded)
    try:
        attached = attach_index(shm.name)
        rng = random.Random(97)
        pairs = [(rng.randrange(nodes), rng.randrange(nodes))
                 for _ in range(queries)]
        started = time.perf_counter()
        answers = attached.index.is_reachable_many(pairs)
        query_seconds = time.perf_counter() - started
        attached.close()
    finally:
        shm.close()
        shm.unlink()

    bfs = TraversalIndex.build(graph)
    mismatches = sum(
        1 for (source, target), answer
        in list(zip(pairs, answers))[:bfs_checks]
        if answer != bfs.is_reachable(source, target))

    return {
        "workload": (f"scale_chain_dag({graph.num_nodes} nodes, "
                     f"{graph.num_edges} arcs, width {width})"),
        "nodes": graph.num_nodes,
        "edges": graph.num_edges,
        "generate_seconds": generate_seconds,
        "concat_build_seconds": build_seconds,
        "concat_chains": index.num_chains,
        "label_entries": index.label_entries(),
        "flat_label_bytes": flat_bytes,
        "compressed_label_bytes": compressed_bytes,
        "compression_ratio": compressed_bytes / flat_bytes,
        "persist_seconds": persist_seconds,
        "file_bytes": described["file_bytes"],
        "file_codec": described["codec"],
        "file_version": described["version"],
        "load_seconds": load_seconds,
        "shm_query_queries": queries,
        "shm_query_qps": queries / query_seconds,
        "shm_query_positive": sum(answers),
        "bfs_checks": bfs_checks,
        "bfs_mismatches": mismatches,
        "peak_rss_bytes": resource.getrusage(
            resource.RUSAGE_SELF).ru_maxrss * 1024,
    }
