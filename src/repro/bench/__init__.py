"""Benchmark harness: workloads, runners and paper-style reporting."""

from repro.bench.harness import (
    build_all,
    build_index,
    random_queries,
    run_query_series,
    time_query_batch,
)
from repro.bench.metrics import BuildResult, QuerySeries, Timer
from repro.bench.reporting import (
    render_build_table,
    render_series,
    render_table,
    write_report,
)
from repro.bench.workloads import (
    GROUP1_METHODS,
    GROUP23_METHODS,
    METHOD_BUILDERS,
    QUERY_METHODS,
    Workload,
    group1_graphs,
    group2_dsg_graph,
    group2_dsrg_graph,
    group3_dense_graph,
    query_counts,
)

__all__ = [
    "build_index",
    "build_all",
    "random_queries",
    "time_query_batch",
    "run_query_series",
    "Timer",
    "BuildResult",
    "QuerySeries",
    "render_table",
    "render_build_table",
    "render_series",
    "write_report",
    "METHOD_BUILDERS",
    "GROUP1_METHODS",
    "GROUP23_METHODS",
    "QUERY_METHODS",
    "Workload",
    "group1_graphs",
    "group2_dsg_graph",
    "group2_dsrg_graph",
    "group3_dense_graph",
    "query_counts",
]
