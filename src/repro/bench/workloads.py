"""Experiment specifications for every table and figure in Section V.

Each workload reproduces one of the paper's graph families at a scale a
pure-Python run completes in seconds-to-minutes; the ``scale`` factor
multiplies node counts back toward the paper's sizes when more patience
is available.  EXPERIMENTS.md records the mapping from the paper's
parameters to the defaults here.

The competitor table is derived from the engine registry
(:func:`repro.engine.paper_labels`): every registered engine that
carries a paper label — the paper's six evaluated methods plus the
no-index traversal reference — appears under that label, so adding an
engine to the registry adds it to the benchmark surface.  "ours" is the
chain-cover index built with the paper's stratified algorithm.

The **workload zoo** (:data:`ZOO_FAMILIES`) extends the paper's static
tables into *serving* workloads: each :class:`WorkloadSpec` names a
graph family (citation / preferential attachment, layered, deep-chain,
dense, sparse), a Zipf hot-key skew for the query mix, and a
read/write/batch ratio.  :func:`build_zoo_graph` instantiates the
graph, :func:`zipf_nodes` draws the skewed endpoints, and
:mod:`repro.bench.replay` turns a spec into a deterministic request
schedule driven against the live TCP server.  Spec reference:
``docs/WORKLOADS.md``.
"""

from __future__ import annotations

import random
from bisect import bisect_left
from dataclasses import dataclass
from itertools import accumulate

import repro.engine as engine
from repro.graph.digraph import DiGraph
from repro.graph.generators import (
    chain_graph,
    citation_dag,
    dense_dag,
    layered_random_dag,
    semi_random_dag,
    sparse_random_dag,
    systematic_dag,
)

__all__ = [
    "METHOD_BUILDERS",
    "GROUP1_METHODS",
    "GROUP23_METHODS",
    "QUERY_METHODS",
    "Workload",
    "group1_graphs",
    "group2_dsg_graph",
    "group2_dsrg_graph",
    "group3_dense_graph",
    "smoke_workload",
    "query_counts",
    "WorkloadSpec",
    "ZOO_FAMILIES",
    "build_zoo_graph",
    "zipf_nodes",
]


#: the paper's table column order.
_PAPER_ORDER = ("ours", "DD", "TE", "Dual-II", "2-hop", "MM",
                "traversal")

#: method name (as in the paper's tables) -> engine builder.  Derived
#: from the registry, in the paper's column order.
METHOD_BUILDERS = {label: engine.paper_labels()[label].build
                   for label in _PAPER_ORDER}

#: Table 1 compares all six indexing methods.
GROUP1_METHODS = ["ours", "DD", "TE", "Dual-II", "2-hop", "MM"]
#: Tables 3–5 drop 2-hop ("it took too long to generate labels").
GROUP23_METHODS = ["ours", "DD", "TE", "Dual-II", "MM"]
#: Figures 10–13 time queries for the five labeling methods + MM.
QUERY_METHODS = ["MM", "ours", "DD", "TE", "Dual-II"]


@dataclass(frozen=True)
class Workload:
    """A named graph instance inside an experiment."""

    label: str
    graph: DiGraph


def group1_graphs(scale: float = 1.0, seed: int = 7) -> list[Workload]:
    """Group I: sparse random digraphs, SCCs collapsed.

    Paper: 15,000 nodes, 16,000–20,000 edges in steps of 1,000.
    Default scale: 1,500 nodes, 1,600–2,000 edges in steps of 100.
    """
    nodes = max(10, int(1500 * scale))
    workloads = []
    for step in range(5):
        edges = int(nodes * (16 + step) / 15)
        graph = sparse_random_dag(nodes, edges, seed=seed + step)
        workloads.append(Workload(f"sparse n={nodes} e={edges}", graph))
    return workloads


def group2_dsg_graph(scale: float = 1.0, seed: int = 11) -> Workload:
    """Group II(a): the systematically generated DAG.

    Paper: 640 roots, 8 levels, ~4 children / ~3 parents, 31,525 nodes.
    Default scale: 64 roots, 8 levels (~1,900 nodes).
    """
    roots = max(4, int(64 * scale))
    graph = systematic_dag(num_roots=roots, num_levels=8,
                           children_per_node=4, parents_per_node=3,
                           seed=seed)
    return Workload(f"DSG roots={roots} levels=8", graph)


def group2_dsrg_graph(scale: float = 1.0, seed: int = 13) -> Workload:
    """Group II(b): random tree + acyclic extra edges.

    Paper: ≥20,000 tree nodes + up to 10,000 extra edges.
    Default scale: 2,000 + 1,000.
    """
    nodes = max(10, int(2000 * scale))
    extra = nodes // 2
    graph = semi_random_dag(nodes, extra, max_children=6, seed=seed)
    return Workload(f"DSRG n={nodes} extra={extra}", graph)


def group3_dense_graph(scale: float = 1.0, seed: int = 17) -> Workload:
    """Group III: the 0.25-density DAG.

    Paper: 3,000 nodes, 2,230,196 edges (e/n² ≈ 0.247).  Default
    scale: 150 nodes (~5,600 edges) — the same density regime, sized so
    Dual-II's t³-flavoured link machinery still terminates.
    """
    nodes = max(10, int(150 * scale))
    graph = dense_dag(nodes, density=0.25, seed=seed)
    return Workload(f"dense n={nodes} density=0.25", graph)


def smoke_workload(scale: float = 1.0) -> Workload:
    """The perf-smoke instance: Fig. 10's middle sparse graph.

    One graph, seconds to build and query — the workload behind
    ``benchmarks/bench_query_smoke.py`` and the ``query-smoke``
    experiment, kept identical to the Fig. 10 query workload so the
    smoke numbers are comparable with the figure runs.
    """
    return group1_graphs(scale)[2]


def query_counts(scale: float = 1.0) -> list[int]:
    """Figures 10–13 x-axis: paper 10k–100k queries; default 1k–10k."""
    unit = max(10, int(1000 * scale))
    return [unit * i for i in range(1, 11)]


# ----------------------------------------------------------------------
# the workload zoo: serving-shaped traffic over the paper's families
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class WorkloadSpec:
    """One zoo family: a graph shape plus a query-mix shape.

    ``zipf_s`` is the exponent of the Zipf law the query endpoints are
    drawn from (0.0 = uniform; ≥ 1.0 concentrates most traffic on a
    few hot nodes).  ``read_fraction`` of the schedule is queries;
    within the reads, ``batch_fraction`` are ``query_batch`` requests
    of ``batch_size`` pairs.  The remainder are writes (``add_edge``
    with ``create``, so they always succeed).
    """

    name: str
    family: str            #: "citation" | "layered" | "deep-chain" | ...
    nodes: int             #: node budget at scale 1.0
    read_fraction: float = 0.95
    zipf_s: float = 1.1
    batch_fraction: float = 0.05
    batch_size: int = 16
    seed: int = 0


#: The zoo.  Families map to the generators used by the paper's
#: experiments plus the shapes the static tables never exercise
#: (preferential attachment, long dependency chains).
ZOO_FAMILIES: dict[str, WorkloadSpec] = {
    "sparse": WorkloadSpec("sparse", "sparse", nodes=1200, seed=7),
    "citation": WorkloadSpec("citation", "citation", nodes=900,
                             zipf_s=1.2, seed=19),
    "layered": WorkloadSpec("layered", "layered", nodes=800,
                            zipf_s=0.8, seed=23),
    "deep-chain": WorkloadSpec("deep-chain", "deep-chain", nodes=600,
                               zipf_s=1.0, read_fraction=0.9, seed=29),
    "dense": WorkloadSpec("dense", "dense", nodes=140,
                          zipf_s=0.5, seed=31),
}


def build_zoo_graph(spec: WorkloadSpec, scale: float = 1.0) -> DiGraph:
    """Instantiate the family's graph at ``scale`` (deterministic)."""
    nodes = max(10, int(spec.nodes * scale))
    if spec.family == "sparse":
        return sparse_random_dag(nodes, int(nodes * 1.2), seed=spec.seed)
    if spec.family == "citation":
        return citation_dag(nodes, citations_per_node=3, seed=spec.seed)
    if spec.family == "layered":
        layers = max(3, nodes // 100)
        width = max(2, nodes // layers)
        return layered_random_dag([width] * layers, 0.08,
                                  seed=spec.seed)
    if spec.family == "deep-chain":
        return chain_graph(nodes)
    if spec.family == "dense":
        return dense_dag(nodes, density=0.25, seed=spec.seed)
    raise ValueError(f"unknown zoo family {spec.family!r}")


def zipf_nodes(graph: DiGraph, count: int, s: float,
               rng: random.Random) -> list:
    """Draw ``count`` node ids Zipf(s)-skewed over the node order.

    Rank r (0-based) gets weight ``(r + 1) ** -s``; ``s = 0`` is
    uniform.  Deterministic given the caller's seeded ``rng``.
    """
    nodes = list(graph.nodes())
    if not nodes:
        raise ValueError("graph has no nodes")
    if s <= 0.0:
        return [nodes[rng.randrange(len(nodes))] for _ in range(count)]
    cumulative = list(accumulate((rank + 1) ** -s
                                 for rank in range(len(nodes))))
    total = cumulative[-1]
    return [nodes[bisect_left(cumulative, rng.random() * total)]
            for _ in range(count)]
