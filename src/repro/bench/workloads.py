"""Experiment specifications for every table and figure in Section V.

Each workload reproduces one of the paper's graph families at a scale a
pure-Python run completes in seconds-to-minutes; the ``scale`` factor
multiplies node counts back toward the paper's sizes when more patience
is available.  EXPERIMENTS.md records the mapping from the paper's
parameters to the defaults here.

The competitor table is derived from the engine registry
(:func:`repro.engine.paper_labels`): every registered engine that
carries a paper label — the paper's six evaluated methods plus the
no-index traversal reference — appears under that label, so adding an
engine to the registry adds it to the benchmark surface.  "ours" is the
chain-cover index built with the paper's stratified algorithm.
"""

from __future__ import annotations

from dataclasses import dataclass

import repro.engine as engine
from repro.graph.digraph import DiGraph
from repro.graph.generators import (
    dense_dag,
    semi_random_dag,
    sparse_random_dag,
    systematic_dag,
)

__all__ = [
    "METHOD_BUILDERS",
    "GROUP1_METHODS",
    "GROUP23_METHODS",
    "QUERY_METHODS",
    "Workload",
    "group1_graphs",
    "group2_dsg_graph",
    "group2_dsrg_graph",
    "group3_dense_graph",
    "smoke_workload",
    "query_counts",
]


#: the paper's table column order.
_PAPER_ORDER = ("ours", "DD", "TE", "Dual-II", "2-hop", "MM",
                "traversal")

#: method name (as in the paper's tables) -> engine builder.  Derived
#: from the registry, in the paper's column order.
METHOD_BUILDERS = {label: engine.paper_labels()[label].build
                   for label in _PAPER_ORDER}

#: Table 1 compares all six indexing methods.
GROUP1_METHODS = ["ours", "DD", "TE", "Dual-II", "2-hop", "MM"]
#: Tables 3–5 drop 2-hop ("it took too long to generate labels").
GROUP23_METHODS = ["ours", "DD", "TE", "Dual-II", "MM"]
#: Figures 10–13 time queries for the five labeling methods + MM.
QUERY_METHODS = ["MM", "ours", "DD", "TE", "Dual-II"]


@dataclass(frozen=True)
class Workload:
    """A named graph instance inside an experiment."""

    label: str
    graph: DiGraph


def group1_graphs(scale: float = 1.0, seed: int = 7) -> list[Workload]:
    """Group I: sparse random digraphs, SCCs collapsed.

    Paper: 15,000 nodes, 16,000–20,000 edges in steps of 1,000.
    Default scale: 1,500 nodes, 1,600–2,000 edges in steps of 100.
    """
    nodes = max(10, int(1500 * scale))
    workloads = []
    for step in range(5):
        edges = int(nodes * (16 + step) / 15)
        graph = sparse_random_dag(nodes, edges, seed=seed + step)
        workloads.append(Workload(f"sparse n={nodes} e={edges}", graph))
    return workloads


def group2_dsg_graph(scale: float = 1.0, seed: int = 11) -> Workload:
    """Group II(a): the systematically generated DAG.

    Paper: 640 roots, 8 levels, ~4 children / ~3 parents, 31,525 nodes.
    Default scale: 64 roots, 8 levels (~1,900 nodes).
    """
    roots = max(4, int(64 * scale))
    graph = systematic_dag(num_roots=roots, num_levels=8,
                           children_per_node=4, parents_per_node=3,
                           seed=seed)
    return Workload(f"DSG roots={roots} levels=8", graph)


def group2_dsrg_graph(scale: float = 1.0, seed: int = 13) -> Workload:
    """Group II(b): random tree + acyclic extra edges.

    Paper: ≥20,000 tree nodes + up to 10,000 extra edges.
    Default scale: 2,000 + 1,000.
    """
    nodes = max(10, int(2000 * scale))
    extra = nodes // 2
    graph = semi_random_dag(nodes, extra, max_children=6, seed=seed)
    return Workload(f"DSRG n={nodes} extra={extra}", graph)


def group3_dense_graph(scale: float = 1.0, seed: int = 17) -> Workload:
    """Group III: the 0.25-density DAG.

    Paper: 3,000 nodes, 2,230,196 edges (e/n² ≈ 0.247).  Default
    scale: 150 nodes (~5,600 edges) — the same density regime, sized so
    Dual-II's t³-flavoured link machinery still terminates.
    """
    nodes = max(10, int(150 * scale))
    graph = dense_dag(nodes, density=0.25, seed=seed)
    return Workload(f"dense n={nodes} density=0.25", graph)


def smoke_workload(scale: float = 1.0) -> Workload:
    """The perf-smoke instance: Fig. 10's middle sparse graph.

    One graph, seconds to build and query — the workload behind
    ``benchmarks/bench_query_smoke.py`` and the ``query-smoke``
    experiment, kept identical to the Fig. 10 query workload so the
    smoke numbers are comparable with the figure runs.
    """
    return group1_graphs(scale)[2]


def query_counts(scale: float = 1.0) -> list[int]:
    """Figures 10–13 x-axis: paper 10k–100k queries; default 1k–10k."""
    unit = max(10, int(1000 * scale))
    return [unit * i for i in range(1, 11)]
