"""Timing and size accounting for the benchmark harness."""

from __future__ import annotations

import time
from dataclasses import dataclass, field

__all__ = ["Timer", "BuildResult", "QuerySeries"]


class Timer:
    """Context-manager wall clock: ``with Timer() as t: ...; t.seconds``."""

    def __init__(self) -> None:
        self.seconds = 0.0
        self._start = 0.0

    def __enter__(self) -> "Timer":
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc_info) -> None:
        self.seconds = time.perf_counter() - self._start


@dataclass
class BuildResult:
    """One method's index over one graph."""

    method: str
    index: object
    build_seconds: float
    size_words: int

    def row(self) -> tuple:
        """(method, size, time) tuple for table rendering."""
        return (self.method, self.size_words,
                round(self.build_seconds, 4))


@dataclass
class QuerySeries:
    """Accumulated query times at growing batch sizes (Figs. 10–13)."""

    method: str
    counts: list[int]
    seconds: list[float] = field(default_factory=list)
