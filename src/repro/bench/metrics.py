"""Result records for the benchmark harness.

Timing moved to :mod:`repro.obs`: the harness opens ``bench/*`` spans
on the process-wide registry (so a run with observability enabled sees
benchmark timings and pipeline phase timings in one export), and
``Timer`` is now an alias of :class:`repro.obs.Stopwatch` kept for
callers of the old private clock.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.obs import Stopwatch, summarize


class Timer(Stopwatch):
    """Context-manager wall clock: ``with Timer() as t: ...; t.seconds``.

    Back-compat alias of :class:`repro.obs.Stopwatch`; new code should
    time through ``OBS.span(...)`` so the measurement also lands in
    the metrics registry when it is enabled.
    """

    __slots__ = ()


def latency_summary(seconds: list[float]) -> dict:
    """Exact nearest-rank latency summary in milliseconds.

    Thin wrapper over :func:`repro.obs.summarize` (the shared,
    nearest-rank-correct percentile helper) that converts every value
    but ``count`` from seconds to milliseconds — the shape the bench
    reports record for client-observed latencies.
    """
    stats = summarize(seconds)
    return {key: (value if key == "count" else 1e3 * value)
            for key, value in stats.items()}


__all__ = ["Timer", "BuildResult", "QuerySeries", "latency_summary"]


@dataclass
class BuildResult:
    """One method's index over one graph."""

    method: str
    index: object
    build_seconds: float
    size_words: int

    def row(self) -> tuple:
        """(method, size, time) tuple for table rendering."""
        return (self.method, self.size_words,
                round(self.build_seconds, 4))


@dataclass
class QuerySeries:
    """Accumulated query times at growing batch sizes (Figs. 10–13)."""

    method: str
    counts: list[int]
    seconds: list[float] = field(default_factory=list)
