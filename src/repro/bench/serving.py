"""Serving-layer load generator: the numbers behind ``serve-smoke``.

Stands up a real :class:`~repro.service.ReachabilityService` on a
loopback socket over the Fig. 10 middle sparse workload and measures
three client strategies end to end (TCP framing included):

* **sequential** — one connection, one ``query`` request at a time:
  the no-batching baseline, every query pays a full round trip;
* **concurrent** — the same single-query protocol from many
  concurrent connections: the server's micro-batcher coalesces them
  into shared kernel calls (this is the number the ≥ 1.5× acceptance
  gate compares against sequential);
* **bulk** — one ``query_batch`` request carrying the whole stream:
  the upper bound where framing is amortised entirely.

The concurrent phase runs the stream twice so the second pass
exercises the epoch-keyed result cache, and the run finishes with a
few ``add_edge`` writes plus a ``reload`` to count a live
rebuild-and-swap.  Everything runs in one process and one event loop —
no free ports, threads or subprocesses to leak.

:func:`pool_scaling_smoke` is the multi-process counterpart: the same
workload served through a :class:`~repro.service.WorkerPool` at each
requested worker count, driven by **separate client processes**
(blocking ``query_batch`` chunks) so the load generator is never the
single-process bottleneck it would be in-loop.  The ``workers=0``
baseline is measured under the *same* harness, and the final pool run
takes a write burst plus ``reload`` mid-flight to record the
zero-downtime swap (queries answered, failures — expected zero —
and the epoch transition).  Results land in the ``workers`` section of
``BENCH_serve.json``; ``cpus`` is recorded because scaling numbers
from a one-core box are not speedups.
"""

from __future__ import annotations

import asyncio
import json
import multiprocessing
import os
import time

__all__ = ["serve_engine_smoke", "pool_scaling_smoke"]

CONNECTIONS = 16
POOL_CLIENT_PROCESSES = 2
POOL_BATCH = 32


async def _request(reader, writer, payload: dict) -> dict:
    writer.write(json.dumps(payload, separators=(",", ":"))
                 .encode("utf-8") + b"\n")
    await writer.drain()
    response = json.loads(await reader.readline())
    if not response.get("ok"):
        raise RuntimeError(f"server error: {response}")
    return response


async def _sequential_phase(host, port,
                            queries) -> tuple[float, list[float]]:
    """Total seconds plus the client-observed per-request latencies."""
    reader, writer = await asyncio.open_connection(host, port)
    laps: list[float] = []
    started = time.perf_counter()
    for source, target in queries:
        lap_started = time.perf_counter()
        await _request(reader, writer, {"op": "query", "source": source,
                                        "target": target})
        laps.append(time.perf_counter() - lap_started)
    elapsed = time.perf_counter() - started
    writer.close()
    await writer.wait_closed()
    return elapsed, laps


async def _concurrent_phase(host, port, queries,
                            connections: int = CONNECTIONS) -> float:
    """The same single-query wire protocol, from many connections."""
    shards = [queries[i::connections] for i in range(connections)]

    async def worker(shard) -> None:
        reader, writer = await asyncio.open_connection(host, port)
        for source, target in shard:
            await _request(reader, writer,
                           {"op": "query", "source": source,
                            "target": target})
        writer.close()
        await writer.wait_closed()

    started = time.perf_counter()
    await asyncio.gather(*(worker(shard) for shard in shards if shard))
    return time.perf_counter() - started


async def _bulk_phase(host, port, queries) -> float:
    reader, writer = await asyncio.open_connection(host, port)
    started = time.perf_counter()
    await _request(reader, writer,
                   {"op": "query_batch",
                    "pairs": [list(pair) for pair in queries]})
    elapsed = time.perf_counter() - started
    writer.close()
    await writer.wait_closed()
    return elapsed


async def _smoke(scale: float) -> dict:
    from repro.bench.harness import random_queries
    from repro.bench.metrics import latency_summary
    from repro.bench.workloads import smoke_workload
    from repro.service import IndexManager, ReachabilityService

    workload = smoke_workload(scale)
    graph = workload.graph
    manager = IndexManager.from_graph(graph)
    service = ReachabilityService(manager, port=0, max_batch=256,
                                  max_wait_us=1000, max_pending=4096)
    host, port = await service.start()
    try:
        queries = random_queries(graph, max(64, int(3200 * scale)),
                                 seed=29)
        sequential_count = min(len(queries), max(32, int(400 * scale)))
        sequential_seconds, sequential_laps = await _sequential_phase(
            host, port, queries[:sequential_count])
        concurrent_seconds = await _concurrent_phase(host, port, queries)
        # second pass over the same stream: mostly cache hits
        cached_seconds = await _concurrent_phase(host, port, queries)
        bulk_seconds = await _bulk_phase(host, port, queries)

        # a live write burst + rebuild-and-swap while the server is up
        reader, writer = await asyncio.open_connection(host, port)
        nodes = graph.nodes()
        for offset in range(4):
            await _request(reader, writer,
                           {"op": "add_edge",
                            "source": nodes[offset],
                            "target": f"smoke-extra-{offset}"})
        reload_response = await _request(reader, writer,
                                         {"op": "reload"})
        stats = (await _request(reader, writer, {"op": "stats"}))["stats"]
        writer.close()
        await writer.wait_closed()
    finally:
        await service.shutdown()

    sequential_qps = sequential_count / sequential_seconds
    concurrent_qps = len(queries) / concurrent_seconds
    cached_qps = len(queries) / cached_seconds
    bulk_qps = len(queries) / bulk_seconds
    batching = stats["batching"]
    return {
        "workload": workload.label,
        "nodes": stats["index"]["nodes"],
        "edges": stats["index"]["edges"],
        "queries": len(queries),
        "connections": CONNECTIONS,
        "sequential_qps": sequential_qps,
        "concurrent_qps": concurrent_qps,
        "cached_qps": cached_qps,
        "bulk_qps": bulk_qps,
        "batching_speedup": concurrent_qps / sequential_qps,
        "mean_batch_size": batching["mean_batch_size"],
        "largest_batch": batching["largest_batch"],
        "batches": batching["batches"],
        "cache_hit_rate": stats["cache"]["hit_rate"],
        "swap_count": stats["index"]["swaps"],
        "epoch": reload_response["epoch"],
        "p50_ms": stats["server"]["p50_ms"],
        "p99_ms": stats["server"]["p99_ms"],
        "p999_ms": stats["server"]["p999_ms"],
        # exact nearest-rank summary of the client-observed sequential
        # round trips (ms), via the shared repro.obs helper
        "client_latency": latency_summary(sequential_laps),
        # per answer-class streaming-histogram summaries (seconds) as
        # the server's stats verb reports them
        "latency_classes": stats["latency"],
    }


def serve_engine_smoke(scale: float = 1.0,
                       worker_counts: tuple[int, ...] = ()) -> dict:
    """Run the serving smoke end to end; the dict behind
    ``BENCH_serve.json`` and the ``serve-smoke`` experiment.

    A non-empty ``worker_counts`` appends the multi-process scaling
    section (:func:`pool_scaling_smoke`) under the ``workers`` key.
    """
    result = asyncio.run(_smoke(scale))
    if worker_counts:
        result["workers"] = pool_scaling_smoke(scale,
                                               tuple(worker_counts))
    return result


# ----------------------------------------------------------------------
# Multi-process scaling: WorkerPool vs the single-process baseline
# ----------------------------------------------------------------------
def _pool_client(host, port, pairs, batch, barrier, results) -> None:
    """Load-generator child process: blocking ``query_batch`` chunks.

    Waits on ``barrier`` after connecting so every generator starts
    timing together (interpreter spawn cost stays out of the qps), then
    reports ``(answered, failures, elapsed_seconds)``.  A chunk lost to
    a dropped connection counts as failures, never as an exception —
    the zero-downtime phase asserts this stays zero across a swap.
    """
    from repro.service import ServiceClient

    client = ServiceClient(host, port, timeout=30.0)
    answered = failures = 0
    barrier.wait()
    started = time.perf_counter()
    for index in range(0, len(pairs), batch):
        chunk = pairs[index:index + batch]
        try:
            response = client.call(
                {"op": "query_batch",
                 "pairs": [list(pair) for pair in chunk]})
            answered += len(response["reachable"])
        except Exception:
            failures += len(chunk)
    elapsed = time.perf_counter() - started
    client.close()
    results.put((answered, failures, elapsed))


def _measure_remote_qps(host, port, queries, *, mutate=None) -> dict:
    """Drive ``(host, port)`` from ``POOL_CLIENT_PROCESSES`` generator
    processes; qps = total answered / slowest generator's window.

    ``mutate`` (optional) runs in *this* process once the generators
    start firing — the zero-downtime write-burst-plus-reload hook.
    """
    context = multiprocessing.get_context("spawn")
    parties = POOL_CLIENT_PROCESSES + (1 if mutate is not None else 0)
    barrier = context.Barrier(parties)
    results = context.SimpleQueue()
    shards = [queries[i::POOL_CLIENT_PROCESSES]
              for i in range(POOL_CLIENT_PROCESSES)]
    generators = [
        context.Process(target=_pool_client,
                        args=(host, port, shard, POOL_BATCH, barrier,
                              results),
                        daemon=True)
        for shard in shards if shard]
    for generator in generators:
        generator.start()
    if mutate is not None:
        barrier.wait()
        mutate()
    answered = failures = 0
    slowest = 0.0
    for _ in generators:
        count, failed, elapsed = results.get()
        answered += count
        failures += failed
        slowest = max(slowest, elapsed)
    for generator in generators:
        generator.join()
    return {"answered": answered, "failures": failures,
            "qps": answered / slowest if slowest else 0.0}


def pool_scaling_smoke(scale: float = 1.0,
                       worker_counts: tuple[int, ...] = (2, 4)) -> dict:
    """Measure WorkerPool throughput at each worker count.

    The ``workers=0`` baseline is a single-process service measured
    under the identical client harness; the last pool run doubles as
    the zero-downtime probe (writes + ``reload`` land mid-load and
    every in-flight query must still answer).
    """
    from repro.bench.harness import random_queries
    from repro.bench.workloads import smoke_workload
    from repro.service import (
        IndexManager,
        ServiceClient,
        WorkerPool,
        start_in_thread,
    )

    workload = smoke_workload(scale)
    graph = workload.graph
    queries = random_queries(graph, max(640, int(3200 * scale)), seed=31)
    options = {"max_batch": 256, "max_wait_us": 1000,
               "max_pending": 4096}

    handle = start_in_thread(IndexManager.from_graph(graph), port=0,
                             **options)
    try:
        host, port = handle.address
        baseline = _measure_remote_qps(host, port, queries)
    finally:
        handle.stop()

    scaling: dict[str, float] = {}
    zero_downtime: dict | None = None
    for count in worker_counts:
        manager = IndexManager.from_graph(graph)
        pool = WorkerPool(manager, workers=count, port=0,
                          service_options=options)
        host, port = pool.start()
        try:
            mutate = None
            last = count == worker_counts[-1]
            if last:
                epoch_before = manager.epoch

                def mutate() -> None:
                    with ServiceClient(host, port,
                                       timeout=30.0) as writer:
                        nodes = graph.nodes()
                        for offset in range(4):
                            writer.call(
                                {"op": "add_edge",
                                 "source": nodes[offset],
                                 "target": f"pool-extra-{offset}"})
                        writer.call({"op": "reload"})

            measured = _measure_remote_qps(host, port, queries,
                                           mutate=mutate)
            scaling[str(count)] = measured["qps"]
            if last:
                pool.wait_epoch(epoch_before + 1)
                zero_downtime = {
                    "queries": len(queries),
                    "answered": measured["answered"],
                    "failures": measured["failures"],
                    "epoch_before": epoch_before,
                    "epoch_after": manager.epoch,
                }
        finally:
            pool.stop()

    baseline_qps = baseline["qps"]
    return {
        "cpus": os.cpu_count(),
        "client_processes": POOL_CLIENT_PROCESSES,
        "batch": POOL_BATCH,
        "queries": len(queries),
        "baseline_qps": baseline_qps,
        "scaling": scaling,
        "speedup": {count: qps / baseline_qps if baseline_qps else 0.0
                    for count, qps in scaling.items()},
        "zero_downtime": zero_downtime,
    }
