"""Serving-layer load generator: the numbers behind ``serve-smoke``.

Stands up a real :class:`~repro.service.ReachabilityService` on a
loopback socket over the Fig. 10 middle sparse workload and measures
three client strategies end to end (TCP framing included):

* **sequential** — one connection, one ``query`` request at a time:
  the no-batching baseline, every query pays a full round trip;
* **concurrent** — the same single-query protocol from many
  concurrent connections: the server's micro-batcher coalesces them
  into shared kernel calls (this is the number the ≥ 1.5× acceptance
  gate compares against sequential);
* **bulk** — one ``query_batch`` request carrying the whole stream:
  the upper bound where framing is amortised entirely.

The concurrent phase runs the stream twice so the second pass
exercises the epoch-keyed result cache, and the run finishes with a
few ``add_edge`` writes plus a ``reload`` to count a live
rebuild-and-swap.  Everything runs in one process and one event loop —
no free ports, threads or subprocesses to leak.
"""

from __future__ import annotations

import asyncio
import json
import time

__all__ = ["serve_engine_smoke"]

CONNECTIONS = 16


async def _request(reader, writer, payload: dict) -> dict:
    writer.write(json.dumps(payload, separators=(",", ":"))
                 .encode("utf-8") + b"\n")
    await writer.drain()
    response = json.loads(await reader.readline())
    if not response.get("ok"):
        raise RuntimeError(f"server error: {response}")
    return response


async def _sequential_phase(host, port,
                            queries) -> tuple[float, list[float]]:
    """Total seconds plus the client-observed per-request latencies."""
    reader, writer = await asyncio.open_connection(host, port)
    laps: list[float] = []
    started = time.perf_counter()
    for source, target in queries:
        lap_started = time.perf_counter()
        await _request(reader, writer, {"op": "query", "source": source,
                                        "target": target})
        laps.append(time.perf_counter() - lap_started)
    elapsed = time.perf_counter() - started
    writer.close()
    await writer.wait_closed()
    return elapsed, laps


async def _concurrent_phase(host, port, queries,
                            connections: int = CONNECTIONS) -> float:
    """The same single-query wire protocol, from many connections."""
    shards = [queries[i::connections] for i in range(connections)]

    async def worker(shard) -> None:
        reader, writer = await asyncio.open_connection(host, port)
        for source, target in shard:
            await _request(reader, writer,
                           {"op": "query", "source": source,
                            "target": target})
        writer.close()
        await writer.wait_closed()

    started = time.perf_counter()
    await asyncio.gather(*(worker(shard) for shard in shards if shard))
    return time.perf_counter() - started


async def _bulk_phase(host, port, queries) -> float:
    reader, writer = await asyncio.open_connection(host, port)
    started = time.perf_counter()
    await _request(reader, writer,
                   {"op": "query_batch",
                    "pairs": [list(pair) for pair in queries]})
    elapsed = time.perf_counter() - started
    writer.close()
    await writer.wait_closed()
    return elapsed


async def _smoke(scale: float) -> dict:
    from repro.bench.harness import random_queries
    from repro.bench.metrics import latency_summary
    from repro.bench.workloads import smoke_workload
    from repro.service import IndexManager, ReachabilityService

    workload = smoke_workload(scale)
    graph = workload.graph
    manager = IndexManager.from_graph(graph)
    service = ReachabilityService(manager, port=0, max_batch=256,
                                  max_wait_us=1000, max_pending=4096)
    host, port = await service.start()
    try:
        queries = random_queries(graph, max(64, int(3200 * scale)),
                                 seed=29)
        sequential_count = min(len(queries), max(32, int(400 * scale)))
        sequential_seconds, sequential_laps = await _sequential_phase(
            host, port, queries[:sequential_count])
        concurrent_seconds = await _concurrent_phase(host, port, queries)
        # second pass over the same stream: mostly cache hits
        cached_seconds = await _concurrent_phase(host, port, queries)
        bulk_seconds = await _bulk_phase(host, port, queries)

        # a live write burst + rebuild-and-swap while the server is up
        reader, writer = await asyncio.open_connection(host, port)
        nodes = graph.nodes()
        for offset in range(4):
            await _request(reader, writer,
                           {"op": "add_edge",
                            "source": nodes[offset],
                            "target": f"smoke-extra-{offset}"})
        reload_response = await _request(reader, writer,
                                         {"op": "reload"})
        stats = (await _request(reader, writer, {"op": "stats"}))["stats"]
        writer.close()
        await writer.wait_closed()
    finally:
        await service.shutdown()

    sequential_qps = sequential_count / sequential_seconds
    concurrent_qps = len(queries) / concurrent_seconds
    cached_qps = len(queries) / cached_seconds
    bulk_qps = len(queries) / bulk_seconds
    batching = stats["batching"]
    return {
        "workload": workload.label,
        "nodes": stats["index"]["nodes"],
        "edges": stats["index"]["edges"],
        "queries": len(queries),
        "connections": CONNECTIONS,
        "sequential_qps": sequential_qps,
        "concurrent_qps": concurrent_qps,
        "cached_qps": cached_qps,
        "bulk_qps": bulk_qps,
        "batching_speedup": concurrent_qps / sequential_qps,
        "mean_batch_size": batching["mean_batch_size"],
        "largest_batch": batching["largest_batch"],
        "batches": batching["batches"],
        "cache_hit_rate": stats["cache"]["hit_rate"],
        "swap_count": stats["index"]["swaps"],
        "epoch": reload_response["epoch"],
        "p50_ms": stats["server"]["p50_ms"],
        "p99_ms": stats["server"]["p99_ms"],
        "p999_ms": stats["server"]["p999_ms"],
        # exact nearest-rank summary of the client-observed sequential
        # round trips (ms), via the shared repro.obs helper
        "client_latency": latency_summary(sequential_laps),
        # per answer-class streaming-histogram summaries (seconds) as
        # the server's stats verb reports them
        "latency_classes": stats["latency"],
    }


def serve_engine_smoke(scale: float = 1.0) -> dict:
    """Run the serving smoke end to end; the dict behind
    ``BENCH_serve.json`` and the ``serve-smoke`` experiment."""
    return asyncio.run(_smoke(scale))
