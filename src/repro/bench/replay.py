"""Workload replay: drive the live TCP server with real schedules.

A **schedule** is a list of wire requests with arrival offsets::

    {"at_ms": 3.1, "op": "query", "source": 5, "target": 41}
    {"at_ms": 5.9, "op": "query_batch", "pairs": [[2, 7], ...]}
    {"at_ms": 8.2, "op": "add_edge", "source": 5, "target": "w12",
     "create": true}

:func:`synthetic_schedule` builds one deterministically from a
:class:`~repro.bench.workloads.WorkloadSpec` and a seed — Zipf-skewed
hot-key endpoints, configurable read/write/batch mix, exponential
(Poisson) inter-arrivals at a target rate, all drawn from one
``random.Random`` so the same seed reproduces the same schedule to the
byte (:func:`schedule_to_bytes` is the canonical form the determinism
test hashes).  :func:`schedule_from_journal` converts a journal
captured by ``serve --capture`` (:mod:`repro.service.capture`) into
the same shape, so captured production traffic replays through the
identical path.

Two replay modes, the classic load-generation pair:

* **closed loop** (:func:`replay_closed_loop`) — ``concurrency``
  threads, each with its own :class:`ServiceClient`, issuing its share
  of the schedule back-to-back; arrival offsets are ignored.  Measures
  the server at a fixed concurrency.
* **open loop** (:func:`replay_open_loop`) — requests are dispatched
  at their scheduled arrival times over a pool of connections, and
  latency is measured **from the scheduled time**, so queueing delay
  when the server falls behind is charged to the server (no
  coordinated omission).

Both modes classify every response client-side (``positive`` /
``negative`` / ``batch`` / ``write`` / ``error``) into per-class
:class:`~repro.obs.histogram.Histogram`\\ s; class counts depend only
on the schedule and the graph, never on timing, which is what makes
the replay acceptance test's "identical class counts" assertion hold.
:func:`evaluate_objectives` feeds the result into a
:class:`~repro.obs.slo.SloTracker` (exact histogram merges) and
returns the SLO report; :func:`slo_smoke` runs the whole zoo and is
the engine behind ``repro-bench slo-smoke`` / ``BENCH_slo.json``.
"""

from __future__ import annotations

import asyncio
import hashlib
import json
import math
import random
import threading
import time
from bisect import bisect_left
from dataclasses import dataclass, field
from itertools import accumulate

from repro.bench.workloads import (
    ZOO_FAMILIES,
    WorkloadSpec,
    build_zoo_graph,
)
from repro.graph.digraph import DiGraph
from repro.obs.histogram import Histogram
from repro.obs.slo import SloTracker
from repro.service import IndexManager, start_in_thread
from repro.service.capture import load_journal
from repro.service.client import ServiceClient
from repro.service.errors import ServiceError

__all__ = [
    "synthetic_schedule", "schedule_to_bytes", "schedule_sha256",
    "schedule_from_journal", "replay_closed_loop", "replay_open_loop",
    "ReplayResult", "evaluate_objectives", "slo_smoke",
    "DEFAULT_OBJECTIVES", "SMOKE_FAMILIES",
]

#: wire fields a schedule entry may carry, per verb (everything else —
#: ts_ms, class, latency_ms, ok, epoch — is journal metadata).
_VERB_FIELDS = {
    "query": ("source", "target"),
    "query_batch": ("pairs",),
    "add_edge": ("source", "target", "create"),
    "add_node": ("node",),
    "remove_edge": ("source", "target"),
    "remove_node": ("node",),
    "reload": ("force",),
}

#: conservative objectives for the 1-CPU CI runner: they catch a
#: serving-path catastrophe (an accidental O(n) per query, a stuck
#: batcher), not micro-regressions — the A/B overhead gates do that.
DEFAULT_OBJECTIVES = [
    "positive p99 < 500ms",
    "negative p99 < 500ms",
    "batch p99 < 1000ms",
    "write p99 < 2000ms",
    "availability >= 99%",
]

#: zoo families the smoke run drives (≥ 4 per the acceptance bar).
SMOKE_FAMILIES = ("sparse", "citation", "layered", "deep-chain",
                  "dense")


# ----------------------------------------------------------------------
# schedules
# ----------------------------------------------------------------------
def _zipf_sampler(graph: DiGraph, s: float, rng: random.Random):
    """A cheap per-draw sampler over a precomputed Zipf CDF (the
    batch form is :func:`repro.bench.workloads.zipf_nodes`)."""
    nodes = list(graph.nodes())
    if not nodes:
        raise ValueError("graph has no nodes")
    if s <= 0.0:
        return lambda: nodes[rng.randrange(len(nodes))]
    cumulative = list(accumulate((rank + 1) ** -s
                                 for rank in range(len(nodes))))
    total = cumulative[-1]
    return lambda: nodes[bisect_left(cumulative, rng.random() * total)]


def synthetic_schedule(spec: WorkloadSpec, graph: DiGraph, *,
                       count: int = 400, rate_qps: float = 400.0,
                       seed: int = 0) -> list[dict]:
    """A deterministic schedule shaped by ``spec`` over ``graph``.

    Same ``(spec, graph, count, rate_qps, seed)`` ⇒ the same list,
    byte for byte under :func:`schedule_to_bytes`: every draw comes
    from one seeded generator and the inter-arrival exponential is
    computed from ``rng.random()`` directly (no library variate whose
    algorithm might change between Python versions).
    """
    if count <= 0:
        raise ValueError("count must be positive")
    rng = random.Random(seed)
    draw = _zipf_sampler(graph, spec.zipf_s, rng)
    schedule: list[dict] = []
    at_ms = 0.0
    for index in range(count):
        at_ms += -math.log(1.0 - rng.random()) / rate_qps * 1e3
        roll = rng.random()
        if roll < spec.read_fraction:
            if rng.random() < spec.batch_fraction:
                pairs = [[draw(), draw()]
                         for _ in range(spec.batch_size)]
                entry = {"at_ms": round(at_ms, 3),
                         "op": "query_batch", "pairs": pairs}
            else:
                entry = {"at_ms": round(at_ms, 3), "op": "query",
                         "source": draw(), "target": draw()}
        else:
            # writes grow the graph monotonically (create=True on a
            # fresh sink), so every write succeeds and never cycles
            entry = {"at_ms": round(at_ms, 3), "op": "add_edge",
                     "source": draw(), "target": f"replay-w{index}",
                     "create": True}
        schedule.append(entry)
    return schedule


def schedule_to_bytes(schedule: list[dict]) -> bytes:
    """Canonical NDJSON bytes (sorted keys, compact separators)."""
    return b"".join(
        json.dumps(entry, sort_keys=True,
                   separators=(",", ":")).encode("utf-8") + b"\n"
        for entry in schedule)


def schedule_sha256(schedule: list[dict]) -> str:
    """Hex digest of the canonical bytes — the determinism witness."""
    return hashlib.sha256(schedule_to_bytes(schedule)).hexdigest()


def schedule_from_journal(source) -> list[dict]:
    """Turn a capture journal (path or record list) into a schedule.

    Keeps each record's monotonic ``ts_ms`` as the arrival offset and
    strips the observed metadata, so a captured stream replays with
    its original shape and timing.
    """
    if isinstance(source, (list, tuple)):
        records = list(source)
    else:
        _, records = load_journal(source)
    schedule = []
    for record in records:
        op = record.get("op")
        fields = _VERB_FIELDS.get(op)
        if fields is None:
            continue                      # not a replayable verb
        entry = {"at_ms": float(record.get("ts_ms", 0.0)), "op": op}
        for name in fields:
            if name in record:
                entry[name] = record[name]
        schedule.append(entry)
    return schedule


def _wire_request(entry: dict) -> dict:
    """The request object actually sent for one schedule entry."""
    request = {"op": entry["op"]}
    for name in _VERB_FIELDS[entry["op"]]:
        if name in entry:
            request[name] = entry[name]
    return request


# ----------------------------------------------------------------------
# replay
# ----------------------------------------------------------------------
@dataclass
class ReplayResult:
    """Per-class latency + outcome tallies from one replay run."""

    mode: str
    sent: int = 0
    ok: int = 0
    errors: int = 0
    wall_seconds: float = 0.0
    latency: dict[str, Histogram] = field(default_factory=dict)

    def observe(self, klass: str, seconds: float, ok: bool) -> None:
        self.sent += 1
        if ok:
            self.ok += 1
        else:
            self.errors += 1
        histogram = self.latency.get(klass)
        if histogram is None:
            histogram = self.latency.setdefault(klass, Histogram())
        histogram.observe(seconds)

    def merge(self, other: "ReplayResult") -> "ReplayResult":
        self.sent += other.sent
        self.ok += other.ok
        self.errors += other.errors
        for klass, histogram in other.latency.items():
            mine = self.latency.setdefault(klass, Histogram())
            mine.merge(histogram)
        return self

    @property
    def qps(self) -> float:
        return (self.sent / self.wall_seconds
                if self.wall_seconds > 0 else 0.0)

    def class_counts(self) -> dict[str, int]:
        return {klass: histogram.count
                for klass, histogram in sorted(self.latency.items())}

    def class_summaries(self) -> dict[str, dict]:
        """``{class: {count, p50_ms, p99_ms, p999_ms}}``."""
        out = {}
        for klass, histogram in sorted(self.latency.items()):
            p50, p99, p999 = histogram.percentiles(0.50, 0.99, 0.999)
            out[klass] = {"count": histogram.count,
                          "p50_ms": 1e3 * p50, "p99_ms": 1e3 * p99,
                          "p999_ms": 1e3 * p999}
        return out


def _classify(entry: dict, response: dict | None) -> tuple[str, bool]:
    """Client-side answer class + ok flag for one settled request."""
    if response is None or not response.get("ok", False):
        return "error", False
    op = entry["op"]
    if op == "query":
        return ("positive" if response.get("reachable")
                else "negative"), True
    if op == "query_batch":
        return "batch", True
    return "write", True


def replay_closed_loop(host: str, port: int, schedule: list[dict], *,
                       concurrency: int = 4,
                       timeout: float = 30.0) -> ReplayResult:
    """Fixed-concurrency replay: ``concurrency`` threads, each its own
    connection, issuing its round-robin share back-to-back."""
    if concurrency <= 0:
        raise ValueError("concurrency must be positive")
    shards = [schedule[index::concurrency]
              for index in range(concurrency)]
    results = [ReplayResult("closed") for _ in shards]

    def drive(shard: list[dict], result: ReplayResult) -> None:
        client = ServiceClient(host, port, timeout=timeout)
        try:
            for entry in shard:
                started = time.perf_counter()
                try:
                    response = client.call(_wire_request(entry))
                except ServiceError:
                    response = None
                seconds = time.perf_counter() - started
                klass, ok = _classify(entry, response)
                result.observe(klass, seconds, ok)
        finally:
            client.close()

    threads = [threading.Thread(target=drive, args=(shard, result),
                                name=f"repro-replay-{index}")
               for index, (shard, result)
               in enumerate(zip(shards, results))]
    started = time.perf_counter()
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    total = ReplayResult("closed")
    for result in results:
        total.merge(result)
    total.wall_seconds = time.perf_counter() - started
    return total


def replay_open_loop(host: str, port: int, schedule: list[dict], *,
                     connections: int = 4,
                     timeout: float = 30.0) -> ReplayResult:
    """Fixed-arrival-rate replay honouring each entry's ``at_ms``.

    Latency is measured from the *scheduled* send time: if the server
    (or a busy connection) falls behind, the backlog shows up in the
    tail instead of silently stretching the run.
    """
    if connections <= 0:
        raise ValueError("connections must be positive")
    result = ReplayResult("open")

    async def drive(entries, reader, writer, origin) -> None:
        for entry in entries:
            scheduled = origin + entry["at_ms"] / 1e3
            delay = scheduled - time.perf_counter()
            if delay > 0:
                await asyncio.sleep(delay)
            payload = json.dumps(_wire_request(entry),
                                 separators=(",", ":"))
            response = None
            try:
                writer.write(payload.encode("utf-8") + b"\n")
                await writer.drain()
                line = await asyncio.wait_for(reader.readline(),
                                              timeout)
                if line:
                    response = json.loads(line)
            except (ConnectionError, asyncio.TimeoutError,
                    json.JSONDecodeError):
                response = None
            seconds = time.perf_counter() - scheduled
            klass, ok = _classify(entry, response)
            result.observe(klass, seconds, ok)

    async def main() -> None:
        pool = [await asyncio.open_connection(host, port)
                for _ in range(connections)]
        origin = time.perf_counter()
        try:
            await asyncio.gather(*(
                drive(schedule[index::connections], reader, writer,
                      origin)
                for index, (reader, writer) in enumerate(pool)))
        finally:
            for _, writer in pool:
                writer.close()
                try:
                    await writer.wait_closed()
                except (ConnectionError, OSError):
                    pass

    started = time.perf_counter()
    asyncio.run(main())
    result.wall_seconds = time.perf_counter() - started
    return result


# ----------------------------------------------------------------------
# SLO evaluation + the smoke experiment
# ----------------------------------------------------------------------
def evaluate_objectives(result: ReplayResult, objectives) -> dict:
    """SLO report for one replay: exact merges into a fresh tracker."""
    tracker = SloTracker(objectives)
    tracker.absorb("availability", Histogram(),
                   ok=result.ok, errors=result.errors)
    for klass, histogram in result.latency.items():
        tracker.absorb(klass, histogram)
    return tracker.evaluate()


def slo_smoke(scale: float = 1.0, *,
              objectives=None,
              families=SMOKE_FAMILIES,
              concurrency: int = 4,
              seed: int = 0) -> dict:
    """Replay the zoo against live servers and grade the objectives.

    The payload behind ``BENCH_slo.json``: per family, the class
    latency ladder (p50/p99/p999 + compliance ratio) and the SLO
    verdicts; overall ``healthy`` is the CI gate.
    """
    objectives = list(objectives
                      if objectives is not None else DEFAULT_OBJECTIVES)
    count = max(120, int(400 * scale))
    rate = max(50.0, 400.0 * scale)
    report: dict = {
        "scale": scale,
        "mode": "closed",
        "concurrency": concurrency,
        "requests_per_family": count,
        "objectives": objectives,
        "families": {},
    }
    for name in families:
        spec = ZOO_FAMILIES[name]
        graph = build_zoo_graph(spec, scale)
        schedule = synthetic_schedule(spec, graph, count=count,
                                      rate_qps=rate, seed=seed)
        manager = IndexManager.from_graph(graph)
        with start_in_thread(manager) as handle:
            host, port = handle.address
            result = replay_closed_loop(host, port, schedule,
                                        concurrency=concurrency)
        verdict = evaluate_objectives(result, objectives)
        compliance = {row["class"]: row["compliance_ratio"]
                      for row in verdict["objectives"]}
        classes = result.class_summaries()
        for klass, summary in classes.items():
            summary["compliance_ratio"] = compliance.get(klass, 1.0)
        report["families"][name] = {
            "family": spec.family,
            "nodes": graph.num_nodes,
            "edges": graph.num_edges,
            "zipf_s": spec.zipf_s,
            "read_fraction": spec.read_fraction,
            "schedule_sha256": schedule_sha256(schedule),
            "requests": result.sent,
            "errors": result.errors,
            "qps": result.qps,
            "classes": classes,
            "slo": verdict["objectives"],
            "healthy": verdict["healthy"],
        }
    # one open-loop pass over the sparse family: exercises the
    # arrival-time path and reports rate-conditioned latency
    spec = ZOO_FAMILIES["sparse"]
    graph = build_zoo_graph(spec, scale)
    schedule = synthetic_schedule(spec, graph,
                                  count=max(60, count // 2),
                                  rate_qps=rate, seed=seed + 1)
    manager = IndexManager.from_graph(graph)
    with start_in_thread(manager) as handle:
        host, port = handle.address
        open_result = replay_open_loop(host, port, schedule,
                                       connections=concurrency)
    report["open_loop"] = {
        "family": "sparse",
        "requests": open_result.sent,
        "errors": open_result.errors,
        "target_qps": rate,
        "achieved_qps": open_result.qps,
        "classes": open_result.class_summaries(),
    }
    report["healthy"] = all(entry["healthy"]
                            for entry in report["families"].values())
    return report
