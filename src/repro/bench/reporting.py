"""Paper-style rendering of benchmark results.

Tables mirror the layout of the paper's Tables 1–5 ("size of data
structures (16 bits)" / "time for generating TC (sec.)"); series mirror
Figures 10–13 (accumulated query seconds against query count).
"""

from __future__ import annotations

from pathlib import Path

from repro.bench.metrics import BuildResult, QuerySeries

__all__ = ["render_table", "render_build_table", "render_series",
           "write_report"]


def render_table(title: str, headers: list[str],
                 rows: list[tuple]) -> str:
    """A plain fixed-width table."""
    columns = [headers] + [[str(cell) for cell in row] for row in rows]
    widths = [max(len(column[row_index]) for column in columns)
              for row_index in range(len(headers))]
    lines = [title]
    lines.append("  ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in rows:
        lines.append("  ".join(str(cell).ljust(w)
                               for cell, w in zip(row, widths)))
    return "\n".join(lines) + "\n"


def render_build_table(title: str,
                       results: list[BuildResult]) -> str:
    """The paper's Tables 1/3/4/5 layout."""
    rows = [(r.method, r.size_words, f"{r.build_seconds:.3f}")
            for r in results]
    return render_table(
        title,
        ["method", "size of data structures (16 bits)",
         "time for generating TC (sec.)"],
        rows)


def render_series(title: str, series: list[QuerySeries]) -> str:
    """The paper's Figures 10–13 as a numeric table.

    One row per query count, one column per method, cells holding the
    accumulated query time in seconds.
    """
    if not series:
        return title + "\n(no data)\n"
    headers = ["queries"] + [s.method for s in series]
    rows = []
    for i, count in enumerate(series[0].counts):
        rows.append(tuple([count] + [f"{s.seconds[i]:.4f}"
                                     for s in series]))
    return render_table(title, headers, rows)


def write_report(path: str | Path, content: str) -> Path:
    """Write a report file, creating parent directories."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(content, encoding="utf-8")
    return path
