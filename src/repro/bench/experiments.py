"""One entry point per table and figure of the paper's Section V.

Each ``run_*`` function builds the workload, exercises the methods and
returns the rendered paper-style report; the CLI and the pytest
benchmark suite both call these.  Table/figure numbering follows the
paper:

* Table 1 / Fig. 10 — Group I, sparse graphs.
* Table 2 — DSG/DSRG graph parameters.
* Table 3 / Fig. 11 — Group II, DSG.
* Table 4 / Fig. 12 — Group II, DSRG.
* Table 5 / Fig. 13 — Group III, dense 0.25-DAG.

Plus three ablations that are not in the paper but probe its design
choices (chain-cover method, width sensitivity, matching algorithm).
"""

from __future__ import annotations

from repro.baselines.two_hop import TwoHopIndex
from repro.bench.harness import (
    build_all,
    build_index,
    observer_smoke,
    query_engine_smoke,
    run_query_series,
)
from repro.bench.metrics import BuildResult
from repro.bench.reporting import (
    render_build_table,
    render_series,
    render_table,
)
from repro.bench.workloads import (
    GROUP1_METHODS,
    GROUP23_METHODS,
    QUERY_METHODS,
    group1_graphs,
    group2_dsg_graph,
    group2_dsrg_graph,
    group3_dense_graph,
    query_counts,
)
from repro.core.index import ChainIndex
from repro.core.stratified import stratified_chain_cover
from repro.baselines.jagadish import jagadish_chain_cover
from repro.core.closure_cover import closure_chain_cover
from repro.graph.generators import graph_stats, layered_random_dag
from repro.matching.bipartite import BipartiteGraph
from repro.matching.hopcroft_karp import hopcroft_karp, kuhn_matching
from repro.obs import OBS

__all__ = [
    "run_table1", "run_fig10", "run_table2", "run_table3", "run_fig11",
    "run_table4", "run_fig12", "run_table5", "run_fig13",
    "run_query_smoke",
    "run_observer_smoke",
    "run_serve_smoke",
    "run_slo_smoke",
    "run_dynamic_smoke",
    "run_scale_smoke", "run_scale_large",
    "run_ablation_chain_methods", "run_ablation_width",
    "run_ablation_matching", "ALL_EXPERIMENTS",
]


def _with_dual_dense(results: list[BuildResult]) -> list[BuildResult]:
    """Append a ``Dual-I*`` row: the same dual-labeling index priced
    with the paper's uncompressed TLC matrix (our search tree
    compresses far better than the implementation the paper measured,
    so the dense footprint is what reproduces the Tables 3–5 blow-up).
    """
    extended = list(results)
    for result in results:
        if result.method == "Dual-II" and hasattr(result.index,
                                                  "dense_size_words"):
            extended.append(BuildResult(
                method="Dual-I*", index=result.index,
                build_seconds=result.build_seconds,
                size_words=result.index.dense_size_words()))
    return extended


def _averaged(results_per_graph: list[list[BuildResult]]
              ) -> list[BuildResult]:
    """Average size/time per method across a graph series (Table 1
    reports one row per method over five sparse graphs)."""
    by_method: dict[str, list[BuildResult]] = {}
    for results in results_per_graph:
        for result in results:
            by_method.setdefault(result.method, []).append(result)
    averaged = []
    for method, results in by_method.items():
        averaged.append(BuildResult(
            method=method,
            index=results[-1].index,
            build_seconds=sum(r.build_seconds
                              for r in results) / len(results),
            size_words=round(sum(r.size_words
                                 for r in results) / len(results)),
        ))
    return averaged


# ----------------------------------------------------------------------
# Group I — sparse graphs
# ----------------------------------------------------------------------
def _build_group1(scale: float) -> tuple[list, list[list[BuildResult]]]:
    workloads = group1_graphs(scale)
    results = []
    for workload in workloads:
        per_graph = []
        for method in GROUP1_METHODS:
            if method == "2-hop":
                # The paper's 2-hop used exhaustive greedy re-scoring;
                # reproduce that cost profile explicitly.
                with OBS.span("bench/build/2-hop") as span:
                    index = TwoHopIndex.build(workload.graph, lazy=False)
                per_graph.append(BuildResult(
                    method=method, index=index,
                    build_seconds=span.seconds,
                    size_words=index.size_words()))
            else:
                per_graph.append(build_index(method, workload.graph))
        results.append(per_graph)
    return workloads, results


def run_table1(scale: float = 1.0) -> str:
    """Table 1: average TC size and build time over sparse graphs."""
    workloads, results = _build_group1(scale)
    labels = ", ".join(w.label for w in workloads)
    return render_build_table(
        f"Table 1 — sparse graphs ({labels}); averages over the series",
        _with_dual_dense(_averaged(results)))


def run_fig10(scale: float = 1.0) -> str:
    """Fig. 10: accumulated query time vs query count, Group I.

    Unlike Figs. 11–13, the paper's Fig. 10 includes 2-hop (its label
    intersections make the slowest line); built lazily here since only
    query time is plotted.
    """
    workload = group1_graphs(scale)[2]       # the middle instance
    counts = query_counts(scale)
    series = []
    for method in QUERY_METHODS + ["2-hop"]:
        result = build_index(method, workload.graph)
        series.append(run_query_series(result.index, method,
                                       workload.graph, counts, seed=23))
    return render_series(
        f"Fig. 10 — query time (sec.) on {workload.label}", series)


# ----------------------------------------------------------------------
# Table 2 — graph parameters
# ----------------------------------------------------------------------
def run_table2(scale: float = 1.0) -> str:
    """Table 2: DSG / DSRG graph parameters."""
    rows = []
    for name, workload in (("DSG", group2_dsg_graph(scale)),
                           ("DSRG", group2_dsrg_graph(scale))):
        stats = graph_stats(workload.graph, seed=1)
        rows.append((name,) + stats.row())
    return render_table(
        "Table 2 — graph parameters for Group II",
        ["graph", "number of nodes", "number of arcs",
         "avg out-degree of internal nodes", "average path length"],
        rows)


# ----------------------------------------------------------------------
# Group II — DSG / DSRG
# ----------------------------------------------------------------------
def run_table3(scale: float = 1.0) -> str:
    """Table 3: DSG TC size and build time (no 2-hop)."""
    workload = group2_dsg_graph(scale)
    results = _with_dual_dense(build_all(workload.graph,
                                         GROUP23_METHODS))
    return render_build_table(f"Table 3 — {workload.label}", results)


def run_fig11(scale: float = 1.0) -> str:
    """Fig. 11: query time on the DSG."""
    workload = group2_dsg_graph(scale)
    counts = query_counts(scale)
    series = [run_query_series(build_index(m, workload.graph).index, m,
                               workload.graph, counts, seed=29)
              for m in QUERY_METHODS]
    return render_series(
        f"Fig. 11 — query time (sec.) on {workload.label}", series)


def run_table4(scale: float = 1.0) -> str:
    """Table 4: DSRG TC size and build time."""
    workload = group2_dsrg_graph(scale)
    results = _with_dual_dense(build_all(workload.graph,
                                         GROUP23_METHODS))
    return render_build_table(f"Table 4 — {workload.label}", results)


def run_fig12(scale: float = 1.0) -> str:
    """Fig. 12: query time on the DSRG."""
    workload = group2_dsrg_graph(scale)
    counts = query_counts(scale)
    series = [run_query_series(build_index(m, workload.graph).index, m,
                               workload.graph, counts, seed=31)
              for m in QUERY_METHODS]
    return render_series(
        f"Fig. 12 — query time (sec.) on {workload.label}", series)


# ----------------------------------------------------------------------
# Group III — dense graphs
# ----------------------------------------------------------------------
def run_table5(scale: float = 1.0) -> str:
    """Table 5: 0.25-density DAG TC size and build time."""
    workload = group3_dense_graph(scale)
    results = _with_dual_dense(build_all(workload.graph,
                                         GROUP23_METHODS))
    return render_build_table(f"Table 5 — {workload.label}", results)


def run_fig13(scale: float = 1.0) -> str:
    """Fig. 13: query time on the dense DAG."""
    workload = group3_dense_graph(scale)
    counts = query_counts(scale)
    series = [run_query_series(build_index(m, workload.graph).index, m,
                               workload.graph, counts, seed=37)
              for m in QUERY_METHODS]
    return render_series(
        f"Fig. 13 — query time (sec.) on {workload.label}", series)


# ----------------------------------------------------------------------
# Query-engine smoke (not in the paper)
# ----------------------------------------------------------------------
def run_query_smoke(scale: float = 1.0) -> str:
    """Scalar vs batch throughput and pre-filter share on one graph."""
    result = query_engine_smoke(scale)
    rows = [
        ("build (sec.)", f"{result['build_seconds']:.4f}"),
        ("scalar queries/sec", f"{result['scalar_qps']:,.0f}"),
        ("batch queries/sec", f"{result['batch_qps']:,.0f}"),
        ("batch speedup", f"{result['batch_speedup']:.2f}x"),
        ("label bytes", f"{result['label_bytes']:,}"),
        ("negative queries", f"{result['negative_queries']:,}"),
        ("pre-filter hits", f"{result['prefilter_hits']:,}"),
        ("pre-filter share of negatives",
         f"{100 * result['prefilter_negative_share']:.1f}%"),
    ]
    return render_table(
        f"Query-engine smoke — {result['workload']}, "
        f"{result['queries']:,} queries",
        ["metric", "value"], rows)


def run_observer_smoke(scale: float = 1.0) -> str:
    """O(1)-answer ratio and observed-vs-bare speedup per workload."""
    result = observer_smoke(scale)
    rows = []
    for row in result["workloads"]:
        top_hits = ", ".join(
            f"{name} {count:,}" for name, count in sorted(
                row["observer_hits"].items(),
                key=lambda item: -item[1])[:3])
        rows.append((
            row["workload"], row["engine"],
            f"{100 * row['o1_answer_ratio']:.1f}%",
            f"{row['bare_qps']:,.0f}",
            f"{row['observed_qps']:,.0f}",
            f"{row['speedup']:.2f}x",
            top_hits,
        ))
    return render_table(
        f"Observer smoke — O(1)-answer stack vs bare engines "
        f"(sparse acceptance ratio "
        f"{100 * result['sparse_o1_ratio']:.1f}%)",
        ["workload", "engine", "O(1) answered", "bare q/s",
         "observed q/s", "speedup", "top observers"],
        rows)


def run_serve_smoke(scale: float = 1.0, workers: int = 0) -> str:
    """Serving-layer throughput: sequential vs micro-batched vs bulk.

    ``workers > 0`` also runs the multi-process WorkerPool scaling
    probe at that worker count (``repro-bench serve-smoke --workers 2``
    in CI) and appends its rows.
    """
    from repro.bench.serving import serve_engine_smoke
    result = serve_engine_smoke(
        scale, worker_counts=(workers,) if workers else ())
    rows = [
        ("sequential queries/sec", f"{result['sequential_qps']:,.0f}"),
        ("concurrent (batched) queries/sec",
         f"{result['concurrent_qps']:,.0f}"),
        ("concurrent, warm cache queries/sec",
         f"{result['cached_qps']:,.0f}"),
        ("bulk query_batch queries/sec", f"{result['bulk_qps']:,.0f}"),
        ("micro-batching speedup",
         f"{result['batching_speedup']:.2f}x"),
        ("mean batch size", f"{result['mean_batch_size']:.1f}"),
        ("largest batch", f"{result['largest_batch']}"),
        ("cache hit rate", f"{100 * result['cache_hit_rate']:.1f}%"),
        ("snapshot swaps", f"{result['swap_count']}"),
        ("final epoch", f"{result['epoch']}"),
        ("p50 latency", f"{result['p50_ms']:.2f} ms"),
        ("p99 latency", f"{result['p99_ms']:.2f} ms"),
        ("p999 latency", f"{result['p999_ms']:.2f} ms"),
    ]
    for klass, summary in sorted(result["latency_classes"].items()):
        rows.append((f"{klass} p99", f"{1e3 * summary['p99']:.2f} ms "
                                     f"(n={summary['count']:,})"))
    if "workers" in result:
        pool = result["workers"]
        rows.append(("cpus on this box", f"{pool['cpus']}"))
        rows.append(("pool baseline (workers=0) queries/sec",
                     f"{pool['baseline_qps']:,.0f}"))
        for count, qps in sorted(pool["scaling"].items(),
                                 key=lambda item: int(item[0])):
            rows.append((f"pool {count}-worker queries/sec",
                         f"{qps:,.0f} "
                         f"({pool['speedup'][count]:.2f}x baseline)"))
        swap = pool["zero_downtime"]
        rows.append(("pool zero-downtime swap",
                     f"epoch {swap['epoch_before']} -> "
                     f"{swap['epoch_after']}, {swap['failures']} "
                     f"failures / {swap['answered']:,} answered"))
    return render_table(
        f"Serving smoke — {result['workload']}, "
        f"{result['queries']:,} queries over "
        f"{result['connections']} connections",
        ["metric", "value"], rows)


def run_slo_smoke(scale: float = 1.0) -> str:
    """Workload-zoo replay graded against the per-class SLOs.

    Drives every zoo family against a live server in closed loop
    (plus one open-loop pass), then prints the class latency ladder
    and each objective's verdict.  ``benchmarks/bench_slo_smoke.py``
    persists the same payload as ``BENCH_slo.json`` and gates CI on
    ``healthy``.
    """
    from repro.bench.replay import slo_smoke
    report = slo_smoke(scale)
    rows = []
    for name, family in report["families"].items():
        for klass, summary in family["classes"].items():
            rows.append((
                f"{name} {klass}",
                f"n={summary['count']:,}",
                f"{summary['p50_ms']:.2f}",
                f"{summary['p99_ms']:.2f}",
                f"{summary['p999_ms']:.2f}",
                f"{100 * summary['compliance_ratio']:.1f}%",
            ))
        breached = [row["spec"] for row in family["slo"]
                    if not row["compliant"]]
        status = "ok" if family["healthy"] else \
            "BREACH: " + "; ".join(breached)
        rows.append((f"{name} verdict", f"{family['qps']:,.0f} qps",
                     "", "", "", status))
    open_loop = report["open_loop"]
    rows.append(("open-loop sparse",
                 f"n={open_loop['requests']:,}",
                 f"{open_loop['achieved_qps']:,.0f} qps",
                 f"target {open_loop['target_qps']:,.0f}", "", ""))
    title = ("Workload zoo vs SLOs — " +
             ("all objectives met" if report["healthy"]
              else "OBJECTIVES BREACHED"))
    return render_table(
        title,
        ["workload/class", "count", "p50 ms", "p99 ms", "p999 ms",
         "compliance"],
        rows)


def run_dynamic_smoke(scale: float = 1.0) -> str:
    """In-place dynamic-tol maintenance vs rebuild-and-swap under a
    sustained mixed read/write stream (same ops, fresh answers)."""
    from repro.bench.dynamic import dynamic_engine_smoke
    result = dynamic_engine_smoke(scale)
    rows = [
        ("rounds (remove + re-add + queries)",
         f"{result['rounds']} x {result['queries_per_round']} queries"),
        ("total operations", f"{result['ops']:,}"),
        ("dynamic-tol ops/sec",
         f"{result['dynamic_tol_ops_per_sec']:,.0f}"),
        ("rebuild-and-swap ops/sec",
         f"{result['rebuild_swap_ops_per_sec']:,.0f}"),
        ("speedup", f"{result['speedup']:.2f}x"),
        ("rebuild swaps paid by the static path",
         f"{result['rebuild_swaps']}"),
        ("mismatched answer rounds",
         f"{result['mismatched_rounds']}"),
        ("label entries (Lin+Lout)", f"{result['label_entries']:,}"),
        ("index size (16-bit words)", f"{result['size_words']:,}"),
    ]
    return render_table(
        f"Dynamic smoke — {result['workload']}",
        ["metric", "value"], rows)


def run_scale_smoke(scale: float = 1.0) -> str:
    """Concat vs stratified builds and flat vs varint labels on one
    large chain-family graph, persisted and served end to end."""
    from repro.bench.scale import scale_engine_smoke
    result = scale_engine_smoke(scale)
    rows = [
        ("graph", f"{result['nodes']:,} nodes / "
                  f"{result['edges']:,} edges"),
        ("chain-concat build (CPU sec., min of "
         f"{result['build_samples']})",
         f"{result['concat_build_seconds']:.2f}"),
        ("chain-stratified build (CPU sec.)",
         f"{result['stratified_build_seconds']:.2f}"),
        ("build speedup", f"{result['build_speedup']:.2f}x"),
        ("chains (concat / stratified)",
         f"{result['concat_chains']} / {result['stratified_chains']}"),
        ("label entries", f"{result['label_entries']:,}"),
        ("flat label bytes", f"{result['flat_label_bytes']:,}"),
        ("compressed label bytes",
         f"{result['compressed_label_bytes']:,}"),
        ("compression ratio", f"{result['compression_ratio']:.3f}"),
        ("v4 file bytes (compressed codec)",
         f"{result['file_bytes']:,}"),
        ("reloaded-index queries/sec", f"{result['query_qps']:,.0f}"),
        ("BFS mismatches", f"{result['query_bfs_mismatches']}"),
    ]
    return render_table(
        f"Scale smoke — {result['workload']}",
        ["metric", "value"], rows)


def run_scale_large(scale: float = 1.0) -> str:
    """The release-cadence million-node trajectory: one wall-clock
    build/persist/attach/serve pass over ``scale`` x (1M nodes / 10M
    edges).  Heavy — minutes, not seconds."""
    from repro.bench.scale import scale_large_trajectory
    result = scale_large_trajectory(
        nodes=max(10_000, int(1_000_000 * scale)),
        edges=max(100_000, int(10_000_000 * scale)))
    rows = [
        ("graph", f"{result['nodes']:,} nodes / "
                  f"{result['edges']:,} edges"),
        ("generate (sec.)", f"{result['generate_seconds']:.1f}"),
        ("chain-concat build (sec.)",
         f"{result['concat_build_seconds']:.1f}"),
        ("chains", f"{result['concat_chains']}"),
        ("label entries", f"{result['label_entries']:,}"),
        ("flat label bytes", f"{result['flat_label_bytes']:,}"),
        ("compressed label bytes",
         f"{result['compressed_label_bytes']:,}"),
        ("compression ratio", f"{result['compression_ratio']:.3f}"),
        ("persist / reload (sec.)",
         f"{result['persist_seconds']:.1f} / "
         f"{result['load_seconds']:.1f}"),
        ("v4 file bytes", f"{result['file_bytes']:,}"),
        ("shm-attached queries/sec",
         f"{result['shm_query_qps']:,.0f}"),
        ("BFS mismatches",
         f"{result['bfs_mismatches']}/{result['bfs_checks']}"),
        ("peak RSS", f"{result['peak_rss_bytes'] / 2**30:.2f} GiB"),
    ]
    return render_table(
        f"Scale large — {result['workload']}",
        ["metric", "value"], rows)


# ----------------------------------------------------------------------
# Ablations (not in the paper)
# ----------------------------------------------------------------------
def run_ablation_chain_methods(scale: float = 1.0) -> str:
    """Chain count and decomposition time per cover algorithm."""
    rows = []
    for workload in (group1_graphs(scale)[0], group2_dsg_graph(scale),
                     group2_dsrg_graph(scale),
                     group3_dense_graph(scale)):
        for name, cover_fn in (("stratified", stratified_chain_cover),
                               ("closure", closure_chain_cover),
                               ("jagadish", jagadish_chain_cover)):
            with OBS.span(f"bench/cover/{name}") as span:
                cover = cover_fn(workload.graph)
            rows.append((workload.label, name, cover.num_chains,
                         f"{span.seconds:.3f}"))
    return render_table(
        "Ablation A — chain-cover method vs chain count",
        ["graph", "method", "chains", "decompose (sec.)"],
        rows)


def run_ablation_width(scale: float = 1.0) -> str:
    """Label size and build time as the graph's width grows."""
    rows = []
    depth = 12
    for width_target in (4, 16, 64, 256):
        layers = [max(1, int(width_target * scale))] * depth
        graph = layered_random_dag(layers, 4.0 / width_target, seed=41)
        with OBS.span("bench/build/ours") as span:
            index = ChainIndex.build(graph)
        rows.append((width_target, graph.num_nodes, index.num_chains,
                     index.size_words(), f"{span.seconds:.3f}"))
    return render_table(
        "Ablation B — width vs label size (layered DAGs, 12 layers)",
        ["layer width", "nodes", "chains (=width)", "size (16-bit words)",
         "build (sec.)"],
        rows)


def run_ablation_matching(scale: float = 1.0) -> str:
    """Hopcroft–Karp vs naive augmentation on level bipartite graphs."""
    import random
    rows = []
    rng = random.Random(43)
    for side in (200, 400, 800):
        side = max(10, int(side * scale))
        graph = BipartiteGraph(side, side)
        for top in range(side):
            for bottom in rng.sample(range(side), 4):
                graph.add_edge(top, bottom)
        with OBS.span("bench/matching/hopcroft-karp") as hk_span:
            hk_size = hopcroft_karp(graph).size()
        with OBS.span("bench/matching/kuhn") as kuhn_span:
            kuhn_size = kuhn_matching(graph).size()
        assert hk_size == kuhn_size
        rows.append((side, hk_size, f"{hk_span.seconds:.4f}",
                     f"{kuhn_span.seconds:.4f}"))
    return render_table(
        "Ablation C — Hopcroft–Karp vs Kuhn on random 4-regular "
        "bipartite graphs",
        ["side size", "matching size", "HK (sec.)", "Kuhn (sec.)"],
        rows)


#: name -> runner, used by the CLI.
ALL_EXPERIMENTS = {
    "table1": run_table1,
    "fig10": run_fig10,
    "table2": run_table2,
    "table3": run_table3,
    "fig11": run_fig11,
    "table4": run_table4,
    "fig12": run_fig12,
    "table5": run_table5,
    "fig13": run_fig13,
    "query-smoke": run_query_smoke,
    "observer-smoke": run_observer_smoke,
    "serve-smoke": run_serve_smoke,
    "slo-smoke": run_slo_smoke,
    "dynamic-smoke": run_dynamic_smoke,
    "scale-smoke": run_scale_smoke,
    "scale-large": run_scale_large,
    "ablation-chain-methods": run_ablation_chain_methods,
    "ablation-width": run_ablation_width,
    "ablation-matching": run_ablation_matching,
}
