"""Build/query runners shared by the CLI and the pytest benchmarks.

All timing goes through :data:`repro.obs.OBS` spans (``bench/build/*``,
``bench/query_batch``) — a span measures whether or not the registry
is enabled, and additionally records into the registry when it is, so
``OBS.capture()`` around a harness call yields benchmark timings and
the pipeline's phase spans in one place.
"""

from __future__ import annotations

import random

from repro.bench.metrics import BuildResult, QuerySeries
from repro.bench.workloads import METHOD_BUILDERS
from repro.graph.digraph import DiGraph
from repro.obs import OBS

__all__ = [
    "build_index",
    "build_all",
    "random_queries",
    "time_query_batch",
    "run_query_series",
]


def build_index(method: str, graph: DiGraph) -> BuildResult:
    """Build one method's index, timing it and measuring its size."""
    builder = METHOD_BUILDERS[method]
    with OBS.span(f"bench/build/{method}") as span:
        index = builder(graph)
    return BuildResult(method=method, index=index,
                       build_seconds=span.seconds,
                       size_words=index.size_words())


def build_all(graph: DiGraph, methods: list[str]) -> list[BuildResult]:
    """Build every requested method over the same graph."""
    return [build_index(method, graph) for method in methods]


def random_queries(graph: DiGraph, count: int,
                   seed: int = 0) -> list[tuple]:
    """``count`` random (source, target) node pairs.

    Mirrors the paper: "each query is a pair (x, y) to check whether
    node x is an ancestor of node y", drawn uniformly.
    """
    rng = random.Random(seed)
    nodes = graph.nodes()
    if not nodes:
        return []
    return [(rng.choice(nodes), rng.choice(nodes))
            for _ in range(count)]


def time_query_batch(index, queries: list[tuple]) -> float:
    """Accumulated seconds to answer every query in the batch."""
    is_reachable = index.is_reachable
    with OBS.span("bench/query_batch") as span:
        for source, target in queries:
            is_reachable(source, target)
    return span.seconds


def run_query_series(index, method: str, graph: DiGraph,
                     counts: list[int], seed: int = 0) -> QuerySeries:
    """Accumulated query time at each batch size (one figure line).

    The paper reports accumulated time over the first N of a fixed
    random query stream, so batches are prefixes of one stream.
    """
    series = QuerySeries(method=method, counts=list(counts))
    stream = random_queries(graph, max(counts) if counts else 0, seed)
    for count in counts:
        series.seconds.append(time_query_batch(index, stream[:count]))
    return series
