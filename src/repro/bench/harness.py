"""Build/query runners shared by the CLI and the pytest benchmarks.

All timing goes through :data:`repro.obs.OBS` spans (``bench/build/*``,
``bench/query_batch``) — a span measures whether or not the registry
is enabled, and additionally records into the registry when it is, so
``OBS.capture()`` around a harness call yields benchmark timings and
the pipeline's phase spans in one place.
"""

from __future__ import annotations

import random

from repro.bench.metrics import BuildResult, QuerySeries
from repro.bench.workloads import METHOD_BUILDERS
from repro.graph.digraph import DiGraph
from repro.obs import OBS

__all__ = [
    "build_index",
    "build_all",
    "random_queries",
    "time_query_batch",
    "query_engine_smoke",
    "observer_smoke",
    "run_query_series",
]


def build_index(method: str, graph: DiGraph) -> BuildResult:
    """Build one method's index, timing it and measuring its size."""
    builder = METHOD_BUILDERS[method]
    with OBS.span(f"bench/build/{method}") as span:
        index = builder(graph)
    return BuildResult(method=method, index=index,
                       build_seconds=span.seconds,
                       size_words=index.size_words())


def build_all(graph: DiGraph, methods: list[str]) -> list[BuildResult]:
    """Build every requested method over the same graph."""
    return [build_index(method, graph) for method in methods]


def random_queries(graph: DiGraph, count: int,
                   seed: int = 0) -> list[tuple]:
    """``count`` random (source, target) node pairs.

    Mirrors the paper: "each query is a pair (x, y) to check whether
    node x is an ancestor of node y", drawn uniformly.
    """
    rng = random.Random(seed)
    nodes = graph.nodes()
    if not nodes:
        return []
    return [(rng.choice(nodes), rng.choice(nodes))
            for _ in range(count)]


def time_query_batch(index, queries: list[tuple]) -> float:
    """Accumulated seconds to answer every query in the batch.

    Indexes exposing ``is_reachable_many`` (the chain index) are timed
    through the batch engine — one call for the whole list; baseline
    methods without it fall back to the scalar loop.
    """
    batch = getattr(index, "is_reachable_many", None)
    if batch is not None:
        with OBS.span("bench/query_batch") as span:
            batch(queries)
        return span.seconds
    is_reachable = index.is_reachable
    with OBS.span("bench/query_batch") as span:
        for source, target in queries:
            is_reachable(source, target)
    return span.seconds


def query_engine_smoke(scale: float = 1.0, rounds: int = 5) -> dict:
    """Headline query-engine numbers on the perf-smoke workload.

    Builds the chain index over the Fig. 10 middle sparse instance and
    measures build time, scalar vs batch throughput (best of
    ``rounds``), label bytes and the pre-filter's share of negative
    queries.  Returns a plain dict — the shape written to
    ``BENCH_query.json`` by ``benchmarks/bench_query_smoke.py`` and
    rendered by the ``query-smoke`` experiment.
    """
    from repro.bench.workloads import query_counts, smoke_workload
    from repro.core.index import ChainIndex

    workload = smoke_workload(scale)
    graph = workload.graph
    with OBS.span("bench/build/ours") as span:
        index = ChainIndex.build(graph)
    build_seconds = span.seconds
    queries = random_queries(graph, 2 * max(query_counts(scale)),
                             seed=23)
    index.is_reachable_many(queries[:64])   # warm the batch kernel
    is_reachable = index.is_reachable
    scalar_best = batch_best = float("inf")
    for _ in range(max(1, rounds)):
        with OBS.span("bench/query_batch") as span:
            for source, target in queries:
                is_reachable(source, target)
        scalar_best = min(scalar_best, span.seconds)
        with OBS.span("bench/query_batch") as span:
            index.is_reachable_many(queries)
        batch_best = min(batch_best, span.seconds)
    with OBS.capture() as metrics:
        answers = index.is_reachable_many(queries)
    negatives = answers.count(False)
    prefilter_hits = metrics.counters.get("query/prefilter_hits", 0)
    scalar_qps = len(queries) / scalar_best if scalar_best else 0.0
    batch_qps = len(queries) / batch_best if batch_best else 0.0
    return {
        "workload": workload.label,
        "nodes": graph.num_nodes,
        "edges": graph.num_edges,
        "queries": len(queries),
        "build_seconds": build_seconds,
        "scalar_qps": scalar_qps,
        "batch_qps": batch_qps,
        "batch_speedup": batch_qps / scalar_qps if scalar_qps else 0.0,
        "label_bytes": index.label_bytes(),
        "size_words": index.size_words(),
        "negative_queries": negatives,
        "prefilter_hits": prefilter_hits,
        "prefilter_negative_share": (prefilter_hits / negatives
                                     if negatives else 0.0),
    }


def observer_smoke(scale: float = 1.0, rounds: int = 3) -> dict:
    """O(1)-answer ratio and speedup of the observer stack per engine.

    For each (workload, engine) case — the Fig. 10 sparse smoke
    instance behind the acceptance floor, the same instance over the
    index-free ``bfs`` engine (where skipping the fallback pays most),
    and the DSRG graph for breadth — builds the bare engine and its
    ``observed:`` wrapper over the same graph, checks the two agree on
    the whole query stream, then measures best-of-``rounds`` batch
    throughput for both and captures the observer counters.  Returns
    the dict merged into ``BENCH_query.json`` under ``"observers"`` by
    ``benchmarks/bench_observer_smoke.py``.
    """
    import repro.engine as engine_registry
    from repro.bench.workloads import group2_dsrg_graph, smoke_workload

    cases = [
        (smoke_workload(scale), "chain-stratified", 20_000),
        (smoke_workload(scale), "bfs", 4_000),
        (group2_dsrg_graph(scale), "chain-stratified", 20_000),
    ]
    rows = []
    for workload, engine_name, count in cases:
        graph = workload.graph
        bare = engine_registry.build(engine_name, graph)
        observed = engine_registry.build(f"observed:{engine_name}",
                                         graph)
        queries = random_queries(graph, count, seed=23)
        answers_match = (bare.is_reachable_many(queries)
                         == observed.is_reachable_many(queries))
        bare_best = observed_best = float("inf")
        for _ in range(max(1, rounds)):
            with OBS.span("bench/query_batch") as span:
                bare.is_reachable_many(queries)
            bare_best = min(bare_best, span.seconds)
            with OBS.span("bench/query_batch") as span:
                observed.is_reachable_many(queries)
            observed_best = min(observed_best, span.seconds)
        with OBS.capture() as metrics:
            observed.is_reachable_many(queries)
        hits = {name[len("observers/hit/"):]: value
                for name, value in metrics.counters.items()
                if name.startswith("observers/hit/")}
        misses = metrics.counters.get("observers/miss", 0)
        bare_qps = count / bare_best if bare_best else 0.0
        observed_qps = count / observed_best if observed_best else 0.0
        rows.append({
            "workload": workload.label,
            "engine": engine_name,
            "nodes": graph.num_nodes,
            "edges": graph.num_edges,
            "queries": count,
            "answers_match": answers_match,
            "bare_qps": bare_qps,
            "observed_qps": observed_qps,
            "speedup": (observed_qps / bare_qps) if bare_qps else 0.0,
            "o1_answer_ratio": (count - misses) / count if count
                               else 0.0,
            "observer_hits": hits,
            "observer_misses": misses,
        })
    return {
        "scale": scale,
        "workloads": rows,
        # the acceptance number: sparse workload, chain engine
        "sparse_o1_ratio": rows[0]["o1_answer_ratio"],
    }


def run_query_series(index, method: str, graph: DiGraph,
                     counts: list[int], seed: int = 0) -> QuerySeries:
    """Accumulated query time at each batch size (one figure line).

    The paper reports accumulated time over the first N of a fixed
    random query stream, so batches are prefixes of one stream.
    """
    series = QuerySeries(method=method, counts=list(counts))
    stream = random_queries(graph, max(counts) if counts else 0, seed)
    for count in counts:
        series.seconds.append(time_query_batch(index, stream[:count]))
    return series
