"""``repro-bench`` / ``python -m repro.bench`` — regenerate the paper's
tables and figures from the command line.

Examples::

    repro-bench table1
    repro-bench all --scale 0.5 --out results/
    repro-bench fig13 --scale 2
    repro-bench query-smoke          # scalar vs batch engine numbers
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from repro.bench.experiments import ALL_EXPERIMENTS

__all__ = ["main"]


def build_parser() -> argparse.ArgumentParser:
    """The repro-bench argument parser."""
    parser = argparse.ArgumentParser(
        prog="repro-bench",
        description="Reproduce the evaluation of Chen & Chen (ICDE 2008)")
    parser.add_argument(
        "experiment",
        choices=sorted(ALL_EXPERIMENTS) + ["all"],
        help="which table/figure to regenerate")
    parser.add_argument(
        "--scale", type=float, default=1.0,
        help="workload size multiplier (1.0 = the scaled defaults "
             "documented in EXPERIMENTS.md)")
    parser.add_argument(
        "--out", type=Path, default=None,
        help="directory to also write one report file per experiment")
    parser.add_argument(
        "--workers", type=int, default=0, metavar="N",
        help="serve-smoke only: also measure a WorkerPool at N worker "
             "processes against the single-process baseline")
    return parser


def main(argv: list[str] | None = None) -> int:
    """Entry point: run the chosen experiments, print/write reports."""
    args = build_parser().parse_args(argv)
    if args.experiment == "all":
        names = sorted(ALL_EXPERIMENTS)
    else:
        names = [args.experiment]
    for name in names:
        kwargs = {"scale": args.scale}
        if name == "serve-smoke" and args.workers:
            kwargs["workers"] = args.workers
        report = ALL_EXPERIMENTS[name](**kwargs)
        print(report)
        if args.out is not None:
            args.out.mkdir(parents=True, exist_ok=True)
            (args.out / f"{name}.txt").write_text(report,
                                                  encoding="utf-8")
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
