"""Sustained mixed read/write smoke for the dynamic-tol engine.

Two :class:`~repro.service.manager.IndexManager` instances serve the
same DAG and absorb the *same* operation stream — rounds of one edge
removal, one re-insertion and a burst of queries, every answer required
fresh (reflecting the write that precedes it):

* ``dynamic-tol`` — the total-order 2-hop shadow repairs its labels in
  place, so freshness is free (dynamic mode republishes on write);
* ``chain-stratified`` — the static path must rebuild-and-swap after
  each write burst before its snapshot reflects the removal, the cost
  model every non-``deletable`` engine pays for deletions.

Both managers' answers are compared per round, so the benchmark
doubles as an end-to-end equivalence check; the headline number is the
sustained ops/sec ratio (the CI gate in
``benchmarks/bench_dynamic_smoke.py`` requires >= 2x).
"""

from __future__ import annotations

import random
import time

from repro.graph.generators import semi_random_dag
from repro.service.manager import IndexManager

__all__ = ["dynamic_engine_smoke"]


def _workload(scale: float):
    """The Group II DSRG shape, scaled down to smoke size."""
    nodes = max(60, int(240 * scale))
    extra = max(30, int(120 * scale))
    graph = semi_random_dag(nodes, extra, seed=47)
    return graph, f"DSRG({graph.num_nodes} nodes, {graph.num_edges} arcs)"


def _rounds(scale: float) -> tuple[int, int]:
    """(rounds, queries per round)."""
    return max(8, int(24 * scale)), max(40, int(160 * scale))


def _run_stream(manager: IndexManager, plan, *, swap_each: bool):
    """Drive one manager through the op stream; returns (seconds,
    answers per round) with every query answered post-write."""
    answers = []
    started = time.perf_counter()
    for tail, head, pairs in plan:
        manager.remove_edge(tail, head)
        manager.add_edge(tail, head, create=False)
        if swap_each:
            manager.swap(force=True)
        answers.append(manager.query_many(pairs)[1])
    return time.perf_counter() - started, answers


def dynamic_engine_smoke(scale: float = 1.0) -> dict:
    """Measure in-place maintenance vs rebuild-and-swap, one dict."""
    graph, label = _workload(scale)
    rounds, queries = _rounds(scale)
    rng = random.Random(53)
    nodes = graph.nodes()
    edges = list(graph.edges())
    plan = []
    for i in range(rounds):
        tail, head = edges[rng.randrange(len(edges))]
        pairs = [(rng.choice(nodes), rng.choice(nodes))
                 for _ in range(queries)]
        plan.append((tail, head, pairs))

    tol = IndexManager.from_graph(graph, engine="dynamic-tol")
    static = IndexManager.from_graph(graph, engine="chain-stratified")
    try:
        tol_seconds, tol_answers = _run_stream(tol, plan,
                                               swap_each=False)
        static_seconds, static_answers = _run_stream(static, plan,
                                                     swap_each=True)
        mismatches = sum(
            1 for mine, theirs in zip(tol_answers, static_answers)
            if mine != theirs)
        ops = rounds * (2 + queries)
        tol_ops = ops / tol_seconds
        static_ops = ops / static_seconds
        return {
            "workload": label,
            "rounds": rounds,
            "queries_per_round": queries,
            "ops": ops,
            "writes": rounds * 2,
            "mismatched_rounds": mismatches,
            "dynamic_tol_ops_per_sec": tol_ops,
            "rebuild_swap_ops_per_sec": static_ops,
            "speedup": tol_ops / static_ops,
            "dynamic_tol_seconds": tol_seconds,
            "rebuild_swap_seconds": static_seconds,
            "label_entries": tol.snapshot.backend.label_entries(),
            "size_words": tol.snapshot.backend.size_words(),
            "rebuild_swaps": static.swap_count,
            "final_epochs": {"dynamic-tol": tol.epoch,
                             "chain-stratified": static.epoch},
        }
    finally:
        tol.close()
        static.close()
