"""Supporting-point observer (positive *and* negative short-circuits).

O'Reach's strongest idea: pick a handful of high-coverage *supporting
points* (pivots) and precompute, for each pivot ``s``, its full
descendant set ``R+(s)`` and ancestor set ``R-(s)``.  Three O(1) rules
then follow for a query ``u ⇝ v?``:

* **positive** — ``u ∈ R-(s)`` and ``v ∈ R+(s)`` for any pivot:
  ``u ⇝ s ⇝ v``, answer ``True``;
* **negative, forward** — ``u ∈ R+(s)`` but ``v ∉ R+(s)``: were
  ``u ⇝ v`` true then ``s ⇝ u ⇝ v`` would put ``v`` in ``R+(s)``,
  answer ``False``;
* **negative, backward** — ``v ∈ R-(s)`` but ``u ∉ R-(s)``:
  symmetric through ``v ⇝ s``, answer ``False``.

Membership is stored as one bitmask int per node per direction
(pivot ``i`` sets bit ``i``), so all three rules are two AND/AND-NOT
operations per query regardless of the pivot count.

Pivots are chosen greedily from the highest-degree candidates by the
product ``|R-(s) \\ covered| · |R+(s) \\ covered|`` — the marginal
number of ancestor/descendant slots a pivot adds to the already-picked
set — which approximates maximising the number of positive pairs the
observer can certify.  Preparation costs one forward and one backward
BFS per candidate, ``O(c·(n + e))``.
"""

from __future__ import annotations

__all__ = ["SupportingPointsObserver"]


def _reach_set(start: int, adjacency: list[list[int]]) -> set[int]:
    """Ids reachable from ``start`` (inclusive) over ``adjacency``."""
    seen = {start}
    frontier = [start]
    while frontier:
        next_frontier = []
        for node in frontier:
            for child in adjacency[node]:
                if child not in seen:
                    seen.add(child)
                    next_frontier.append(child)
        frontier = next_frontier
    return seen


class SupportingPointsObserver:
    """Bitmask reachability through greedy high-coverage pivots."""

    name = "supporting-points"
    answers = "both"
    kind = "supporting"

    def __init__(self, pivots: int = 32, candidates: int = 128) -> None:
        if pivots < 1:
            raise ValueError("SupportingPointsObserver needs >= 1 pivot")
        self.max_pivots = pivots
        self.max_candidates = max(pivots, candidates)
        self.pivot_ids: list[int] = []
        #: bit ``i`` set on node ``v`` iff ``v ∈ R+(pivot_i)``
        self.reached_mask: list[int] = []
        #: bit ``i`` set on node ``v`` iff ``v ∈ R-(pivot_i)``
        self.reaches_mask: list[int] = []

    def prepare(self, source) -> None:
        from repro.observers.interface import resolve_dag
        dag = resolve_dag(source)
        n = dag.num_nodes
        adjacency = dag.adjacency()
        reverse = dag.reverse_adjacency()
        by_degree = sorted(
            range(n),
            key=lambda v: -(len(adjacency[v]) + 1)
                          * (len(reverse[v]) + 1))
        candidates = by_degree[:self.max_candidates]
        sets = [(_reach_set(c, reverse), _reach_set(c, adjacency))
                for c in candidates]
        picked: list[int] = []
        covered_anc: set[int] = set()
        covered_desc: set[int] = set()
        remaining = list(range(len(candidates)))
        while remaining and len(picked) < self.max_pivots:
            best, best_score = None, 0
            for i in remaining:
                anc, desc = sets[i]
                score = (len(anc - covered_anc)
                         * len(desc - covered_desc))
                if score > best_score:
                    best, best_score = i, score
            if best is None:        # nothing adds coverage any more
                break
            remaining.remove(best)
            picked.append(best)
            covered_anc |= sets[best][0]
            covered_desc |= sets[best][1]
        reached_mask = [0] * n
        reaches_mask = [0] * n
        pivot_ids = []
        for bit, i in enumerate(picked):
            anc, desc = sets[i]
            pivot_ids.append(candidates[i])
            flag = 1 << bit
            for v in desc:
                reached_mask[v] |= flag
            for v in anc:
                reaches_mask[v] |= flag
        self.pivot_ids = pivot_ids
        self.reached_mask = reached_mask
        self.reaches_mask = reaches_mask

    def query(self, u: int, v: int):
        reached = self.reached_mask
        reaches = self.reaches_mask
        if reaches[u] & reached[v]:
            return True
        if reached[u] & ~reached[v]:
            return False
        if reaches[v] & ~reaches[u]:
            return False
        return None

    def size_words(self) -> int:
        return len(self.reached_mask) + len(self.reaches_mask)

    def tables(self) -> tuple[list[int], list[int]]:
        """``(reaches_mask, reached_mask)`` for the fused loop."""
        return self.reaches_mask, self.reached_mask

    def __repr__(self) -> str:
        return (f"<SupportingPointsObserver pivots="
                f"{len(self.pivot_ids)}/{self.max_pivots}>")
