"""The ``Observer`` protocol: O(1) oracles consulted before the index.

O'Reach (Hanauer, Schulz & Trobst, SEA 2020) makes one observation the
chain index cannot exploit on its own: on real graphs the vast
majority of reachability queries — positive *and* negative — can be
settled in constant time by a small stack of cheap certificates,
leaving only a thin residue for the index's O(log b) binary search.
An *observer* is one such certificate family:

* ``prepare(source)`` builds the observer's tables from either a DAG
  (a :class:`~repro.graph.digraph.DiGraph` whose nodes are the dense
  ints ``0..n-1`` — in practice an SCC condensation DAG) or a built
  :class:`~repro.core.index.ChainIndex` (observers that can reuse the
  index's packed certificate arrays do so instead of recomputing);
* ``query(u, v)`` takes two *distinct* dense node ids of the prepared
  DAG and answers ``True`` (definitely reachable), ``False``
  (definitely not) or ``None`` (this observer cannot tell).

The soundness contract is absolute: an observer may always say
``None``, but a ``True``/``False`` answer must never be wrong — the
test suite checks every registered observer against a BFS oracle on
random DAGs.  Reflexive pairs (``u == v``, which after condensation
also covers same-SCC pairs) are answered by the
:class:`~repro.observers.chain.ObserverChain` itself and never reach
an observer.

``answers`` declares which short-circuits an observer can produce —
``"negative"`` or ``"both"`` — so the chain's documentation table and
the per-observer guarantee tests are driven by the same metadata.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Protocol, runtime_checkable

__all__ = ["Observer", "ObserverSpec", "resolve_dag"]


@runtime_checkable
class Observer(Protocol):
    """One O(1)-answer certificate family (see module docstring)."""

    name: str       #: kebab-case identity, used in metric names
    answers: str    #: ``"negative"`` or ``"both"``

    def prepare(self, source) -> None:
        """Build the tables from a dense-int DAG or a ``ChainIndex``."""

    def query(self, u: int, v: int):
        """``True`` / ``False`` / ``None`` for distinct prepared ids."""

    def size_words(self) -> int:
        """Table size in the paper's 16-bit-word unit (ints counted
        as one word each, matching ``ChainLabeling.size_words``)."""


@dataclass(frozen=True)
class ObserverSpec:
    """Registry row for one observer: identity, guarantees, costs.

    ``docs/OBSERVERS.md`` renders these rows as the per-observer
    guarantee table and ``tests/test_docs.py`` diffs the two, so a new
    observer must be registered (and documented) before it ships.
    ``factory`` builds an *unprepared* instance with default
    parameters.
    """

    name: str
    answers: str        #: "negative" | "both"
    prepare_cost: str   #: big-O of prepare(), as documented
    memory: str         #: table footprint, as documented
    factory: Callable[[], "Observer"]
    description: str


def resolve_dag(source):
    """The dense-int DAG behind ``source`` (DiGraph or ChainIndex).

    Observers that cannot reuse a ``ChainIndex``'s packed arrays call
    this to prepare from the index's condensation DAG instead; a plain
    ``DiGraph`` is returned unchanged.
    """
    condensation = getattr(source, "_condensation", None)
    if condensation is not None:
        return condensation.dag
    return source
