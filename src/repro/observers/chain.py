"""``ObserverChain`` — the O(1)-answer stack in front of any engine.

Wraps one :class:`~repro.engine.interface.ReachabilityEngine` and a
list of prepared :class:`~repro.observers.interface.Observer`
instances.  A query runs down the chain — reflexive test, then each
observer in order — and touches the wrapped engine only when every
observer answers ``None``; on workloads where most queries are
O(1)-answerable (O'Reach measures >95% on real graphs) the engine's
binary search, hash probes or BFS become the rare path.

The wrapper is itself an engine: ``name`` is ``observed:<inner>``,
the five capability flags are inherited from the inner engine, and
every attribute the inner engine exposes (``descendants``,
``prefilter_rejects``, ``graph``, ...) stays reachable through
``__getattr__`` forwarding — so the serving stack, persistence and the
CLI treat an observed engine exactly like its bare counterpart.

Batch queries get a *fused* fast path: when the node labels are the
dense ints ``0..n-1`` (the benchmark families) the chain flattens
every observer's tables into per-label lists and answers the whole
batch in one loop with zero function calls per pair, handing only the
unresolved residue to the inner engine's ``is_reachable_many`` — the
filter-before-the-kernel integration the micro-batcher inherits for
free.  When the inner engine is a static chain index the residue does
not even leave the loop: the index's flat binary-search probe is
inlined, so an observed chain engine pays the translation cost once
instead of twice.  Other label types or custom observer stacks take
the generic per-observer path with the same semantics.

Metrics (when :data:`repro.obs.OBS` is enabled): one
``observers/hit/{observer}`` counter per observer (plus the chain's
own ``observers/hit/reflexive``), ``observers/miss`` for fall-
throughs, the ``observers/o1_answer_ratio`` gauge per batch, and —
because the topological and level observers are exactly the PR 2
rank/level pre-filter lifted out of the index kernel — their hits are
*also* counted as ``query/prefilter_hits``, so existing dashboards
keep attributing rank/level rejections wherever they fire.
"""

from __future__ import annotations

from bisect import bisect_left
from typing import Iterable

from repro.graph.scc import condense
from repro.obs import OBS

__all__ = ["ObserverChain"]

#: fused-loop evaluation order; must match ``default_observers``
_FUSED_KINDS = ("topo", "level", "supporting", "multi-dfs")


class ObserverChain:
    """An engine wrapper answering most queries in O(1) (see module)."""

    def __init__(self, inner, observers, component_of,
                 graph=None) -> None:
        self.inner = inner
        self.observers = list(observers)
        self.name = f"observed:{inner.name}"
        self.supports_batch = getattr(inner, "supports_batch", False)
        self.writable = getattr(inner, "writable", False)
        self.persistable = getattr(inner, "persistable", False)
        self.enumerable = getattr(inner, "enumerable", False)
        self.deletable = getattr(inner, "deletable", False)
        self._component_of = component_of
        self._graph = graph
        self._fused = None       # lazily built per-label tables
        self._fused_ready = False
        self._dirty = False

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    @classmethod
    def wrap(cls, graph, inner, observers=None) -> "ObserverChain":
        """Prepare ``observers`` (default stack) in front of ``inner``.

        Reuses the inner engine's SCC condensation when it exposes one
        (chain and baseline engines do); otherwise condenses ``graph``
        once and shares the result across the stack.  Each prepare is
        timed under ``observers/prepare/{observer}``.
        """
        if observers is None:
            from repro.observers import default_observers
            observers = default_observers()
        index = getattr(inner, "index", None)
        source = index if _is_chain_index(index) else None
        if source is not None:
            condensation = source._condensation  # noqa: SLF001
        else:
            condensation = getattr(inner, "condensation", None)
            if condensation is None:
                if graph is None:
                    raise ValueError(
                        "ObserverChain.wrap needs a graph when the "
                        "inner engine exposes no condensation")
                condensation = condense(graph)
        chain = cls(inner, observers, condensation.component_of,
                    graph=graph)
        chain._prepare(source if source is not None
                       else condensation.dag)
        return chain

    def _prepare(self, source) -> None:
        for observer in self.observers:
            with OBS.span(f"observers/prepare/{observer.name}"):
                observer.prepare(source)
        self._fused = None
        self._fused_ready = False
        self._dirty = False

    def _reprepare(self) -> None:
        """Rebuild translation + observer tables after a write."""
        graph = getattr(self.inner, "graph", None)
        if graph is None:
            graph = self._graph
        if graph is None:
            raise RuntimeError(
                f"{self.name}: cannot re-prepare observers — the "
                f"inner engine exposes no graph")
        condensation = condense(graph)
        self._component_of = condensation.component_of
        self._prepare(condensation.dag)

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def is_reachable(self, source, target) -> bool:
        """Same contract as the inner engine; observers first."""
        if self._dirty:
            self._reprepare()
        component_of = self._component_of
        try:
            u = component_of[source]
            v = component_of[target]
        except (KeyError, TypeError):
            # unknown operand: the inner engine raises the proper
            # NodeNotFoundError with its role attribution
            return self.inner.is_reachable(source, target)
        counting = OBS.enabled
        if u == v:
            if counting:
                self._publish({"reflexive": 1}, miss=0, total=1)
            return True
        for observer in self.observers:
            answer = observer.query(u, v)
            if answer is not None:
                if counting:
                    lifted = getattr(observer, "kind", "") in (
                        "topo", "level")
                    self._publish(
                        {observer.name: 1}, miss=0, total=1,
                        prefilter=1 if answer is False and lifted
                        else 0)
                return answer
        if counting:
            self._publish({}, miss=1, total=1)
        return self.inner.is_reachable(source, target)

    def is_reachable_many(self, pairs: Iterable[tuple]) -> list[bool]:
        """Batch queries: O(1)-answer what the observers can, then one
        inner-engine batch over the residue (order preserved)."""
        if not isinstance(pairs, list):
            pairs = list(pairs)
        if self._dirty:
            self._reprepare()
        if not self._fused_ready:
            self._fused = self._build_fused_tables()
            self._fused_ready = True
        if self._fused is not None:
            try:
                return self._fused_batch(pairs)
            except (IndexError, KeyError, TypeError):
                # out-of-range or non-int label: let the inner engine
                # produce its NodeNotFoundError (or answer, if it can)
                return self.inner.is_reachable_many(pairs)
        return self._generic_batch(pairs)

    def _generic_batch(self, pairs: list[tuple]) -> list[bool]:
        component_of = self._component_of
        observers = [(observer.query, observer.name,
                      getattr(observer, "kind", ""))
                     for observer in self.observers]
        answers: list = [False] * len(pairs)
        residual: list[tuple] = []
        residual_at: list[int] = []
        hits: dict[str, int] = {}
        prefilter = 0
        for i, (source, target) in enumerate(pairs):
            try:
                u = component_of[source]
                v = component_of[target]
            except (KeyError, TypeError):
                return self.inner.is_reachable_many(pairs)
            if u == v:
                answers[i] = True
                hits["reflexive"] = hits.get("reflexive", 0) + 1
                continue
            for query, name, kind in observers:
                answer = query(u, v)
                if answer is not None:
                    answers[i] = answer
                    hits[name] = hits.get(name, 0) + 1
                    if answer is False and kind in ("topo", "level"):
                        prefilter += 1
                    break
            else:
                residual.append((source, target))
                residual_at.append(i)
        return self._finish_batch(pairs, answers, residual,
                                  residual_at, hits, prefilter)

    def _fused_batch(self, pairs: list[tuple]) -> list[bool]:
        (rank, rrank, level, runs, reaches, reached,
         kernel) = self._fused
        component_of = self._component_of
        has_topo = rank is not None
        has_level = level is not None
        has_pivots = reaches is not None
        if kernel is not None:
            (kernel_chain, kernel_position, kernel_lo, kernel_hi,
             kernel_chains, kernel_positions) = kernel
        bisect = bisect_left
        answers: list = [False] * len(pairs)
        residual: list[tuple] = []
        residual_at: list[int] = []
        reflexive = topo = levels = dfs = pivots = probes = 0
        for i, (u, v) in enumerate(pairs):
            if (u | v) < 0:         # negatives would wrap around
                raise IndexError
            if has_topo:
                # One comparison settles most pairs: ranks are unique
                # per component, so rank(u) >= rank(v) means same
                # component (True) or a topological-order violation
                # (False) — the same fold the bare index kernel uses.
                u_rank = rank[u]
                v_rank = rank[v]
                if u_rank >= v_rank:
                    if u_rank == v_rank:
                        answers[i] = True
                        reflexive += 1
                    else:
                        topo += 1           # answers[i] stays False
                    continue
                if rrank[u] <= rrank[v]:
                    topo += 1
                    continue
            elif u == v or component_of[u] == component_of[v]:
                answers[i] = True
                reflexive += 1
                continue
            if has_level and level[u] <= level[v]:
                levels += 1
                continue
            if has_pivots:
                if reaches[u] & reached[v]:
                    answers[i] = True
                    pivots += 1
                    continue
                if reached[u] & ~reached[v] \
                        or reaches[v] & ~reaches[u]:
                    pivots += 1
                    continue
            rejected = False
            for post, low in runs:
                if post[v] > post[u] or low[v] < low[u]:
                    rejected = True
                    break
            if rejected:
                dfs += 1
                continue
            if kernel is None:
                residual.append((u, v))
                residual_at.append(i)
                continue
            # Inline the chain index's exact label probe — the index
            # sequence test is complete without its own pre-filters,
            # which the observers above have already applied — so a
            # residual pair costs one binary search, not a second
            # translation pass through the inner engine.
            target_chain = kernel_chain[v]
            hi = kernel_hi[u]
            index = bisect(kernel_chains, target_chain,
                           kernel_lo[u], hi)
            if (index != hi and kernel_chains[index] == target_chain
                    and kernel_positions[index]
                    <= kernel_position[v]):
                answers[i] = True
            probes += 1
        hits = {}
        if reflexive:
            hits["reflexive"] = reflexive
        if topo:
            hits["topo-interval"] = topo
        if levels:
            hits["level-bound"] = levels
        if dfs:
            hits["multi-dfs"] = dfs
        if pivots:
            hits["supporting-points"] = pivots
        return self._finish_batch(pairs, answers, residual,
                                  residual_at, hits, topo + levels,
                                  probes)

    def _finish_batch(self, pairs, answers, residual, residual_at,
                      hits, prefilter, probes: int = 0) -> list[bool]:
        if residual:
            for i, answer in zip(residual_at,
                                 self.inner.is_reachable_many(residual)):
                answers[i] = answer
        if OBS.enabled:
            self._publish(hits, miss=len(residual) + probes,
                          total=len(pairs), prefilter=prefilter,
                          probes=probes)
        return answers

    def _publish(self, hits: dict, miss: int, total: int,
                 prefilter: int = 0, probes: int = 0) -> None:
        count = OBS.count
        answered = 0
        for name, value in hits.items():
            count(f"observers/hit/{name}", value)
            answered += value
        if miss:
            count("observers/miss", miss)
        if probes:
            # Inline-probed residuals: the chain answered them with the
            # inner index's own binary search, so it also owns the
            # index-side bookkeeping the delegated path would have done.
            count("query/probes", probes)
        if answered or probes:
            count("query/answered", answered + probes)
        if prefilter:
            count("query/prefilter_hits", prefilter)
        if total:
            OBS.gauge("observers/o1_answer_ratio", answered / total)

    # ------------------------------------------------------------------
    # fused tables
    # ------------------------------------------------------------------
    def _build_fused_tables(self):
        """Per-label observer tables, or ``None`` if inapplicable.

        Requires dense int labels ``0..n-1`` and the default observer
        stack (any subset, in :data:`_FUSED_KINDS` order); every
        observer's id-indexed tables are re-indexed by node label so
        the batch loop runs without dict hops or method calls.
        """
        component_of = self._component_of
        count = len(component_of)
        for label in component_of:
            if type(label) is not int or not 0 <= label < count:
                return None
        kinds = [getattr(observer, "kind", None)
                 for observer in self.observers]
        expected = [kind for kind in _FUSED_KINDS if kind in kinds]
        if kinds != expected:
            return None
        by_kind = {observer.kind: observer
                   for observer in self.observers}
        items = sorted(component_of.items())

        def relabel(table):
            return [table[component] for _, component in items]

        rank = rrank = level = reaches = reached = None
        runs: list[tuple[list[int], list[int]]] = []
        if "topo" in by_kind:
            rank_ids, rrank_ids = by_kind["topo"].tables()
            rank, rrank = relabel(rank_ids), relabel(rrank_ids)
        if "level" in by_kind:
            level = relabel(by_kind["level"].tables())
        if "multi-dfs" in by_kind:
            runs = [(relabel(post), relabel(low))
                    for post, low in by_kind["multi-dfs"].tables()]
        if "supporting" in by_kind:
            reaches_ids, reached_ids = by_kind["supporting"].tables()
            reaches, reached = relabel(reaches_ids), relabel(reached_ids)
        return (rank, rrank, level, runs, reaches, reached,
                self._inner_kernel())

    def _inner_kernel(self):
        """The inner chain index's flat probe tables, if it has them.

        When the inner engine is backed by a (static, immutable)
        :class:`~repro.core.index.ChainIndex` whose flat kernel
        applies, the fused loop answers residual pairs with the
        index's own binary-search probe inline instead of collecting
        them for a second ``is_reachable_many`` pass — the observers
        have already applied the rank/level pre-filters, and the
        label-sequence test is exact on its own for distinct-component
        pairs.
        """
        index = getattr(self.inner, "index", None)
        if not _is_chain_index(index):
            return None
        if index._kernel is None:            # noqa: SLF001
            index.is_reachable_many([])      # force the lazy build
        kernel = index._kernel               # noqa: SLF001
        if kernel.tables is None or kernel.codec != "packed":
            # compressed kernels probe through a varint decode, not a
            # bisect — residual pairs go through the generic second
            # pass instead of the inlined probe.
            return None
        (_rank_of, _level_of, chain_of, position_of,
         seq_lo, seq_hi, seq_chains, seq_positions) = kernel.tables
        return (chain_of, position_of, seq_lo, seq_hi,
                seq_chains, seq_positions)

    # ------------------------------------------------------------------
    # writes (only when the inner engine is writable)
    # ------------------------------------------------------------------
    def add_edge(self, *args, **kwargs):
        """Delegate the write, then re-prepare observers lazily.

        An inserted edge can only *add* reachable pairs, so every
        prepared negative certificate could now be wrong — the chain
        marks itself dirty and rebuilds all observer tables from the
        inner engine's current graph on the next query.
        """
        result = self.inner.add_edge(*args, **kwargs)
        self._dirty = True
        return result

    def add_node(self, *args, **kwargs):
        """Delegate the write; new nodes also need fresh tables."""
        result = self.inner.add_node(*args, **kwargs)
        self._dirty = True
        return result

    def remove_edge(self, *args, **kwargs):
        """Delegate the removal, then re-prepare observers lazily.

        A removed edge can only *lose* reachable pairs, so every
        prepared positive certificate (supporting points) could now
        be wrong — without the dirty mark the ``__getattr__``
        forwarding would silently bypass the chain's tables and keep
        answering from stale certificates.
        """
        result = self.inner.remove_edge(*args, **kwargs)
        self._dirty = True
        return result

    def remove_node(self, *args, **kwargs):
        """Delegate the removal; gone nodes also need fresh tables."""
        result = self.inner.remove_node(*args, **kwargs)
        self._dirty = True
        return result

    # ------------------------------------------------------------------
    # introspection / forwarding
    # ------------------------------------------------------------------
    def size_words(self) -> int:
        """Inner index size plus every observer table, in 16-bit words."""
        return self.inner.size_words() + sum(
            observer.size_words() for observer in self.observers)

    def describe(self) -> dict:
        """Stats payload: the inner engine's, plus the observer stack."""
        from repro.engine.interface import capabilities
        return {"engine": self.name,
                "capabilities": capabilities(self),
                "size_words": self.size_words(),
                "inner": self.inner.name,
                "observers": [observer.name
                              for observer in self.observers]}

    def __getattr__(self, attr):
        try:
            inner = self.__dict__["inner"]
        except KeyError:             # mid-unpickle: no attrs yet
            raise AttributeError(attr) from None
        return getattr(inner, attr)

    def __repr__(self) -> str:
        return (f"<ObserverChain inner={self.inner.name!r} observers="
                f"{[observer.name for observer in self.observers]}>")


def _is_chain_index(index) -> bool:
    from repro.core.index import ChainIndex
    return isinstance(index, ChainIndex)
