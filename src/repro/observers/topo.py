"""Topological-order interval observer (negative short-circuits).

The cheapest certificate there is: fix a topological order of the DAG
and ``u ⇝ v`` with ``u ≠ v`` forces ``rank(u) < rank(v)``.  One
comparison rejects roughly half of all random negative pairs.  This
observer carries *two* orders — the forward order and a topological
order of the reversed DAG — so a pair must be consistent with both
before it can fall through, which is O'Reach's "topological interval"
test written as two rank comparisons:

* forward: ``rank(u) >= rank(v)`` → not reachable;
* reverse:  ``u ⇝ v`` means ``v ⇝ u`` in the reversed DAG, so
  ``rrank(v) < rrank(u)``; ``rrank(u) <= rrank(v)`` → not reachable.

Prepared from a :class:`~repro.core.index.ChainIndex` the forward
ranks are reused from the packed ``rank_of`` certificate array (this
is the PR 2 pre-filter's rank half, lifted out of the index kernel
into the chain); the reverse order is computed once from the
condensation DAG.
"""

from __future__ import annotations

from repro.graph.topology import topological_order_ids
from repro.observers.interface import resolve_dag

__all__ = ["TopologicalIntervalObserver"]


class TopologicalIntervalObserver:
    """Forward + reverse topological ranks; answers negatives only."""

    name = "topo-interval"
    answers = "negative"
    kind = "topo"

    def __init__(self) -> None:
        self.rank_of: list[int] = []
        self.reverse_rank_of: list[int] = []

    def prepare(self, source) -> None:
        dag = resolve_dag(source)
        labeling = getattr(source, "_labeling", None)
        if labeling is not None:
            rank_of = list(labeling.rank_of)
        else:
            order = topological_order_ids(dag)
            rank_of = [0] * dag.num_nodes
            for rank, node in enumerate(order):
                rank_of[node] = rank
        reverse_order = topological_order_ids(dag.reversed())
        reverse_rank_of = [0] * dag.num_nodes
        for rank, node in enumerate(reverse_order):
            reverse_rank_of[node] = rank
        self.rank_of = rank_of
        self.reverse_rank_of = reverse_rank_of

    def query(self, u: int, v: int):
        if self.rank_of[u] >= self.rank_of[v]:
            return False
        if self.reverse_rank_of[u] <= self.reverse_rank_of[v]:
            return False
        return None

    def size_words(self) -> int:
        return len(self.rank_of) + len(self.reverse_rank_of)

    def tables(self) -> tuple[list[int], list[int]]:
        """``(rank_of, reverse_rank_of)`` for the chain's fused loop."""
        return self.rank_of, self.reverse_rank_of

    def __repr__(self) -> str:
        return f"<TopologicalIntervalObserver n={len(self.rank_of)}>"
