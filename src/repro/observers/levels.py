"""Stratification-level observer (negative short-circuits).

The other half of the PR 2 pre-filter, lifted out of the
:class:`~repro.core.index.ChainIndex` kernel into the observer chain:
``level(v)`` is the 1-based longest-path distance from ``v`` to a sink
(the paper's stratification level), and a directed path strictly
descends through the strata, so ``u ⇝ v`` with ``u ≠ v`` forces
``level(u) > level(v)``.  Unlike the rank test this rejects pairs in
*both* orientations of a level tie, which is why rank and level
together reject far more than either alone.

Prepared from a :class:`~repro.core.index.ChainIndex` the levels are
reused from the packed ``level_of`` certificate array; prepared from a
DAG they are recomputed with one reverse-topological sweep.
"""

from __future__ import annotations

from repro.graph.topology import topological_order_ids
from repro.observers.interface import resolve_dag

__all__ = ["LevelObserver", "sink_levels"]


def sink_levels(dag) -> list[int]:
    """1-based longest-path-to-a-sink level per node id."""
    level_of = [1] * dag.num_nodes
    for v in reversed(topological_order_ids(dag)):
        for w in dag.successor_ids(v):
            if level_of[w] + 1 > level_of[v]:
                level_of[v] = level_of[w] + 1
    return level_of


class LevelObserver:
    """Longest-path-to-sink levels; answers negatives only."""

    name = "level-bound"
    answers = "negative"
    kind = "level"

    def __init__(self) -> None:
        self.level_of: list[int] = []

    def prepare(self, source) -> None:
        labeling = getattr(source, "_labeling", None)
        if labeling is not None:
            self.level_of = list(labeling.level_of)
        else:
            self.level_of = sink_levels(resolve_dag(source))

    def query(self, u: int, v: int):
        if self.level_of[u] <= self.level_of[v]:
            return False
        return None

    def size_words(self) -> int:
        return len(self.level_of)

    def tables(self) -> list[int]:
        """``level_of`` for the chain's fused loop."""
        return self.level_of

    def __repr__(self) -> str:
        return f"<LevelObserver n={len(self.level_of)}>"
