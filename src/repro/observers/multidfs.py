"""Randomised multi-DFS interval observer (negative short-circuits).

The GRAIL-style interval labelling O'Reach leans on for the negatives
that survive the order tests: one depth-first traversal of the DAG
(random start order, random successor order) assigns every node a
post-order number ``post[v]`` and a reach-low ``low[v]`` — the
smallest post-order number among everything ``v`` reaches, itself
included.  ``u ⇝ v`` then forces the interval containment
``[low(v), post(v)] ⊆ [low(u), post(u)]``:

* ``reach(v) ⊆ reach(u)``, so ``low(u) <= low(v)``;
* on a DAG every node reachable from ``u`` is finished before ``u``
  finishes (an edge into a gray node would close a cycle), so
  ``post(v) < post(u)``.

A pair violating either inequality in *any* run is definitely
unreachable.  Runs are independent coin flips — each random traversal
rejects a different slice of the hard negatives — so a handful of runs
(default 3) compound; memory is two ints per node per run.

``low`` is computed with a reverse-topological sweep over *all* edges
(not just tree edges), which is what makes the containment exact on
DAGs rather than merely tree-respecting.
"""

from __future__ import annotations

import random

from repro.graph.topology import topological_order_ids
from repro.observers.interface import resolve_dag

__all__ = ["MultiDFSObserver"]


class MultiDFSObserver:
    """``runs`` random DFS interval labellings; answers negatives."""

    name = "multi-dfs"
    answers = "negative"
    kind = "multi-dfs"

    def __init__(self, runs: int = 4, seed: int = 0x5EED) -> None:
        if runs < 1:
            raise ValueError("MultiDFSObserver needs at least one run")
        self.runs = runs
        self.seed = seed
        #: per run: ``(post, low)`` lists indexed by node id
        self.intervals: list[tuple[list[int], list[int]]] = []

    def prepare(self, source) -> None:
        dag = resolve_dag(source)
        n = dag.num_nodes
        adjacency = dag.adjacency()
        reverse_topo = list(reversed(topological_order_ids(dag)))
        rng = random.Random(self.seed)
        self.intervals = [
            self._one_run(n, adjacency, reverse_topo, rng)
            for _ in range(self.runs)]

    @staticmethod
    def _one_run(n: int, adjacency: list[list[int]],
                 reverse_topo: list[int],
                 rng: random.Random) -> tuple[list[int], list[int]]:
        starts = list(range(n))
        rng.shuffle(starts)
        post = [0] * n
        visited = [False] * n
        counter = 0
        for start in starts:
            if visited[start]:
                continue
            # Iterative DFS; each frame carries a shuffled successor
            # list and the position reached in it.
            succ = adjacency[start][:]
            rng.shuffle(succ)
            stack: list[tuple[int, list[int], int]] = [(start, succ, 0)]
            visited[start] = True
            while stack:
                node, successors, pos = stack[-1]
                advanced = False
                while pos < len(successors):
                    child = successors[pos]
                    pos += 1
                    if not visited[child]:
                        stack[-1] = (node, successors, pos)
                        child_succ = adjacency[child][:]
                        rng.shuffle(child_succ)
                        stack.append((child, child_succ, 0))
                        visited[child] = True
                        advanced = True
                        break
                if advanced:
                    continue
                stack.pop()
                post[node] = counter
                counter += 1
        low = post[:]
        for v in reverse_topo:
            lv = low[v]
            for w in adjacency[v]:
                if low[w] < lv:
                    lv = low[w]
            low[v] = lv
        return post, low

    def query(self, u: int, v: int):
        for post, low in self.intervals:
            if post[v] > post[u] or low[v] < low[u]:
                return False
        return None

    def size_words(self) -> int:
        return sum(len(post) + len(low)
                   for post, low in self.intervals)

    def tables(self) -> list[tuple[list[int], list[int]]]:
        """The per-run ``(post, low)`` pairs for the fused loop."""
        return self.intervals

    def __repr__(self) -> str:
        n = len(self.intervals[0][0]) if self.intervals else 0
        return f"<MultiDFSObserver runs={self.runs} n={n}>"
