"""repro.observers — O(1)-answer observers in front of every engine.

O'Reach (PAPERS.md: "O'Reach: Even Faster Reachability in Large
Graphs") shows that on real graphs the vast majority of reachability
queries can be settled in constant time by a small stack of cheap
certificates, with the index as fallback.  This package generalises
the PR 2 rank/level negative pre-filter into that composable stack:

* :class:`~repro.observers.interface.Observer` — the protocol: a
  ``prepare(graph_or_index)`` table build plus an O(1)
  ``query(u, v) -> True | False | None``, where a non-``None`` answer
  must never be wrong;
* four shipped observers — :class:`TopologicalIntervalObserver`,
  :class:`LevelObserver`, :class:`MultiDFSObserver`,
  :class:`SupportingPointsObserver` — registered in
  :data:`OBSERVER_SPECS` (the table ``docs/OBSERVERS.md`` is
  doc-linted against);
* :class:`~repro.observers.chain.ObserverChain` — runs observers in
  order in front of any registered engine, with a fused batch loop
  that filters O(1)-answerable pairs before the kernel call.

The engine registry exposes the chain as ``observed:<engine>``
(``import repro.engine as engine; engine.build("observed:bfs", g)``),
and the CLI as ``--observers on``.
"""

from __future__ import annotations

from repro.observers.chain import ObserverChain
from repro.observers.interface import Observer, ObserverSpec
from repro.observers.levels import LevelObserver
from repro.observers.multidfs import MultiDFSObserver
from repro.observers.pivots import SupportingPointsObserver
from repro.observers.topo import TopologicalIntervalObserver

__all__ = [
    "Observer",
    "ObserverSpec",
    "ObserverChain",
    "TopologicalIntervalObserver",
    "LevelObserver",
    "MultiDFSObserver",
    "SupportingPointsObserver",
    "OBSERVER_SPECS",
    "specs",
    "observer_names",
    "default_observers",
]

#: Every shipped observer, in default chain order — cheapest test
#: first: one comparison (ranks, levels), then three bitmask ops
#: (pivots, which also settle positives before they can pay for the
#: interval runs), then the per-run interval loop.  The guarantee
#: table in ``docs/OBSERVERS.md`` mirrors these rows and
#: ``tests/test_docs.py`` diffs the two.
OBSERVER_SPECS: tuple[ObserverSpec, ...] = (
    ObserverSpec(
        name="topo-interval",
        answers="negative",
        prepare_cost="O(n + e)",
        memory="2 ints/node",
        factory=TopologicalIntervalObserver,
        description="forward + reverse topological ranks; a "
                    "reachable pair must ascend in both orders"),
    ObserverSpec(
        name="level-bound",
        answers="negative",
        prepare_cost="O(n + e)",
        memory="1 int/node",
        factory=LevelObserver,
        description="longest-path-to-sink strata (the PR 2 pre-filter "
                    "lifted out of the index kernel); paths strictly "
                    "descend through levels"),
    ObserverSpec(
        name="supporting-points",
        answers="both",
        prepare_cost="O(candidates · (n + e))",
        memory="2 bitmask ints/node",
        factory=SupportingPointsObserver,
        description="greedy high-coverage pivots with full "
                    "ancestor/descendant bitsets; certifies positives "
                    "through a pivot and negatives around one"),
    ObserverSpec(
        name="multi-dfs",
        answers="negative",
        prepare_cost="O(runs · (n + e))",
        memory="2 ints/node/run",
        factory=MultiDFSObserver,
        description="randomised GRAIL-style post-order/reach-low "
                    "intervals; containment violation in any run "
                    "certifies non-reachability"),
)


def specs() -> tuple[ObserverSpec, ...]:
    """Every registered observer spec, in default chain order."""
    return OBSERVER_SPECS


def observer_names() -> tuple[str, ...]:
    """The registered observer names, in default chain order."""
    return tuple(spec.name for spec in OBSERVER_SPECS)


def default_observers() -> list:
    """A fresh, unprepared instance of every registered observer."""
    return [spec.factory() for spec in OBSERVER_SPECS]
