"""Adapters that bring every concrete index onto the engine protocol.

Three adapter families cover the whole codebase:

* :class:`ChainEngine` — the packed static
  :class:`~repro.core.index.ChainIndex` (one adapter instance per
  chain-cover method).  Batch queries delegate straight to the CSR
  kernel; everything else the index exposes (``descendants``,
  ``prefilter_rejects``, ``num_chains``, ...) is forwarded untouched,
  so the adapter adds one attribute hop per *batch*, never per query.
* :class:`DynamicEngine` — the mutable
  :class:`~repro.core.maintenance.DynamicChainIndex` (insert-only);
  :class:`TolEngine` — the fully dynamic
  :class:`~repro.dynamic.TolIndex`, the only ``deletable`` engine.
* :class:`CondensingEngine` — wraps any of the paper's
  :class:`~repro.baselines.interface.ReachabilityIndex` baselines.
  The baselines are defined over DAGs, so the adapter condenses the
  input first (exactly what :class:`ChainIndex` does internally) —
  every registered engine therefore accepts cyclic graphs and answers
  through SCC representatives.

:class:`EngineAdapter` supplies the generic batch fallback, so
``is_reachable_many`` works on every engine even when the underlying
index only knows scalar queries.
"""

from __future__ import annotations

from typing import Iterable

from repro.graph.digraph import DiGraph
from repro.graph.errors import NodeNotFoundError
from repro.graph.scc import Condensation, condense
from repro.obs import OBS

__all__ = ["EngineAdapter", "ChainEngine", "DynamicEngine",
           "TolEngine", "CondensingEngine"]


class EngineAdapter:
    """Shared capability defaults and the generic batch fallback."""

    name = "abstract"
    supports_batch = False
    writable = False
    persistable = False
    enumerable = False
    deletable = False

    def is_reachable(self, source, target) -> bool:
        raise NotImplementedError

    def is_reachable_many(self, pairs: Iterable[tuple]) -> list[bool]:
        """Scalar fallback: map :meth:`is_reachable` over the pairs.

        Engines with a native batch kernel override this (and set
        ``supports_batch``); everything else gets batch semantics —
        same answers, same :class:`NodeNotFoundError` contract — from
        this loop, so consumers never need to branch on the flag just
        to *ask* a batch.
        """
        is_reachable = self.is_reachable
        answers = [is_reachable(source, target)
                   for source, target in pairs]
        if OBS.enabled:
            OBS.count(f"engine/queries/{self.name}", len(answers))
        return answers

    def size_words(self) -> int:
        raise NotImplementedError

    def describe(self) -> dict:
        """Introspection payload for ``stats`` verbs and the CLI."""
        from repro.engine.interface import capabilities
        return {"engine": self.name,
                "capabilities": capabilities(self),
                "size_words": self.size_words()}

    def __repr__(self) -> str:
        return f"<{type(self).__name__} name={self.name!r}>"


class _Forwarding(EngineAdapter):
    """An adapter around one underlying index stored as ``self.index``.

    Unknown attributes forward to the wrapped index, so the richer
    surface of a concrete class (``descendants``, ``num_chains``,
    ``prefilter_rejects``, ``graph``, ...) stays reachable through the
    engine seam without re-declaring every member.
    """

    def __init__(self, index, name: str | None = None) -> None:
        self.index = index
        if name is not None:
            self.name = name

    def __getattr__(self, attr):
        try:
            index = self.__dict__["index"]
        except KeyError:           # mid-unpickle: no attrs yet
            raise AttributeError(attr) from None
        return getattr(index, attr)

    def is_reachable(self, source, target) -> bool:
        return self.index.is_reachable(source, target)

    def is_reachable_many(self, pairs: Iterable[tuple]) -> list[bool]:
        if OBS.enabled:
            if not isinstance(pairs, list):
                pairs = list(pairs)
            OBS.count(f"engine/queries/{self.name}", len(pairs))
        return self.index.is_reachable_many(pairs)

    def size_words(self) -> int:
        return self.index.size_words()


class ChainEngine(_Forwarding):
    """The packed chain-cover index behind the engine seam.

    ``supports_batch`` is native (the flat CSR kernel), the index
    round-trips through :mod:`repro.core.persistence`, and descendant /
    ancestor enumeration is available.  Not writable — mutation goes
    through :class:`DynamicEngine` or the serving layer's shadow.
    """

    supports_batch = True
    writable = False
    persistable = True
    enumerable = True


class DynamicEngine(_Forwarding):
    """The incrementally maintained chain index: the writable engine.

    Requires a DAG (cycle-closing writes must be rejectable), answers
    batches through the native O(1)-expected hash-map path, and exposes
    ``add_edge`` / ``add_node`` via forwarding.
    """

    name = "dynamic"
    supports_batch = True
    writable = True
    persistable = False
    enumerable = False


class TolEngine(_Forwarding):
    """The total-order 2-hop index: the fully dynamic engine.

    Requires a DAG, answers batches through the native set-intersection
    path, and exposes the whole maintenance surface — ``add_edge`` /
    ``add_node`` / ``remove_edge`` / ``remove_node`` — via forwarding;
    the only engine advertising ``deletable``.
    """

    name = "dynamic-tol"
    supports_batch = True
    writable = True
    persistable = False
    enumerable = False
    deletable = True


class CondensingEngine(EngineAdapter):
    """Any DAG-only baseline index, lifted to arbitrary digraphs.

    Builds the SCC condensation once, constructs the wrapped baseline
    over the condensation DAG (whose nodes are the dense component ids
    ``0..k-1``), and translates every query operand through
    ``component_of`` — the same reflexive-through-SCC semantics as
    :class:`~repro.core.index.ChainIndex`.
    """

    def __init__(self, inner, condensation: Condensation,
                 name: str) -> None:
        self.inner = inner
        self.condensation = condensation
        self.name = name

    @classmethod
    def build(cls, builder, graph: DiGraph,
              name: str) -> "CondensingEngine":
        """Condense ``graph`` and build ``builder`` over the DAG."""
        with OBS.span("condense"):
            condensation = condense(graph)
        return cls(builder(condensation.dag), condensation, name)

    def is_reachable(self, source, target) -> bool:
        component_of = self.condensation.component_of
        try:
            source_component = component_of[source]
        except (KeyError, TypeError):
            raise NodeNotFoundError(source, role="source") from None
        try:
            target_component = component_of[target]
        except (KeyError, TypeError):
            raise NodeNotFoundError(target, role="target") from None
        return self.inner.is_reachable(source_component,
                                       target_component)

    def size_words(self) -> int:
        return self.inner.size_words()

    def describe(self) -> dict:
        payload = super().describe()
        payload["implementation"] = type(self.inner).__name__
        return payload
