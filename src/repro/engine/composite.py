"""A reachability engine partitioned by weakly-connected component.

No directed path crosses a weak-component boundary, so a digraph's
components are independent indexing problems: :class:`CompositeEngine`
partitions the input with
:func:`repro.graph.components.weakly_connected_components`, builds one
sub-engine per component (any registered engine; optionally in
parallel across processes, since the builds share nothing), answers
cross-component pairs ``False`` in O(1) from the partition map alone,
and routes same-component pairs to the owning sub-engine.

This is the stepping stone to real sharding: the partition map is
exactly a shard router, and the v3 persistence format (a manifest of
per-component payloads, see :mod:`repro.core.persistence`) is exactly
a shard manifest.
"""

from __future__ import annotations

from typing import Iterable, Iterator

from repro.graph.components import weakly_connected_components
from repro.graph.digraph import DiGraph
from repro.graph.errors import NodeNotFoundError
from repro.obs import OBS

__all__ = ["CompositeEngine"]

DEFAULT_SUB_ENGINE = "chain-stratified"


def _build_partition(engine_name: str, graph: DiGraph):
    """Build one component's sub-engine (module-level: picklable, so
    ``ProcessPoolExecutor.map`` can ship it to a worker)."""
    from repro.engine.registry import get
    return get(engine_name).build(graph)


class CompositeEngine:
    """One engine per weak component behind a single partition map.

    >>> from repro.graph.digraph import DiGraph
    >>> g = DiGraph.from_edges([("a", "b"), ("x", "y")])
    >>> engine = CompositeEngine.build(g)
    >>> engine.is_reachable("a", "b")
    True
    >>> engine.is_reachable("a", "y")      # cross-component: O(1) False
    False
    """

    name = "composite"
    supports_batch = True
    writable = False
    deletable = False

    def __init__(self, component_of: dict, members: list[list],
                 engines: list, sub_engine: str) -> None:
        #: node label -> index into ``engines`` / ``members``
        self._component_of = component_of
        #: per-component node-label lists (partition order)
        self.members = members
        #: one engine per weak component, same order as ``members``
        self.engines = engines
        #: registry name the sub-engines were built with
        self.sub_engine = sub_engine
        # persistable/enumerable are inherited from the sub-engines:
        # the composite can only do what every partition can do.
        self.persistable = all(
            getattr(engine, "persistable", False) for engine in engines)
        self.enumerable = all(
            getattr(engine, "enumerable", False) for engine in engines)

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    @classmethod
    def build(cls, graph: DiGraph, *,
              engine: str = DEFAULT_SUB_ENGINE,
              max_workers: int | None = None) -> "CompositeEngine":
        """Partition ``graph`` and index each component with ``engine``.

        ``engine`` is any registry name except ``"composite"`` itself.
        ``max_workers`` > 1 builds the components in parallel with a
        :class:`~concurrent.futures.ProcessPoolExecutor` — components
        are independent, so the builds need no coordination; the
        default (``None``) builds serially, which is faster below a few
        thousand nodes per component because fork + pickle round-trips
        cost more than the builds themselves.
        """
        from repro.engine.registry import get
        if engine == cls.name:
            raise ValueError("composite sub-engines cannot themselves "
                             "be composite")
        spec = get(engine)          # fail fast on unknown names
        members = weakly_connected_components(graph)
        component_of = {node: component
                        for component, nodes in enumerate(members)
                        for node in nodes}
        subgraphs = [graph.subgraph(nodes) for nodes in members]
        if max_workers is not None and max_workers > 1 \
                and len(subgraphs) > 1:
            from concurrent.futures import ProcessPoolExecutor
            from functools import partial
            workers = min(max_workers, len(subgraphs))
            with ProcessPoolExecutor(max_workers=workers) as pool:
                engines = list(pool.map(
                    partial(_build_partition, engine), subgraphs))
        else:
            engines = [spec.build(subgraph) for subgraph in subgraphs]
        if OBS.enabled:
            OBS.gauge("engine/components", len(engines))
        return cls(component_of, members, engines, engine)

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def _components(self, source, target) -> tuple[int, int]:
        component_of = self._component_of
        try:
            source_component = component_of[source]
        except (KeyError, TypeError):
            raise NodeNotFoundError(source, role="source") from None
        try:
            target_component = component_of[target]
        except (KeyError, TypeError):
            raise NodeNotFoundError(target, role="target") from None
        return source_component, target_component

    def is_reachable(self, source, target) -> bool:
        """Route to the owning sub-engine; cross-component is False."""
        source_component, target_component = self._components(source,
                                                              target)
        if source_component != target_component:
            if OBS.enabled:
                OBS.count("engine/cross_rejects")
            return False
        return self.engines[source_component].is_reachable(source,
                                                           target)

    def is_reachable_many(self, pairs: Iterable[tuple]) -> list[bool]:
        """Batch routing: one sub-engine batch per touched component.

        Cross-component pairs are settled inline (their answer slot is
        already ``False``); same-component pairs are gathered per
        component and answered with one ``is_reachable_many`` call
        each, so a batch against a K-component graph costs at most K
        kernel invocations plus the O(1) partition lookups.
        """
        if not isinstance(pairs, list):
            pairs = list(pairs)
        component_of = self._component_of
        answers = [False] * len(pairs)
        routed: dict[int, tuple[list[int], list[tuple]]] = {}
        cross = 0
        for position, (source, target) in enumerate(pairs):
            try:
                source_component = component_of[source]
            except (KeyError, TypeError):
                raise NodeNotFoundError(source, role="source") from None
            try:
                target_component = component_of[target]
            except (KeyError, TypeError):
                raise NodeNotFoundError(target, role="target") from None
            if source_component != target_component:
                cross += 1
                continue
            slot = routed.get(source_component)
            if slot is None:
                slot = routed[source_component] = ([], [])
            slot[0].append(position)
            slot[1].append((source, target))
        for component, (positions, sub_pairs) in routed.items():
            sub_answers = self.engines[component].is_reachable_many(
                sub_pairs)
            for position, answer in zip(positions, sub_answers):
                answers[position] = answer
        if OBS.enabled:
            OBS.count("engine/queries/composite", len(answers))
            if cross:
                OBS.count("engine/cross_rejects", cross)
        return answers

    # ------------------------------------------------------------------
    # enumeration (available when every sub-engine is enumerable)
    # ------------------------------------------------------------------
    def _owning(self, node) -> object:
        if not self.enumerable:
            raise TypeError(
                f"sub-engine {self.sub_engine!r} does not support "
                f"descendant/ancestor enumeration")
        try:
            component = self._component_of[node]
        except (KeyError, TypeError):
            raise NodeNotFoundError(node) from None
        return self.engines[component]

    def descendants(self, source) -> Iterator:
        """All nodes reachable from ``source`` — never leaves its
        component, so the owning sub-engine answers alone."""
        return self._owning(source).descendants(source)

    def ancestors(self, target) -> Iterator:
        """All nodes reaching ``target``, from the owning sub-engine."""
        return self._owning(target).ancestors(target)

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------
    @property
    def num_partitions(self) -> int:
        """How many weak components the graph split into."""
        return len(self.engines)

    def partition_sizes(self) -> list[int]:
        """Node count per component, in partition order."""
        return [len(nodes) for nodes in self.members]

    def size_words(self) -> int:
        """Sum of the sub-engine label sizes (16-bit words)."""
        return sum(engine.size_words() for engine in self.engines)

    def describe(self) -> dict:
        from repro.engine.interface import capabilities
        return {"engine": self.name,
                "capabilities": capabilities(self),
                "size_words": self.size_words(),
                "sub_engine": self.sub_engine,
                "partitions": self.num_partitions,
                "partition_sizes": self.partition_sizes()}

    def __repr__(self) -> str:
        return (f"<CompositeEngine partitions={self.num_partitions} "
                f"sub_engine={self.sub_engine!r} "
                f"words={self.size_words()}>")
