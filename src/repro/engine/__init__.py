"""repro.engine — every reachability backend behind one seam.

The package gives the codebase a single pluggable interface where
there used to be three (the concrete chain classes, the baselines ABC,
and the serving protocol):

* :class:`~repro.engine.interface.ReachabilityEngine` — the protocol:
  scalar + batch queries, size accounting, and five capability flags
  (``supports_batch`` / ``writable`` / ``persistable`` /
  ``enumerable`` / ``deletable``) that consumers gate on instead of
  ``isinstance``;
* :mod:`~repro.engine.registry` — string-keyed specs:
  ``engine.get("two-hop").build(graph)``; the service (``serve
  --engine``), the CLI and the benchmark competitor tables all iterate
  this registry;
* :mod:`~repro.engine.adapters` — bring
  :class:`~repro.core.index.ChainIndex`,
  :class:`~repro.core.maintenance.DynamicChainIndex`, the fully
  dynamic :class:`~repro.dynamic.TolIndex` and all
  :mod:`repro.baselines` onto the protocol (with a generic batch
  fallback, so ``is_reachable_many`` works everywhere);
* :class:`~repro.engine.composite.CompositeEngine` — partitions the
  graph by weakly-connected component, one sub-engine per component,
  cross-component pairs ``False`` in O(1); the stepping stone to
  sharding.

Every registered name also resolves behind the
:data:`OBSERVED_PREFIX` — ``build("observed:bfs", g)`` wraps the bare
engine in the :mod:`repro.observers` O(1)-answer stack, inheriting
its capability flags (see ``docs/OBSERVERS.md``).

The registry table is documented in ``docs/API.md`` ("Engines") and
doc-linted against :func:`names` by ``tests/test_docs.py``.
"""

from repro.engine.adapters import (
    ChainEngine,
    CondensingEngine,
    DynamicEngine,
    EngineAdapter,
    TolEngine,
)
from repro.engine.composite import CompositeEngine
from repro.engine.interface import (
    CAPABILITY_FLAGS,
    ReachabilityEngine,
    capabilities,
)
from repro.engine.registry import (
    OBSERVED_PREFIX,
    EngineSpec,
    build,
    chain_methods,
    get,
    names,
    paper_labels,
    register,
    specs,
)

__all__ = [
    "ReachabilityEngine",
    "CAPABILITY_FLAGS",
    "capabilities",
    "EngineAdapter",
    "ChainEngine",
    "DynamicEngine",
    "TolEngine",
    "CondensingEngine",
    "CompositeEngine",
    "EngineSpec",
    "OBSERVED_PREFIX",
    "register",
    "get",
    "build",
    "names",
    "specs",
    "chain_methods",
    "paper_labels",
]
