"""The string-keyed engine registry: one name per backend.

Every reachability backend in the codebase is registered here under a
stable kebab-case name, with its capability flags and (when the
paper's evaluation uses it) the label the benchmark tables print.
Consumers select backends by name:

>>> import repro.engine as engine
>>> sorted(engine.names())[:3]
['bfs', 'chain-closure', 'chain-concat']
>>> from repro.graph.digraph import DiGraph
>>> g = DiGraph.from_edges([("a", "b")])
>>> engine.build("two-hop", g).is_reachable("a", "b")
True

The chain engines are derived from
:data:`repro.core.index.CHAIN_METHODS` — the single definition site of
the chain-cover method list — and the CLI derives its ``--method`` /
``--engine`` choices from this registry, so the three surfaces cannot
drift apart.  Builds emit the ``engine/build/{engine}`` span.

Any registered name additionally resolves with an ``observed:``
prefix (``engine.build("observed:bfs", g)``), which wraps the bare
engine in the :class:`~repro.observers.chain.ObserverChain` O(1)
fast path; the derived spec inherits the inner engine's capability
flags and is synthesised on first use, never registered — ``names()``
lists only the bare engines.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from functools import partial
from typing import Callable

from repro.baselines.dual import DualLabelingIndex
from repro.baselines.jagadish import JagadishIndex
from repro.baselines.traversal import TraversalIndex
from repro.baselines.tree_encoding import TreeEncodingIndex
from repro.baselines.two_hop import TwoHopIndex
from repro.baselines.warren import WarrenIndex
from repro.core.index import CHAIN_METHODS, ChainIndex
from repro.core.maintenance import DynamicChainIndex
from repro.engine.adapters import (
    ChainEngine,
    CondensingEngine,
    DynamicEngine,
    TolEngine,
)
from repro.engine.composite import CompositeEngine
from repro.graph.digraph import DiGraph
from repro.obs import OBS

__all__ = ["EngineSpec", "OBSERVED_PREFIX", "register", "get", "build",
           "names", "specs", "chain_methods", "paper_labels"]

_NAME_PATTERN = re.compile(r"^[a-z0-9][a-z0-9-]*$")

#: Prefix that resolves any registered engine to its observer-wrapped
#: variant: ``get("observed:bfs")`` derives a spec from ``get("bfs")``.
OBSERVED_PREFIX = "observed:"


@dataclass(frozen=True)
class EngineSpec:
    """One registered engine: a name, a factory and its capabilities.

    The flags describe what :meth:`build` will return, so consumers
    can gate features (persistence, writes, enumeration) *before*
    paying for a build.  ``paper_label`` is the column label the
    benchmark tables use (``"ours"``, ``"DD"``, ...) when the paper's
    evaluation includes the method, else ``None``.
    """

    name: str
    description: str
    factory: Callable[[DiGraph], object]
    supports_batch: bool
    writable: bool
    persistable: bool
    enumerable: bool
    deletable: bool = False
    paper_label: str | None = None

    def build(self, graph: DiGraph):
        """Construct an engine instance over ``graph``.

        Emits the ``engine/build/{engine}`` span (composite builds
        nest one per component).
        """
        with OBS.span(f"engine/build/{self.name}"):
            return self.factory(graph)

    @property
    def capabilities(self) -> dict[str, bool]:
        return {"supports_batch": self.supports_batch,
                "writable": self.writable,
                "persistable": self.persistable,
                "enumerable": self.enumerable,
                "deletable": self.deletable}


_REGISTRY: dict[str, EngineSpec] = {}


def register(spec: EngineSpec) -> EngineSpec:
    """Add ``spec`` to the registry; rejects duplicate or bad names."""
    if not _NAME_PATTERN.match(spec.name):
        raise ValueError(
            f"engine name {spec.name!r} must be kebab-case "
            f"([a-z0-9-], starting alphanumeric)")
    if spec.name in _REGISTRY:
        raise ValueError(f"engine {spec.name!r} is already registered")
    _REGISTRY[spec.name] = spec
    return spec


def get(name: str) -> EngineSpec:
    """The spec registered under ``name``.

    ``observed:<engine>`` names resolve to a derived spec wrapping the
    bare engine in an :class:`~repro.observers.chain.ObserverChain`
    (see :func:`_observed_spec`).  Raises :class:`ValueError` naming
    the known engines, so a typo in a CLI flag or a config file reads
    as documentation.
    """
    if name.startswith(OBSERVED_PREFIX):
        return _observed_spec(name)
    try:
        return _REGISTRY[name]
    except KeyError:
        raise ValueError(
            f"unknown engine {name!r}; registered engines: "
            f"{', '.join(names())} (each also available as "
            f"{OBSERVED_PREFIX}<engine>)") from None


_OBSERVED_CACHE: dict[str, EngineSpec] = {}


def _observed_spec(name: str) -> EngineSpec:
    """Derive (and cache) the spec for an ``observed:<engine>`` name.

    The factory builds the bare engine, then prepares the default
    observer stack in front of it; all five capability flags are
    inherited — the chain delegates writes and forwards enumeration —
    while ``paper_label`` is dropped (benchmark tables compare bare
    methods).  Double prefixes are rejected: the chain already answers
    everything an outer chain could.
    """
    inner_name = name[len(OBSERVED_PREFIX):]
    if inner_name.startswith(OBSERVED_PREFIX):
        raise ValueError(
            f"{name!r}: observer chains do not stack — "
            f"use {inner_name!r}")
    inner = get(inner_name)
    try:
        return _OBSERVED_CACHE[name]
    except KeyError:
        pass

    def factory(graph: DiGraph, **kwargs):
        from repro.observers.chain import ObserverChain
        return ObserverChain.wrap(graph, inner.factory(graph, **kwargs))

    spec = EngineSpec(
        name=name,
        description=f"{inner.description} — behind the O(1)-answer "
                    f"observer stack",
        factory=factory,
        supports_batch=inner.supports_batch,
        writable=inner.writable,
        persistable=inner.persistable,
        enumerable=inner.enumerable,
        deletable=inner.deletable)
    _OBSERVED_CACHE[name] = spec
    return spec


def build(name: str, graph: DiGraph, **kwargs):
    """Shorthand: ``get(name).build(graph)``."""
    spec = get(name)
    if kwargs:
        with OBS.span(f"engine/build/{spec.name}"):
            return spec.factory(graph, **kwargs)
    return spec.build(graph)


def names() -> tuple[str, ...]:
    """Every registered engine name, sorted."""
    return tuple(sorted(_REGISTRY))


def specs() -> tuple[EngineSpec, ...]:
    """Every spec, in registration order."""
    return tuple(_REGISTRY.values())


def chain_methods() -> tuple[str, ...]:
    """The chain-cover method names, derived from the registry.

    ``("stratified", "closure", "jagadish")`` today — exactly the
    registered ``chain-*`` engines with the prefix stripped, in
    registration order, which follows
    :data:`repro.core.index.CHAIN_METHODS`.
    """
    return tuple(spec.name[len("chain-"):] for spec in specs()
                 if spec.name.startswith("chain-"))


def paper_labels() -> dict[str, EngineSpec]:
    """Paper table label -> spec, for the benchmark competitor tables."""
    return {spec.paper_label: spec for spec in specs()
            if spec.paper_label is not None}


# ----------------------------------------------------------------------
# the built-in engines
# ----------------------------------------------------------------------
def _build_chain(method: str, graph: DiGraph) -> ChainEngine:
    return ChainEngine(ChainIndex.build(graph, method=method),
                       name=f"chain-{method}")


def _build_dynamic(graph: DiGraph) -> DynamicEngine:
    return DynamicEngine(DynamicChainIndex.from_graph(graph))


def _build_dynamic_tol(graph: DiGraph) -> TolEngine:
    from repro.dynamic import TolIndex
    return TolEngine(TolIndex.from_graph(graph))


def _build_baseline(index_class, name: str,
                    graph: DiGraph) -> CondensingEngine:
    return CondensingEngine.build(index_class.build, graph, name)


_CHAIN_DESCRIPTIONS = {
    "stratified": "the paper's index: stratified minimum chain cover, "
                  "packed CSR labels, O(log b) queries",
    "closure": "chain cover via matching on the transitive closure "
               "(exact Fulkerson reference)",
    "jagadish": "chain labels over the DD path-stitching heuristic "
                "(more chains, larger labels)",
    "concat": "chain labels over the Kritikakis-Tollis greedy "
              "concatenation cover (near-linear build, slightly "
              "wider; the million-node choice)",
}

for _method in CHAIN_METHODS:
    register(EngineSpec(
        name=f"chain-{_method}",
        description=_CHAIN_DESCRIPTIONS.get(
            _method, f"chain labels via the {_method} cover"),
        factory=partial(_build_chain, _method),
        supports_batch=True, writable=False, persistable=True,
        enumerable=True,
        paper_label="ours" if _method == "stratified" else None))

register(EngineSpec(
    name="dynamic",
    description="incrementally maintained chain index (Jagadish "
                "maintenance); the writable engine, DAG input only",
    factory=_build_dynamic,
    supports_batch=True, writable=True, persistable=False,
    enumerable=False))

register(EngineSpec(
    name="dynamic-tol",
    description="total-order 2-hop labeling maintained in place "
                "through inserts AND deletes; the deletable engine, "
                "DAG input only",
    factory=_build_dynamic_tol,
    supports_batch=True, writable=True, persistable=False,
    enumerable=False, deletable=True))

for _index_class, _name, _label, _description in (
        (TraversalIndex, "bfs", "traversal",
         "no index at all — BFS per query, zero space"),
        (WarrenIndex, "warren", "MM",
         "Warren's bit-matrix transitive closure, O(1) queries"),
        (JagadishIndex, "jagadish", "DD",
         "Jagadish's DAG-decomposition heuristic (the paper's DD)"),
        (TreeEncodingIndex, "tree-cover", "TE",
         "tree cover with interval encoding (the paper's TE)"),
        (TwoHopIndex, "two-hop", "2-hop",
         "2-hop labeling (Cohen et al.), set-cover construction"),
        (DualLabelingIndex, "dual", "Dual-II",
         "dual labeling over a spanning tree plus non-tree links")):
    register(EngineSpec(
        name=_name,
        description=_description,
        factory=partial(_build_baseline, _index_class, _name),
        supports_batch=False, writable=False, persistable=False,
        enumerable=False,
        paper_label=_label))

register(EngineSpec(
    name="composite",
    description="one sub-engine per weakly-connected component; "
                "cross-component pairs answered False in O(1)",
    factory=CompositeEngine.build,
    supports_batch=True, writable=False, persistable=True,
    enumerable=True))
