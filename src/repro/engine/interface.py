"""The one seam every reachability backend serves through.

Before this package the codebase had three parallel index surfaces:
the concrete :class:`~repro.core.index.ChainIndex` /
:class:`~repro.core.maintenance.DynamicChainIndex` pair the serving
stack was hard-wired to, the thinner
:class:`repro.baselines.interface.ReachabilityIndex` ABC of the paper's
evaluation methods, and the structural
:class:`~repro.core.protocols.BatchReachability` protocol the
micro-batcher dispatches on.  :class:`ReachabilityEngine` unifies them:
every backend is adapted onto this protocol (see
:mod:`repro.engine.adapters`) and registered by name in
:mod:`repro.engine.registry`, so the service, the CLI and the
benchmarks select backends by string instead of importing classes.

Capabilities are *data*, not types: consumers gate behaviour on the
five boolean flags (``supports_batch`` / ``writable`` / ``persistable``
/ ``enumerable`` / ``deletable``) rather than on ``isinstance``
checks, so a new backend only has to declare what it can do.
"""

from __future__ import annotations

from typing import Iterable, Protocol, runtime_checkable

__all__ = ["ReachabilityEngine", "CAPABILITY_FLAGS", "capabilities"]

#: the five capability flags, in display order.
CAPABILITY_FLAGS = ("supports_batch", "writable", "persistable",
                    "enumerable", "deletable")


@runtime_checkable
class ReachabilityEngine(Protocol):
    """A named reachability backend with declared capabilities.

    Every engine answers scalar and batch queries (a backend without a
    native batch kernel satisfies the batch method through the generic
    fallback of :class:`repro.engine.adapters.EngineAdapter`) and
    reports its size in the paper's 16-bit-word unit.  The flags mean:

    * ``supports_batch`` — ``is_reachable_many`` runs a native batch
      kernel (not the scalar fallback loop);
    * ``writable`` — ``add_edge`` / ``add_node`` exist and maintain
      the index incrementally;
    * ``persistable`` — the engine round-trips through
      :mod:`repro.core.persistence`;
    * ``enumerable`` — ``descendants`` / ``ancestors`` enumeration is
      available;
    * ``deletable`` — ``remove_edge`` / ``remove_node`` exist and
      repair the index in place (implies ``writable``).
    """

    name: str
    supports_batch: bool
    writable: bool
    persistable: bool
    enumerable: bool
    deletable: bool

    def is_reachable(self, source, target) -> bool:
        """Reflexive reachability between two node objects.

        Raises :class:`~repro.graph.errors.NodeNotFoundError` with
        ``role`` naming the missing operand.
        """

    def is_reachable_many(self, pairs: Iterable[tuple]) -> list[bool]:
        """One bool per ``(source, target)`` pair, in order."""

    def size_words(self) -> int:
        """Index size in 16-bit words (the paper's table unit)."""


def capabilities(engine) -> dict[str, bool]:
    """The engine's capability flags as a plain dict (stats payloads)."""
    return {flag: bool(getattr(engine, flag, False))
            for flag in CAPABILITY_FLAGS}
