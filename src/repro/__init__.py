"""repro — chain-cover graph reachability.

A faithful, production-quality reproduction of Chen & Chen, *An
Efficient Algorithm for Answering Graph Reachability Queries* (ICDE
2008): minimum chain decomposition of a DAG via stratification +
per-level Hopcroft–Karp matching with virtual nodes, chain labels with
O(log b) queries, SCC condensation for cyclic graphs, and the full set
of comparison methods from the paper's evaluation.

Quick start::

    from repro import ChainIndex, DiGraph

    g = DiGraph.from_edges([("a", "b"), ("b", "c"), ("a", "d")])
    index = ChainIndex.build(g)
    assert index.is_reachable("a", "c")
    assert not index.is_reachable("d", "b")

Phase-level observability (spans, counters, JSON export) lives in
:mod:`repro.obs` behind the process-wide :data:`OBS` registry —
disabled by default, see ``docs/OBSERVABILITY.md``.  The full public
API is documented in ``docs/API.md``.
"""

from repro.core.chains import ChainDecomposition
from repro.core.index import ChainIndex
from repro.core.maintenance import DynamicChainIndex
from repro.core.stratification import Stratification, stratify
from repro.core.stratified import stratified_chain_cover
from repro.core.width import dag_width, maximum_antichain
from repro.dynamic import TolIndex
from repro.graph.digraph import DiGraph
from repro.graph.errors import (
    EdgeNotFoundError,
    GraphError,
    GraphFormatError,
    IndexFormatError,
    InvalidChainError,
    NodeNotFoundError,
    NotADAGError,
)
from repro.graph.scc import condense, strongly_connected_components
from repro.obs import OBS, MetricsRegistry

__version__ = "1.0.0"

__all__ = [
    "ChainIndex",
    "DynamicChainIndex",
    "TolIndex",
    "DiGraph",
    "ChainDecomposition",
    "Stratification",
    "stratify",
    "stratified_chain_cover",
    "dag_width",
    "maximum_antichain",
    "condense",
    "strongly_connected_components",
    "GraphError",
    "NodeNotFoundError",
    "EdgeNotFoundError",
    "NotADAGError",
    "InvalidChainError",
    "GraphFormatError",
    "IndexFormatError",
    "OBS",
    "MetricsRegistry",
    "__version__",
]
