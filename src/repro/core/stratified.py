"""The paper's chain-decomposition algorithm (Section IV).

Phase 1 — Algorithm *chain-generation*: stratify the DAG, then walk the
levels bottom-up, building the bipartite graph ``G(V_{i+1}, V_i'; C_i')``
for each level and finding a Hopcroft–Karp maximum matching.  A bottom
node left free spawns a *virtual node* one level up (Definition 4) whose
bipartite edges encode (a) inherited real parents of the tower's base
node and (b) rerouting opportunities: real parents of the tower's
*support set* — the odd-position tops of the alternating paths starting
at the stranded node's covered parents, together with the adoption
surface of the bottoms those transfers would free.  (The paper's labels
record the one-level slice ``S_gj ⊆ V_{i+2}`` of this set; carrying the
full support through the tower is the same inheritance idea the paper
already applies to parent edges, and is what makes the chain count meet
the Dilworth width on the adversarial cases its one-level slice misses.)

Phase 2 — Algorithm *virtual-resolution*: walk the virtual levels
top-down.  A virtual node matched from above is eliminated by either

* **transfer** (the paper's rule 2(ii)): find — against the *current*
  matching one level below — an alternating path from a covered parent
  of the represented node to an odd top ``x``; flip the prefix so the
  path's root adopts the stranded chain while the anchor adopts the
  freed bottom; or
* **descent** (rule 2 "otherwise"): the anchor adopts the represented
  node directly — legal unconditionally for a virtual (the next tower
  level retries), and for the real tower base exactly when the anchor
  is a genuine ancestor.

Resolution re-derives every alternating path against the current
matching instead of replaying positions recorded during construction —
the paper's own Section IV.B shows alternating paths share segments, so
an earlier transfer invalidates recorded positions.  Because one
transfer can still consume a path a later resolution needed, each
resolution runs as a *transaction*: all matching flips and chain links
are journaled, and when a branch dead-ends the journal rolls back and
the next transfer candidate is tried.  Every emitted chain link is
sound by construction (real edge, two-hop through an odd top, or a
verified ancestor adoption); if no realization of a matched edge exists
at all the chain is split — counted in
:class:`DecompositionStats.splits` and cross-checked against the exact
Dilworth width by the test suite.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.chains import ChainDecomposition
from repro.core.stratification import Stratification, stratify
from repro.core.virtual_nodes import LevelMatching, VirtualNode, VirtualRegistry
from repro.graph.closure import reachable
from repro.graph.digraph import DiGraph
from repro.matching.alternating import alternating_bfs, bottoms_to_tops
from repro.matching.bipartite import BipartiteGraph, Matching
from repro.matching.hopcroft_karp import hopcroft_karp
from repro.obs import OBS

__all__ = ["DecompositionStats", "stratified_chain_cover",
           "stratified_chain_cover_with_stats"]

#: Upper bound on journaled operations a single resolution transaction
#: may attempt before giving up (a backstop against pathological
#: backtracking; never reached on the benchmark families).
_TRANSACTION_BUDGET = 4000


@dataclass
class DecompositionStats:
    """Telemetry from one run of the stratified decomposition."""

    num_levels: int = 0
    num_virtuals: int = 0
    num_direct_edges: int = 0
    num_s_edges: int = 0
    transfers: int = 0
    descents: int = 0
    rollbacks: int = 0
    splits: int = 0
    stitched: int = 0
    unanchored: int = 0
    #: 1-based stratification level per dense node id (longest path to
    #: a sink), exposed so the labeling can reuse it as a query
    #: pre-filter certificate without re-stratifying.
    level_of: list[int] | None = None


def stratified_chain_cover(graph: DiGraph,
                           stratification: Stratification | None = None
                           ) -> ChainDecomposition:
    """Minimum chain decomposition via the paper's algorithm."""
    decomposition, _ = stratified_chain_cover_with_stats(graph,
                                                         stratification)
    return decomposition


def stratified_chain_cover_with_stats(
        graph: DiGraph,
        stratification: Stratification | None = None
) -> tuple[ChainDecomposition, DecompositionStats]:
    """As :func:`stratified_chain_cover`, plus telemetry."""
    stats = DecompositionStats()
    n = graph.num_nodes
    if n == 0:
        return ChainDecomposition(chains=[]), stats
    strat = stratification if stratification is not None else stratify(graph)
    stats.num_levels = len(strat.levels)
    stats.level_of = strat.level_of
    registry = VirtualRegistry(n)

    # Highest stratum holding a parent of each node: a virtual tower for
    # base ``v`` is worth growing only while parents above remain.
    max_parent_level = [0] * n
    for v in range(n):
        for parent_level in strat.parents_by_level[v]:
            if parent_level > max_parent_level[v]:
                max_parent_level[v] = parent_level

    level_matchings = _phase_one(graph, strat, registry, max_parent_level,
                                 stats)
    resolution = _Resolution(graph, strat, registry, level_matchings, stats)
    with OBS.span("resolution"):
        parent_link = resolution.run()
    _harvest_matchings(level_matchings, parent_link, n)
    chains = _assemble_chains(parent_link, n)
    decomposition = ChainDecomposition(chains=chains)
    if stats.splits:
        # A split marks a level-local pairing whose rerouting promise
        # could not be realised; the global tail-to-head pass recovers
        # the lost links (see repro/core/stitch.py).
        from repro.core.stitch import stitch_chains
        before = decomposition.num_chains
        with OBS.span("stitch"):
            decomposition = stitch_chains(graph, decomposition)
        stats.stitched = before - decomposition.num_chains
    if OBS.enabled:
        _publish_stats(stats)
    return decomposition, stats


def _publish_stats(stats: DecompositionStats) -> None:
    """Mirror the run's telemetry into the ``build/*`` counters."""
    for counter, value in (
            ("build/virtual_nodes", stats.num_virtuals),
            ("build/virtual_edges_direct", stats.num_direct_edges),
            ("build/virtual_edges_s", stats.num_s_edges),
            ("build/transfers", stats.transfers),
            ("build/descents", stats.descents),
            ("build/rollbacks", stats.rollbacks),
            ("build/splits", stats.splits),
            ("build/stitched", stats.stitched),
            ("build/unanchored", stats.unanchored)):
        OBS.count(counter, value)


# ----------------------------------------------------------------------
# phase 1 — chain-generation
# ----------------------------------------------------------------------
def _phase_one(graph: DiGraph, strat: Stratification,
               registry: VirtualRegistry, max_parent_level: list[int],
               stats: DecompositionStats) -> list[LevelMatching]:
    levels = strat.levels
    h = len(levels)
    level_matchings: list[LevelMatching] = []
    pending: list[VirtualNode] = []

    for bottom_level in range(1, h):          # the paper's i = 1 .. h-1
        with OBS.span(f"matching/level-{bottom_level}"):
            tops = levels[bottom_level]           # V_{i+1} (0-based index!)
            bottoms = list(levels[bottom_level - 1])
            bottoms.extend(v.ext_id for v in pending)
            top_index = {v: idx for idx, v in enumerate(tops)}
            bottom_index = {v: idx for idx, v in enumerate(bottoms)}

            bipartite = BipartiteGraph(len(tops), len(bottoms))
            for top_local, top in enumerate(tops):
                for child in strat.children_by_level[top].get(bottom_level, ()):
                    bipartite.add_edge(top_local, bottom_index[child])
            for virtual in pending:
                bottom_local = bottom_index[virtual.ext_id]
                for top in virtual.adjacent_tops:
                    bipartite.add_edge(top_index[top], bottom_local)

            matching = hopcroft_karp(bipartite)
            reverse_adj = bottoms_to_tops(bipartite)
            record = LevelMatching(
                level=bottom_level, tops=tops, bottoms=bottoms,
                top_index=top_index, bottom_index=bottom_index,
                bipartite=bipartite, matching=matching,
                reverse_adj=reverse_adj,
            )
            level_matchings.append(record)
            if OBS.enabled:
                pairs = matching.size()
                OBS.count("matching/pairs", pairs)
                OBS.gauge(f"matching/level-{bottom_level}/pairs", pairs)

            pending = []
            if bottom_level + 1 > h - 1:
                continue  # bottoms of the last matching spawn nothing
            parent_level_up = bottom_level + 2    # the paper's V_{i+2}
            for bottom_local in matching.free_bottoms():
                free_ext = bottoms[bottom_local]
                base = registry.base_of(free_ext)
                direct = list(
                    strat.parents_by_level[base].get(parent_level_up, ()))
                forest = alternating_bfs(matching, reverse_adj,
                                         reverse_adj[bottom_local])
                # Support nodes whose parents all sit at or below the tops
                # of the *next* matching can never be claimed by a transfer
                # again, so they are pruned as the tower rises — without
                # this the cumulative unions grow quadratically.
                support: set[int] = set()

                def keep(node: int) -> None:
                    if max_parent_level[node] >= parent_level_up:
                        support.add(node)

                if registry.is_virtual(free_ext):
                    for node in registry.get(free_ext).support:
                        keep(node)
                for top_local in forest.order:
                    keep(tops[top_local])
                    # Flipping up to this top frees its matched bottom; the
                    # adopter may also target that bottom directly — the
                    # bottom itself when real, the tower's base and support
                    # when virtual.
                    freed_ext = bottoms[matching.bottom_of[top_local]]
                    if registry.is_virtual(freed_ext):
                        freed = registry.get(freed_ext)
                        keep(freed.base)
                        for node in freed.support:
                            keep(node)
                    else:
                        keep(freed_ext)
                support.discard(base)
                s_tops: set[int] = set()
                for node in support:
                    s_tops.update(
                        strat.parents_by_level[node].get(parent_level_up, ()))
                s_tops.difference_update(direct)
                useful_later = max_parent_level[base] > parent_level_up or any(
                    max_parent_level[node] > parent_level_up
                    for node in support)
                if direct or s_tops or useful_later:
                    virtual = registry.create(
                        level=bottom_level + 1, for_node=free_ext,
                        direct_tops=direct, s_tops=sorted(s_tops),
                        support=tuple(sorted(support)))
                    pending.append(virtual)
                    stats.num_virtuals += 1
                    stats.num_direct_edges += len(direct)
                    stats.num_s_edges += len(s_tops)
    return level_matchings


# ----------------------------------------------------------------------
# phase 2 — transactional virtual-resolution
# ----------------------------------------------------------------------
class _Resolution:
    """Eliminates every matched virtual node, one transaction at a time.

    The sweep walks virtual levels top-down.  Resolving one matched
    pair ``(u, X)`` may flip matchings at lower levels and recursively
    adopt freed virtual bottoms; all of it is journaled so a dead end
    can roll back and try the next transfer candidate.  A committed
    transaction leaves only sound chain links behind.
    """

    def __init__(self, graph: DiGraph, strat: Stratification,
                 registry: VirtualRegistry,
                 level_matchings: list[LevelMatching],
                 stats: DecompositionStats) -> None:
        self._graph = graph
        self._strat = strat
        self._registry = registry
        self._level_matchings = level_matchings
        self._stats = stats
        self._parent_link: dict[int, int] = {}
        # Journal entries: ("pair", matching, top_local, old_bottom) or
        # ("link", real_node_id).
        self._journal: list[tuple] = []
        self._budget = 0

    # -- journal ------------------------------------------------------
    def _record_pairs(self, matching: Matching,
                      top_locals: list[int]) -> None:
        for top_local in top_locals:
            self._journal.append(("pair", matching, top_local,
                                  matching.bottom_of[top_local]))

    def _rollback(self, checkpoint: int) -> None:
        while len(self._journal) > checkpoint:
            entry = self._journal.pop()
            if entry[0] == "pair":
                _, matching, top_local, old_bottom = entry
                if old_bottom == Matching.UNMATCHED:
                    matching.unmatch_top(top_local)
                else:
                    matching.match(top_local, old_bottom)
            else:
                del self._parent_link[entry[1]]
        self._stats.rollbacks += 1

    def _link(self, parent: int, child: int) -> None:
        self._parent_link[child] = parent
        self._journal.append(("link", child))

    # -- driver -------------------------------------------------------
    def run(self) -> dict[int, int]:
        """Resolve every virtual node; returns the chain parent links."""
        import sys

        h = len(self._strat.levels)
        # Descents iterate, but *nested transfer adoptions* recurse one
        # frame per level in the worst case; size the stack for it.
        needed_limit = 4 * h + 1000
        old_limit = sys.getrecursionlimit()
        if needed_limit > old_limit:
            sys.setrecursionlimit(needed_limit)
        try:
            return self._run(h)
        finally:
            if needed_limit > old_limit:
                sys.setrecursionlimit(old_limit)

    def _run(self, h: int) -> dict[int, int]:
        virtuals_at: dict[int, list[VirtualNode]] = {}
        for virtual in self._registry.virtuals:
            virtuals_at.setdefault(virtual.level, []).append(virtual)
        for level in range(h - 1, 1, -1):
            here = self._level_matchings[level - 1]  # bottoms at `level`
            for virtual in virtuals_at.get(level, ()):
                anchor = here.matched_top_of_bottom(virtual.ext_id)
                if anchor is None:
                    self._stats.unanchored += 1
                    continue
                here.unmatch_bottom(virtual.ext_id)
                self._budget = _TRANSACTION_BUDGET
                checkpoint = len(self._journal)
                if not self._adopt(anchor, virtual.ext_id):
                    self._rollback(checkpoint)
                    self._stats.splits += 1
        return self._parent_link

    # -- transaction body ----------------------------------------------
    def _adopt(self, anchor: int, target_ext: int) -> bool:
        """Try to make real node ``anchor`` the chain parent of the
        segment currently topped by ``target_ext``; journal on success."""
        if self._budget <= 0:
            return False
        self._budget -= 1
        registry = self._registry
        graph = self._graph
        if not registry.is_virtual(target_ext):
            if target_ext in self._parent_link:  # pragma: no cover
                return False
            if graph.has_edge_ids(anchor, target_ext) or reachable(
                    graph, graph.node_at(anchor),
                    graph.node_at(target_ext)):
                self._link(anchor, target_ext)
                return True
            return False
        return self._resolve(registry.get(target_ext), anchor)

    def _resolve(self, virtual: VirtualNode, anchor: int) -> bool:
        """Eliminate one virtual node adopted by ``anchor``.

        The tower is walked with an explicit loop: when no transfer is
        realised at a level, the anchor *descends* to the next tower
        node and retries there.  Towers can be as tall as the
        stratification (one virtual per level), far beyond Python's
        recursion limit, so only nested transfer adoptions recurse.
        """
        graph = self._graph
        registry = self._registry
        current = virtual
        descents = 0
        while True:
            below = self._level_matchings[current.level - 2]
            represented = current.for_node
            if registry.is_virtual(represented):
                adjacent_tops = registry.get(represented).adjacent_tops
            else:
                adjacent_tops = self._strat.parents_by_level[
                    represented].get(current.level, ())
            sources = [below.top_index[top] for top in adjacent_tops]
            forest = alternating_bfs(below.matching, below.reverse_adj,
                                     sources)
            candidates = self._ordered_candidates(forest.order, below,
                                                  anchor)
            for top_local in candidates:
                if self._budget <= 0:
                    break
                checkpoint = len(self._journal)
                path = forest.path_to(top_local)
                if any(below.matching.bottom_of[t] == Matching.UNMATCHED
                       for t in path):  # pragma: no cover - defensive
                    continue
                self._record_pairs(below.matching, path)
                old_bottoms = [below.matching.bottom_of[t] for t in path]
                below.matching.unmatch_top(path[0])
                for i in range(1, len(path)):
                    below.matching.match(path[i], old_bottoms[i - 1])
                root = below.tops[path[0]]
                freed_ext = below.bottoms[old_bottoms[-1]]
                if (self._adopt(root, represented)
                        and self._adopt(anchor, freed_ext)):
                    self._stats.transfers += 1
                    self._stats.descents += descents
                    return True
                self._rollback(checkpoint)
            # No transfer realised at this level: descend.  A virtual
            # hop never emits a real chain link, so this is always
            # sound; the real base at the bottom is guard-checked.
            if self._budget <= 0:
                return False
            self._budget -= 1
            if not registry.is_virtual(represented):
                if represented in self._parent_link:  # pragma: no cover
                    return False
                if graph.has_edge_ids(anchor, represented) or reachable(
                        graph, graph.node_at(anchor),
                        graph.node_at(represented)):
                    self._link(anchor, represented)
                    self._stats.descents += descents
                    return True
                return False
            current = registry.get(represented)
            descents += 1

    def _ordered_candidates(self, forest_order: list[int],
                            below: LevelMatching,
                            anchor: int) -> list[int]:
        """Transfer candidates: likely-sound first, the rest afterward.

        "Likely sound" = the anchor has a real edge to the odd top, to
        the freed bottom, or into the freed tower's base/support — the
        paper's label test generalised.  The remaining tops are kept as
        backtracking fallbacks (full reachability decides there).
        """
        graph = self._graph
        registry = self._registry
        cheap: list[int] = []
        rest: list[int] = []
        for top_local in forest_order:
            hit = graph.has_edge_ids(anchor, below.tops[top_local])
            if not hit:
                freed_ext = below.bottoms[
                    below.matching.bottom_of[top_local]]
                if registry.is_virtual(freed_ext):
                    freed = registry.get(freed_ext)
                    hit = graph.has_edge_ids(anchor, freed.base) or any(
                        graph.has_edge_ids(anchor, node)
                        for node in freed.support)
                else:
                    hit = graph.has_edge_ids(anchor, freed_ext)
            (cheap if hit else rest).append(top_local)
        return cheap + rest


# ----------------------------------------------------------------------
# chain assembly
# ----------------------------------------------------------------------
def _harvest_matchings(level_matchings: list[LevelMatching],
                       parent_link: dict[int, int], num_real: int) -> None:
    for record in level_matchings:
        for top_local, bottom_local in record.matching.pairs():
            bottom_ext = record.bottoms[bottom_local]
            if bottom_ext >= num_real:  # pragma: no cover - defensive
                raise AssertionError(
                    "virtual node survived resolution in a matching")
            if bottom_ext in parent_link:  # pragma: no cover - defensive
                raise AssertionError(
                    f"node {bottom_ext} received two chain parents")
            parent_link[bottom_ext] = record.tops[top_local]


def _assemble_chains(parent_link: dict[int, int],
                     num_real: int) -> list[list[int]]:
    child_of: dict[int, int] = {}
    for child, parent in parent_link.items():
        if parent in child_of:  # pragma: no cover - defensive
            raise AssertionError(
                f"node {parent} received two chain children")
        child_of[parent] = child
    chains: list[list[int]] = []
    for head in range(num_real):
        if head in parent_link:
            continue
        chain = [head]
        current = head
        while current in child_of:
            current = child_of[current]
            chain.append(current)
        chains.append(chain)
    return chains
