"""DAG stratification (Definition 1 / Algorithm *graph-stratification*).

The stratification splits the node set into levels ``V1..Vh``: ``V1``
holds the sinks, and a node sits in ``V_{i+1}`` exactly when all of its
children live in ``V1..Vi`` with at least one child in ``Vi`` (so a
node's level is one plus the longest path from it to a sink).  The
paper's algorithm peels levels off with a remaining-out-degree countdown
and runs in O(e); we implement that countdown literally.

Alongside the levels we materialise the per-level adjacency the rest of
the algorithm needs:

* ``children_by_level[v]`` — the paper's ``C_j(v)`` sets: ``v``'s
  children that live in level ``j``.
* ``parents_by_level[v]`` — the paper's ``P_j(v)`` sets, used for the
  virtual-node *edge inheritance* (Fig. 9): when a virtual node is
  created at level ``i+1``, the parents of the original node at levels
  ``≥ i+2`` are grafted onto it in O(1) per level by reusing these
  lists.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.graph.digraph import DiGraph
from repro.graph.errors import NotADAGError
from repro.graph.topology import find_cycle
from repro.obs import OBS

__all__ = ["Stratification", "stratify"]


@dataclass
class Stratification:
    """Levels of a DAG, lowest (sinks) first.

    ``levels[0]`` is the paper's ``V1``.  ``level_of[v]`` is 1-based to
    match the paper's ``l(v)`` notation.
    """

    levels: list[list[int]]
    level_of: list[int]
    children_by_level: list[dict[int, list[int]]]
    parents_by_level: list[dict[int, list[int]]]

    @property
    def height(self) -> int:
        """The paper's ``h`` — the number of levels."""
        return len(self.levels)

    def level(self, index: int) -> list[int]:
        """``V_index`` with the paper's 1-based numbering."""
        return self.levels[index - 1]

    def check(self, graph: DiGraph) -> None:
        """Verify the stratification invariants (used by tests).

        * levels partition the node set;
        * every child of a ``V_{i}`` node lives strictly below ``i``;
        * every non-sink has at least one child exactly one level down.
        """
        seen: set[int] = set()
        for level_index, level in enumerate(self.levels, start=1):
            for v in level:
                if v in seen:
                    raise ValueError(f"node id {v} appears in two levels")
                seen.add(v)
                if self.level_of[v] != level_index:
                    raise ValueError(f"level_of[{v}] disagrees with levels")
        if len(seen) != graph.num_nodes:
            raise ValueError("levels do not cover every node")
        for v in range(graph.num_nodes):
            children = graph.successor_ids(v)
            if not children:
                if self.level_of[v] != 1:
                    raise ValueError(f"sink {v} not in V1")
                continue
            top = max(self.level_of[w] for w in children)
            if self.level_of[v] != top + 1:
                raise ValueError(
                    f"node {v}: level {self.level_of[v]} but deepest child "
                    f"is at {top}")


def stratify(graph: DiGraph) -> Stratification:
    """Stratify a DAG per Algorithm *graph-stratification* (Sec. III.A).

    Raises :class:`NotADAGError` on cyclic input.  Emits the
    ``stratify`` span and the ``build/levels`` gauge (see
    ``docs/OBSERVABILITY.md``) when :data:`repro.obs.OBS` is enabled.
    """
    with OBS.span("stratify"):
        result = _stratify(graph)
    if OBS.enabled:
        OBS.gauge("build/levels", result.height)
    return result


def _stratify(graph: DiGraph) -> Stratification:
    n = graph.num_nodes
    remaining = [len(graph.successor_ids(v)) for v in range(n)]
    level_of = [0] * n
    first_level = [v for v in range(n) if remaining[v] == 0]
    levels: list[list[int]] = []
    assigned = 0
    current = first_level
    level_index = 1
    while current:
        levels.append(current)
        for v in current:
            level_of[v] = level_index
        assigned += len(current)
        # Count, per parent, how many children sit in the current level;
        # a parent whose remaining out-degree hits zero has *all* its
        # children at levels <= level_index, so it joins the next level.
        counts: dict[int, int] = {}
        for v in current:
            for u in graph.predecessor_ids(v):
                counts[u] = counts.get(u, 0) + 1
        next_level = []
        for u, k in counts.items():
            remaining[u] -= k
            if remaining[u] == 0:
                next_level.append(u)
        current = next_level
        level_index += 1
    if assigned != n:
        raise NotADAGError(cycle=find_cycle(graph))

    children_by_level: list[dict[int, list[int]]] = [{} for _ in range(n)]
    parents_by_level: list[dict[int, list[int]]] = [{} for _ in range(n)]
    for v in range(n):
        for w in graph.successor_ids(v):
            children_by_level[v].setdefault(level_of[w], []).append(w)
        for u in graph.predecessor_ids(v):
            parents_by_level[v].setdefault(level_of[u], []).append(u)
    return Stratification(
        levels=levels,
        level_of=level_of,
        children_by_level=children_by_level,
        parents_by_level=parents_by_level,
    )
