"""Columnar label storage: one layer under labeling, persistence and shm.

A built chain labeling is seven logical columns — four per-node scalars
(``chain_of`` / ``position_of`` / ``rank_of`` / ``level_of``) plus the
per-node *index sequences* of sorted ``(chain, position)`` pairs.  The
:class:`LabelStore` owns those columns in one of two on-the-wire
codecs, selected by the ``codec`` flag:

``packed``
    The flat CSR triple introduced by persistence v2: entry offsets
    ``seq_offsets`` (length ``n + 1``) delimiting slices of the
    concatenated ``seq_chains`` / ``seq_positions`` arrays.

``compressed``
    Delta/varint bit-packing.  Every sequence is sorted by chain id,
    so chains are stored as *gaps* (first chain verbatim, then strictly
    positive deltas) and each gap/position pair is LEB128
    varint-encoded into one shared byte blob ``seq_blob``;
    ``seq_offsets`` then holds **byte** offsets (length ``n + 1``)
    delimiting node ``v``'s slice of the blob.  The four per-node
    scalar columns stay flat native-int buffers in both codecs, so the
    O(1) rank/level pre-filters and the observer stack never pay a
    decode.

Both codecs expose the same memoryview-sliceable surface: every column
is an ``array('l')`` (owning) or a signed-long ``memoryview``
(borrowed, e.g. over an attached shared-memory segment), and the blob
is ``bytes`` or a read-only byte ``memoryview``.  The store is the
single definition site for the integrity checksums — persistence
format v4 and the shm segment header both record
:meth:`LabelStore.checksum`, so a file load and a segment attach
validate identically, including CRC coverage over the compressed
bytes themselves.
"""

from __future__ import annotations

import zlib
from array import array

__all__ = ["LabelStore", "CODECS", "compress_sequences",
           "decode_sequence", "probe_sequence", "packed_checksum",
           "compressed_checksum", "PACKED_FIELD_NAMES",
           "COMPRESSED_FIELD_NAMES"]

CODECS = ("packed", "compressed")

#: field order is part of the checksum definition — never reorder.
PACKED_FIELD_NAMES = ("chain_of", "position_of", "rank_of", "level_of",
                      "sequence_offsets", "sequence_chains",
                      "sequence_positions")
COMPRESSED_FIELD_NAMES = ("chain_of", "position_of", "rank_of",
                          "level_of", "sequence_byte_offsets",
                          "sequence_blob")


def _as_buffer(values):
    """Coerce an int sequence to a native signed-long buffer.

    An ``array('l')`` passes through untouched (the owning case); a
    signed-long ``memoryview`` passes through too — that is the
    *borrowed* case the shared-memory serving path relies on: a store
    built from views over an attached segment indexes, slices and
    bisects exactly like one over owned arrays, without copying a
    byte.  Anything else (lists from JSON, generators) is copied into
    a fresh ``array('l')``.
    """
    if isinstance(values, array) and values.typecode == "l":
        return values
    if isinstance(values, memoryview) and values.format == "l":
        return values
    return array("l", values)


def _as_blob(data):
    """Coerce sequence bytes to ``bytes`` or pass a memoryview through."""
    if isinstance(data, memoryview):
        return data
    return bytes(data)


# ----------------------------------------------------------------------
# varint gap codec
# ----------------------------------------------------------------------
def _append_uvarint(out: bytearray, value: int) -> None:
    """LEB128: seven payload bits per byte, high bit = continuation."""
    while value >= 0x80:
        out.append((value & 0x7F) | 0x80)
        value >>= 7
    out.append(value)


def compress_sequences(seq_offsets, seq_chains, seq_positions):
    """Gap/varint-encode packed CSR sequences into one byte blob.

    Returns ``(byte_offsets, blob)`` where ``byte_offsets`` is an
    ``array('l')`` of length ``n + 1`` delimiting each node's slice of
    ``blob``.  Within a node's slice the stream is interleaved
    ``(chain_gap, position)`` varint pairs; the first gap is the chain
    id itself, later gaps are the strictly positive deltas of the
    sorted chain ids.
    """
    n = len(seq_offsets) - 1
    byte_offsets = array("l", [0]) * (n + 1)
    blob = bytearray()
    append = blob.append
    for v in range(n):
        previous = 0
        for i in range(seq_offsets[v], seq_offsets[v + 1]):
            gap = seq_chains[i] - previous
            previous = seq_chains[i]
            while gap >= 0x80:
                append((gap & 0x7F) | 0x80)
                gap >>= 7
            append(gap)
            position = seq_positions[i]
            while position >= 0x80:
                append((position & 0x7F) | 0x80)
                position >>= 7
            append(position)
        byte_offsets[v + 1] = len(blob)
    return byte_offsets, bytes(blob)


def decode_sequence(blob, lo: int, hi: int) -> list[tuple[int, int]]:
    """Decode one node's ``blob[lo:hi]`` slice to (chain, position) pairs.

    Raises :class:`ValueError` when the slice is not a whole number of
    well-formed varint pairs (a truncated or bit-flipped stream).
    """
    items: list[tuple[int, int]] = []
    chain = 0
    i = lo
    while i < hi:
        gap = 0
        shift = 0
        while True:
            if i >= hi:
                raise ValueError("truncated varint in sequence blob")
            byte = blob[i]
            i += 1
            gap |= (byte & 0x7F) << shift
            if byte < 0x80:
                break
            shift += 7
        position = 0
        shift = 0
        while True:
            if i >= hi:
                raise ValueError("truncated varint in sequence blob")
            byte = blob[i]
            i += 1
            position |= (byte & 0x7F) << shift
            if byte < 0x80:
                break
            shift += 7
        chain += gap
        items.append((chain, position))
    return items


def probe_sequence(blob, lo: int, hi: int, target_chain: int,
                   target_position: int) -> bool:
    """The paper's index-sequence test, decoded on demand.

    Scans node's varint stream accumulating the chain gaps and exits
    as soon as the running chain id reaches ``target_chain`` — chains
    are sorted, so overshooting proves absence without decoding the
    tail.  Equivalent to the packed codec's binary search.
    """
    chain = 0
    i = lo
    while i < hi:
        gap = 0
        shift = 0
        while True:
            byte = blob[i]
            i += 1
            gap |= (byte & 0x7F) << shift
            if byte < 0x80:
                break
            shift += 7
        position = 0
        shift = 0
        while True:
            byte = blob[i]
            i += 1
            position |= (byte & 0x7F) << shift
            if byte < 0x80:
                break
            shift += 7
        chain += gap
        if chain >= target_chain:
            return chain == target_chain and position <= target_position
    return False


# ----------------------------------------------------------------------
# checksums — shared by persistence (file load) and shm (segment attach)
# ----------------------------------------------------------------------
def packed_checksum(fields: dict) -> int:
    """CRC32 of the packed label arrays (persistence v2's checksum).

    Computed over the decimal rendering of each array (not its raw
    bytes) so the value is independent of the platform's ``array('l')``
    item width; each field is prefixed by its name to keep array
    boundaries unambiguous.
    """
    crc = 0
    for name in PACKED_FIELD_NAMES:
        crc = zlib.crc32(name.encode("ascii"), crc)
        crc = zlib.crc32(
            (":" + ",".join(map(str, fields[name]))).encode("ascii"), crc)
    return crc


def compressed_checksum(fields: dict) -> int:
    """CRC32 of the compressed columns, covering the raw blob bytes.

    The scalar columns and the byte-offset column hash through their
    decimal rendering exactly like :func:`packed_checksum`; the
    sequence blob hashes as its raw bytes (the varint stream is
    platform-independent by construction), so a single bit flip in the
    compressed stream fails validation on both file load and shm
    attach.
    """
    crc = 0
    for name in COMPRESSED_FIELD_NAMES[:-1]:
        crc = zlib.crc32(name.encode("ascii"), crc)
        crc = zlib.crc32(
            (":" + ",".join(map(str, fields[name]))).encode("ascii"), crc)
    crc = zlib.crc32(b"sequence_blob:", crc)
    crc = zlib.crc32(bytes(fields["sequence_blob"]), crc)
    return crc


class LabelStore:
    """The columnar label columns under one codec flag.

    ``seq_offsets`` is entry offsets under ``packed`` and byte offsets
    under ``compressed``; ``seq_chains`` / ``seq_positions`` exist only
    under ``packed`` and ``seq_blob`` only under ``compressed``.  All
    buffers may be owned arrays or borrowed memoryviews — the store
    never copies what it is given.
    """

    __slots__ = ("codec", "num_chains", "chain_of", "position_of",
                 "rank_of", "level_of", "seq_offsets", "seq_chains",
                 "seq_positions", "seq_blob", "num_entries")

    def __init__(self, codec: str, num_chains: int, chain_of,
                 position_of, rank_of, level_of, seq_offsets,
                 seq_chains=None, seq_positions=None, seq_blob=None,
                 num_entries: int | None = None) -> None:
        if codec not in CODECS:
            raise ValueError(f"unknown label codec {codec!r}; "
                             f"expected one of {CODECS}")
        self.codec = codec
        self.num_chains = num_chains
        self.chain_of = _as_buffer(chain_of)
        self.position_of = _as_buffer(position_of)
        self.rank_of = _as_buffer(rank_of)
        self.level_of = _as_buffer(level_of)
        self.seq_offsets = _as_buffer(seq_offsets)
        if codec == "packed":
            self.seq_chains = _as_buffer(seq_chains)
            self.seq_positions = _as_buffer(seq_positions)
            self.seq_blob = None
            self.num_entries = len(self.seq_chains)
        else:
            self.seq_chains = None
            self.seq_positions = None
            self.seq_blob = _as_blob(seq_blob)
            if num_entries is None:
                raise ValueError(
                    "compressed stores must carry num_entries")
            self.num_entries = num_entries

    # ------------------------------------------------------------------
    # constructors
    # ------------------------------------------------------------------
    @classmethod
    def packed(cls, num_chains: int, chain_of, position_of, rank_of,
               level_of, seq_offsets, seq_chains, seq_positions
               ) -> "LabelStore":
        return cls("packed", num_chains, chain_of, position_of,
                   rank_of, level_of, seq_offsets, seq_chains,
                   seq_positions)

    @classmethod
    def compressed(cls, num_chains: int, chain_of, position_of,
                   rank_of, level_of, seq_byte_offsets, seq_blob,
                   num_entries: int) -> "LabelStore":
        return cls("compressed", num_chains, chain_of, position_of,
                   rank_of, level_of, seq_byte_offsets,
                   seq_blob=seq_blob, num_entries=num_entries)

    # ------------------------------------------------------------------
    # codec conversion
    # ------------------------------------------------------------------
    def to_codec(self, codec: str) -> "LabelStore":
        if codec not in CODECS:
            raise ValueError(f"unknown label codec {codec!r}; "
                             f"expected one of {CODECS}")
        if codec == self.codec:
            return self
        return (self.to_compressed() if codec == "compressed"
                else self.to_packed())

    def to_compressed(self) -> "LabelStore":
        if self.codec == "compressed":
            return self
        byte_offsets, blob = compress_sequences(
            self.seq_offsets, self.seq_chains, self.seq_positions)
        return LabelStore.compressed(
            self.num_chains, self.chain_of, self.position_of,
            self.rank_of, self.level_of, byte_offsets, blob,
            num_entries=len(self.seq_chains))

    def to_packed(self) -> "LabelStore":
        if self.codec == "packed":
            return self
        n = self.num_nodes
        offsets = array("l", [0]) * (n + 1)
        chains = array("l")
        positions = array("l")
        blob = self.seq_blob
        byte_offsets = self.seq_offsets
        for v in range(n):
            for chain, position in decode_sequence(
                    blob, byte_offsets[v], byte_offsets[v + 1]):
                chains.append(chain)
                positions.append(position)
            offsets[v + 1] = len(chains)
        return LabelStore.packed(
            self.num_chains, self.chain_of, self.position_of,
            self.rank_of, self.level_of, offsets, chains, positions)

    # ------------------------------------------------------------------
    # shared views and accounting
    # ------------------------------------------------------------------
    @property
    def num_nodes(self) -> int:
        return len(self.chain_of)

    def fields(self) -> dict:
        """The live column buffers, keyed by their persistence names.

        This is the single shared view of the store: the persistence
        writer serialises exactly these fields, :meth:`checksum` is
        defined over them in this key order, and the shared-memory
        publisher maps their raw bytes into a segment.  Values are the
        live buffers — never copies.
        """
        if self.codec == "packed":
            return {
                "chain_of": self.chain_of,
                "position_of": self.position_of,
                "rank_of": self.rank_of,
                "level_of": self.level_of,
                "sequence_offsets": self.seq_offsets,
                "sequence_chains": self.seq_chains,
                "sequence_positions": self.seq_positions,
            }
        return {
            "chain_of": self.chain_of,
            "position_of": self.position_of,
            "rank_of": self.rank_of,
            "level_of": self.level_of,
            "sequence_byte_offsets": self.seq_offsets,
            "sequence_blob": self.seq_blob,
        }

    def checksum(self) -> int:
        """The codec-appropriate CRC32 over :meth:`fields`."""
        if self.codec == "packed":
            return packed_checksum(self.fields())
        return compressed_checksum(self.fields())

    def sequence_items(self, node_id: int) -> list[tuple[int, int]]:
        """Node's sorted ``(chain, position)`` pairs, decoded if needed."""
        lo = self.seq_offsets[node_id]
        hi = self.seq_offsets[node_id + 1]
        if self.codec == "packed":
            return list(zip(self.seq_chains[lo:hi],
                            self.seq_positions[lo:hi]))
        return decode_sequence(self.seq_blob, lo, hi)

    def sequence_length(self, node_id: int) -> int:
        if self.codec == "packed":
            return (self.seq_offsets[node_id + 1]
                    - self.seq_offsets[node_id])
        return len(self.sequence_items(node_id))

    def nbytes(self) -> int:
        """Actual bytes held by the label columns under this codec."""
        total = sum(buffer.itemsize * len(buffer)
                    for buffer in (self.chain_of, self.position_of,
                                   self.rank_of, self.level_of,
                                   self.seq_offsets))
        if self.codec == "packed":
            total += self.seq_chains.itemsize * len(self.seq_chains)
            total += (self.seq_positions.itemsize
                      * len(self.seq_positions))
        else:
            total += len(self.seq_blob)
        return total
