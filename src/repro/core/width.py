"""DAG width and maximum antichains.

The width ``b`` of a DAG — the size of a largest node subset with no
path between any two members — drives every bound in the paper:
``O(bn)`` space, ``O(log b)`` query time, ``O(be)`` labeling time.  This
module computes it exactly and can extract a witness antichain via
König's theorem, which tests use to confirm both the width value and
the minimality of the chain decompositions (a ``b``-chain cover plus a
``b``-node antichain sandwich the optimum from both sides).
"""

from __future__ import annotations

from collections import deque

from repro.core.closure_cover import closure_matching, dag_width
from repro.graph.closure import descendants_bitsets
from repro.graph.digraph import DiGraph
from repro.matching.bipartite import Matching

__all__ = ["dag_width", "maximum_antichain"]


def maximum_antichain(graph: DiGraph) -> list:
    """A largest antichain, as node objects.

    König's theorem on the closure bipartite graph: starting from the
    free tails, alternate unmatched tail→head and matched head→tail
    steps; with reachable sets ``Z_T`` (tails) and ``Z_S`` (heads), the
    complement of the minimum vertex cover picks exactly the nodes whose
    tail copy is in ``Z_T`` and whose head copy is not in ``Z_S`` —
    ``width(G)`` pairwise-incomparable nodes.
    """
    n = graph.num_nodes
    if n == 0:
        return []
    reach = descendants_bitsets(graph)
    matching = closure_matching(graph)

    in_z_tails = [False] * n
    in_z_heads = [False] * n
    queue: deque[int] = deque()
    for v in range(n):
        if matching.bottom_of[v] == Matching.UNMATCHED:
            in_z_tails[v] = True
            queue.append(v)
    while queue:
        tail = queue.popleft()
        row = reach[tail]
        matched_head = matching.bottom_of[tail]
        while row:
            low = row & -row
            head = low.bit_length() - 1
            row ^= low
            if head == matched_head or in_z_heads[head]:
                continue
            in_z_heads[head] = True
            next_tail = matching.top_of[head]
            if next_tail != Matching.UNMATCHED and not in_z_tails[next_tail]:
                in_z_tails[next_tail] = True
                queue.append(next_tail)

    antichain = [graph.node_at(v) for v in range(n)
                 if in_z_tails[v] and not in_z_heads[v]]
    return antichain
