"""The paper's contribution: stratified minimum chain cover + labeling."""

from repro.core.chains import ChainDecomposition
from repro.core.closure_cover import closure_chain_cover
from repro.core.index import ChainIndex
from repro.core.inspection import trace_decomposition
from repro.core.labeling import ChainLabeling, build_labeling
from repro.core.maintenance import DynamicChainIndex
from repro.core.persistence import load_index, save_index
from repro.core.protocols import BatchReachability
from repro.core.stitch import stitch_chains
from repro.core.stratification import Stratification, stratify
from repro.core.stratified import (
    DecompositionStats,
    stratified_chain_cover,
    stratified_chain_cover_with_stats,
)
from repro.core.width import dag_width, maximum_antichain

__all__ = [
    "ChainIndex",
    "DynamicChainIndex",
    "BatchReachability",
    "stitch_chains",
    "trace_decomposition",
    "save_index",
    "load_index",
    "ChainDecomposition",
    "ChainLabeling",
    "build_labeling",
    "Stratification",
    "stratify",
    "DecompositionStats",
    "stratified_chain_cover",
    "stratified_chain_cover_with_stats",
    "closure_chain_cover",
    "dag_width",
    "maximum_antichain",
]
