"""Chain decompositions of a DAG.

A *chain* here is the paper's notion (Section II): an ordered node list
such that whenever ``v`` appears above ``u``, there is a path ``v ⇝ u``
in the graph — consecutive chain members need only be connected in the
transitive closure, not by a direct edge.  A *chain decomposition*
partitions every node into disjoint chains; a minimum one has exactly
``width(G)`` chains (Dilworth's theorem).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.graph.closure import descendants_bitsets
from repro.graph.digraph import DiGraph
from repro.graph.errors import InvalidChainError

__all__ = ["ChainDecomposition"]


@dataclass
class ChainDecomposition:
    """Disjoint chains covering a DAG, each ordered top (ancestor) first.

    ``chains[c][0]`` is the highest node of chain ``c``;
    ``chain_of[v]`` / ``position_of[v]`` give node ``v``'s coordinate —
    the paper's index ``(i, j)`` with 0-based ``c`` and ``j``.
    """

    chains: list[list[int]]
    chain_of: list[int] = field(default_factory=list)
    position_of: list[int] = field(default_factory=list)

    def __post_init__(self) -> None:
        if not self.chain_of:
            members = [v for chain in self.chains for v in chain]
            if members and min(members) < 0:
                raise InvalidChainError("negative node id in chain")
            size = max(members) + 1 if members else 0
            self.chain_of = [-1] * size
            self.position_of = [-1] * size
            for c, chain in enumerate(self.chains):
                for j, v in enumerate(chain):
                    self.chain_of[v] = c
                    self.position_of[v] = j

    @property
    def num_chains(self) -> int:
        """Number of chains (equals the width when minimum)."""
        return len(self.chains)

    @property
    def num_nodes(self) -> int:
        """Total nodes covered by the chains."""
        return sum(len(chain) for chain in self.chains)

    def coordinate(self, v: int) -> tuple[int, int]:
        """``(chain, position)`` of dense node id ``v``."""
        return self.chain_of[v], self.position_of[v]

    def as_node_chains(self, graph: DiGraph) -> list[list]:
        """Chains as node objects (for presentation)."""
        return [[graph.node_at(v) for v in chain] for chain in self.chains]

    # ------------------------------------------------------------------
    # validation
    # ------------------------------------------------------------------
    def check_partition(self, graph: DiGraph) -> None:
        """Every node appears on exactly one chain."""
        seen: set[int] = set()
        for chain in self.chains:
            if not chain:
                raise InvalidChainError("empty chain in decomposition")
            for v in chain:
                if not 0 <= v < graph.num_nodes:
                    raise InvalidChainError(f"node id {v} out of range")
                if v in seen:
                    raise InvalidChainError(
                        f"node id {v} appears on two chains")
                seen.add(v)
        if len(seen) != graph.num_nodes:
            missing = set(range(graph.num_nodes)) - seen
            raise InvalidChainError(
                f"{len(missing)} nodes missing from the decomposition "
                f"(e.g. id {min(missing)})")

    def check_order(self, graph: DiGraph) -> None:
        """Every adjacent chain pair is reachable: above ⇝ below.

        Checking adjacent pairs suffices — reachability is transitive,
        so it implies the property for all pairs on the chain.
        """
        reach = descendants_bitsets(graph)
        for c, chain in enumerate(self.chains):
            for above, below in zip(chain, chain[1:]):
                if not (reach[above] >> below) & 1:
                    raise InvalidChainError(
                        f"chain {c}: node id {above} does not reach "
                        f"{below}")

    def check(self, graph: DiGraph) -> None:
        """Full validity check: partition + reachability order."""
        self.check_partition(graph)
        self.check_order(graph)
