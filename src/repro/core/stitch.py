"""Tail-to-head chain stitching — the decomposition's final polish.

Phase 1's level-local maximum matchings occasionally commit to a pairing
whose rerouting promise cannot be realised once other transfers have
been committed (resolution then splits a chain).  The residual gap is
tiny — a handful of chains on adversarial random DAGs — and is closed
here by one global pass: build the bipartite graph of chain *tails*
versus chain *heads* with an edge when the tail reaches the head, take
a maximum matching, and concatenate along the matched pairs.

Merging is always sound (a tail reaching a head extends the reachability
order) and always acyclic (chain A adopting chain B implies a strict
topological advance, so adoption cycles would be graph cycles).  The
pass costs one BFS per chain tail plus one Hopcroft–Karp run — far
below materialising the closure.
"""

from __future__ import annotations

from repro.core.chains import ChainDecomposition
from repro.graph.digraph import DiGraph
from repro.matching.bipartite import BipartiteGraph, Matching
from repro.matching.hopcroft_karp import hopcroft_karp

__all__ = ["stitch_chains"]


def stitch_chains(graph: DiGraph,
                  decomposition: ChainDecomposition) -> ChainDecomposition:
    """Merge chains whose tail reaches another chain's head.

    Returns a new decomposition with at most as many chains; the input
    is left untouched.
    """
    chains = decomposition.chains
    k = len(chains)
    if k <= 1:
        return decomposition
    head_chain_of: dict[int, int] = {}
    for c, chain in enumerate(chains):
        head_chain_of[chain[0]] = c

    bipartite = BipartiteGraph(k, k)
    for c, chain in enumerate(chains):
        tail = chain[-1]
        seen = {tail}
        frontier = [tail]
        while frontier:
            next_frontier: list[int] = []
            for v in frontier:
                for w in graph.successor_ids(v):
                    if w in seen:
                        continue
                    seen.add(w)
                    next_frontier.append(w)
                    other = head_chain_of.get(w)
                    if other is not None and other != c:
                        bipartite.add_edge(c, other)
            frontier = next_frontier
    matching = hopcroft_karp(bipartite)
    if matching.size() == 0:
        return decomposition

    adopted_by = matching.top_of  # head chain -> adopting tail chain
    merged: list[list[int]] = []
    for c in range(k):
        if adopted_by[c] != Matching.UNMATCHED:
            continue  # not a start of a merged run
        run: list[int] = []
        current = c
        while True:
            run.extend(chains[current])
            current = matching.bottom_of[current]
            if current == Matching.UNMATCHED:
                break
        merged.append(run)
    return ChainDecomposition(chains=merged)
