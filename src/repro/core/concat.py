"""Near-linear chain cover by greedy path growth + chain concatenation.

The paper's stratified pipeline finds a *minimum* chain decomposition
via level-by-level Hopcroft–Karp matchings — optimal width, but the
matching phase is the build-time wall on million-node graphs.
Kritikakis & Tollis ("Fast and Practical DAG Decomposition with
Reachability Applications", PAPERS.md) observe that a *near*-minimum
cover answers the same queries with labels only slightly wider, and
that one can be produced in O(n + e):

1. **Greedy path growth.**  Scan the nodes in topological order; append
   node ``v`` to a chain whose current tail is one of ``v``'s direct
   predecessors (consuming that tail), otherwise open a new chain with
   head ``v``.  Every adjacency is an edge, so consecutive chain
   members are connected by construction — no transitive-closure
   reasoning needed.
2. **Chain concatenation.**  After the sweep some chain *heads* have a
   direct edge from another chain's *final* tail (the tail was
   momentarily consumed when the head was scanned, then the chain grew
   back).  Greedily splice such pairs — whole chains, tail onto head —
   with a union–find over chains.  Both sides are ordered by
   reachability and the splice edge is real, so the concatenated
   sequence is again a valid chain.

The result trades optimality for speed: the cover may be wider than
the DAG's true width (labels grow proportionally), but the build does
no matching at all.  ``ChainIndex.build(graph, method="concat")``
exposes it; the scale benchmark quantifies the trade against
``stratified``.
"""

from __future__ import annotations

from repro.core.chains import ChainDecomposition
from repro.graph.digraph import DiGraph
from repro.graph.topology import topological_order_ids
from repro.obs import OBS

__all__ = ["concat_chain_cover"]


def concat_chain_cover(graph: DiGraph) -> ChainDecomposition:
    """Chain-decompose a DAG in O(n + e) (near-minimum width).

    Emits the ``concat`` span; when observability is enabled it also
    counts ``concat/splices`` — the number of whole-chain
    concatenations the second phase performed.
    """
    with OBS.span("concat"):
        n = graph.num_nodes
        order = topological_order_ids(graph)
        chain_id = [-1] * n
        chains: list[list[int]] = []
        tail_of: list[int] = []         # chain -> current tail node
        predecessor_ids = graph.predecessor_ids
        for v in order:
            chosen = -1
            for p in predecessor_ids(v):
                c = chain_id[p]
                if tail_of[c] == p:
                    chosen = c
                    break
            if chosen >= 0:
                chains[chosen].append(v)
                tail_of[chosen] = v
                chain_id[v] = chosen
            else:
                chain_id[v] = len(chains)
                chains.append([v])
                tail_of.append(v)

        spliced = _concatenate(graph, chains, chain_id, tail_of)
        if OBS.enabled:
            OBS.count("concat/splices", spliced)
        return ChainDecomposition(chains=chains)


def _concatenate(graph: DiGraph, chains: list[list[int]],
                 chain_id: list[int], tail_of: list[int]) -> int:
    """Splice chains whose head hangs off another chain's final tail.

    Mutates ``chains`` in place (spliced-away chains become empty and
    are compacted out) and returns the number of splices.  A chain
    ``B`` may be appended to group ``A`` only when the edge
    ``tail(A) -> head(B)`` exists and ``tail(A)`` is the group's
    *final* tail — both groups are internally ordered by reachability,
    and the splice edge extends that order, so the concatenation is a
    valid chain; topological order of the endpoints rules out cycles
    among splices.
    """
    k = len(chains)
    parent = list(range(k))

    def find(c: int) -> int:
        root = c
        while parent[root] != root:
            root = parent[root]
        while parent[c] != root:        # path compression
            parent[c], c = root, parent[c]
        return root

    group_tail = list(tail_of)          # by root: final tail node
    group_chains: list[list[int]] = [[c] for c in range(k)]
    absorbed = [False] * k
    spliced = 0
    predecessor_ids = graph.predecessor_ids
    # chain c's head was scanned before chain c+1's head, so index
    # order is topological head order — splices only ever look back.
    for b in range(k):
        if absorbed[b]:
            continue
        head = chains[b][0]
        for p in predecessor_ids(head):
            a = find(chain_id[p])
            if a == b or group_tail[a] != p:
                continue
            # append B's whole group after A's group
            parent[b] = a
            group_tail[a] = group_tail[b]
            group_chains[a].extend(group_chains[b])
            group_chains[b] = []
            absorbed[b] = True
            spliced += 1
            break
    if spliced:
        merged: list[list[int]] = []
        for c in range(k):
            if absorbed[c] or not group_chains[c]:
                continue
            sequence = chains[group_chains[c][0]]
            for member in group_chains[c][1:]:
                sequence.extend(chains[member])
            merged.append(sequence)
        chains[:] = merged
    return spliced
