"""Saving and loading a built :class:`ChainIndex`.

The index is the product of the expensive part of the pipeline
(decomposition + labeling); persisting it lets a database open a graph
snapshot and answer queries immediately.  The format is a single JSON
document with a version header:

* ``members`` — the SCC membership lists (node labels must be
  JSON-representable: str, int, float, bool — the usual database key
  types);
* ``chains`` — the decomposition over component ids;
* ``labeling`` — the packed label arrays, serialized exactly as the
  in-memory CSR layout of :class:`repro.core.labeling.ChainLabeling`:
  flat ``chain_of`` / ``position_of`` / ``rank_of`` / ``level_of``
  integer lists plus the ``sequence_offsets`` / ``sequence_chains`` /
  ``sequence_positions`` triple (node ``v``'s sequence is the slice
  ``[sequence_offsets[v], sequence_offsets[v+1])``).

Format version 2 introduced the packed layout (version 1 stored
per-node nested lists).  JSON keeps the format transparent and
diff-able; the arrays are flat integer lists, so even large indexes
stay compact after whatever transport compression the deployment
applies, and loading is a straight ``array('l')`` fill per field.

Every file written since the checksum was introduced also carries
``labeling_crc32`` — a CRC32 over the packed label arrays in a
platform-independent byte form.  :func:`load_index` recomputes and
compares it, raising :class:`IndexFormatError` on mismatch, so a
truncated or bit-flipped index cannot be silently served; files
written before the field existed (no ``labeling_crc32`` key) still
load.

Format version 3 (additive — version-2 files keep loading unchanged)
persists a :class:`~repro.engine.composite.CompositeEngine`: a manifest
carrying the sub-engine name and a ``partitions`` list in which every
entry is a complete version-2 document for one weak component's chain
index.  Each partition therefore carries — and is verified against —
its own ``labeling_crc32``, so corruption in any single component fails
the whole load.  :func:`save_index` accepts a :class:`ChainIndex`, a
``ChainEngine`` wrapper, or a chain-backed composite, and
:func:`load_index` returns whichever of :class:`ChainIndex` /
``CompositeEngine`` the file holds.
"""

from __future__ import annotations

import json
import zlib
from array import array
from pathlib import Path
from typing import TextIO

from repro.core.chains import ChainDecomposition
from repro.core.index import ChainIndex
from repro.core.labeling import ChainLabeling, packed_fields
from repro.graph.digraph import DiGraph
from repro.graph.errors import GraphFormatError, IndexFormatError
from repro.graph.scc import Condensation
from repro.obs import OBS

__all__ = ["save_index", "load_index", "labeling_checksum",
           "FORMAT_VERSION", "COMPOSITE_FORMAT_VERSION"]

FORMAT_VERSION = 2
COMPOSITE_FORMAT_VERSION = 3
_JSON_SAFE = (str, int, float, bool)

#: field order is part of the checksum definition — never reorder.
_CHECKSUM_FIELDS = ("chain_of", "position_of", "rank_of", "level_of",
                    "sequence_offsets", "sequence_chains",
                    "sequence_positions")


def labeling_checksum(fields: dict) -> int:
    """CRC32 of the packed label arrays of a format-v2 document.

    Computed over the decimal rendering of each array (not its raw
    bytes) so the value is independent of the platform's ``array('l')``
    item width; each field is prefixed by its name to keep array
    boundaries unambiguous.
    """
    crc = 0
    for name in _CHECKSUM_FIELDS:
        crc = zlib.crc32(name.encode("ascii"), crc)
        crc = zlib.crc32(
            (":" + ",".join(map(str, fields[name]))).encode("ascii"), crc)
    return crc


def save_index(index, target: str | Path | TextIO) -> None:
    """Serialise an index (or chain-backed engine) as JSON.

    Accepts a :class:`ChainIndex` (written as a version-2 document), a
    ``ChainEngine`` adapter (its wrapped index is written), or a
    ``CompositeEngine`` whose partitions are chain-backed (written as a
    version-3 manifest of per-component version-2 payloads).  Raises
    :class:`GraphFormatError` when a node label is not a JSON scalar
    (tuples and arbitrary objects do not round-trip) or when the engine
    is not persistable.  Emits the ``persist/save`` span.
    """
    with OBS.span("persist/save"):
        _write(_to_document(index), target)


def _to_document(index) -> dict:
    if isinstance(index, ChainIndex):
        return _document(index)
    if hasattr(index, "engines") and hasattr(index, "sub_engine"):
        return _composite_document(index)
    inner = getattr(index, "index", None)
    if isinstance(inner, ChainIndex):
        return _document(inner)
    raise GraphFormatError(
        f"cannot persist {type(index).__name__}: only ChainIndex, "
        f"chain engines and chain-backed composites serialise")


def _composite_document(engine) -> dict:
    partitions = []
    for sub in engine.engines:
        inner = sub if isinstance(sub, ChainIndex) \
            else getattr(sub, "index", None)
        if not isinstance(inner, ChainIndex):
            raise GraphFormatError(
                f"composite partition {type(sub).__name__} is not "
                f"chain-backed; only chain sub-engines persist")
        partitions.append(_document(inner))
    return {
        "format": "repro-chain-index",
        "version": COMPOSITE_FORMAT_VERSION,
        "kind": "composite",
        "sub_engine": engine.sub_engine,
        "partitions": partitions,
    }


def _write(document: dict, target: str | Path | TextIO) -> None:
    if isinstance(target, (str, Path)):
        with open(target, "w", encoding="utf-8") as handle:
            json.dump(document, handle, separators=(",", ":"))
    else:
        json.dump(document, target, separators=(",", ":"))


def _document(index: ChainIndex) -> dict:
    condensation = index._condensation
    for members in condensation.members:
        for node in members:
            if not isinstance(node, _JSON_SAFE):
                raise GraphFormatError(
                    f"node label {node!r} is not JSON-serialisable; "
                    f"persistence supports str/int/float/bool labels")
    labeling = index._labeling
    # packed_fields is the single shared view of the labeling's
    # storage: the same seven buffers (owned arrays or borrowed
    # shared-memory views) feed this JSON dump, the checksum and the
    # repro.service.shm segment writer.
    packed = {"num_chains": labeling.num_chains}
    packed.update((name, buffer.tolist())
                  for name, buffer in packed_fields(labeling).items())
    return {
        "format": "repro-chain-index",
        "version": FORMAT_VERSION,
        "method": index.method,
        "members": condensation.members,
        "dag_edges": [list(edge) for edge in condensation.dag.edges()],
        "chains": index._decomposition.chains,
        "labeling": packed,
        "labeling_crc32": labeling_checksum(packed),
    }


def load_index(source: str | Path | TextIO):
    """Load an index written by :func:`save_index`.

    Returns a :class:`ChainIndex` for a version-2 file and a
    ``CompositeEngine`` for a version-3 composite manifest.  Raises
    :class:`GraphFormatError` on malformed or wrong-version input and
    :class:`IndexFormatError` on a checksum mismatch (any partition, for
    composites).  The loaded index is fully equivalent: queries,
    descendant and ancestor enumeration all behave as on the originally
    built one.  Emits the ``persist/load`` span.
    """
    with OBS.span("persist/load"):
        return _load_index(source)


def _load_index(source: str | Path | TextIO):
    if isinstance(source, (str, Path)):
        with open(source, "r", encoding="utf-8") as handle:
            document = _parse(handle)
    else:
        document = _parse(source)
    if document["version"] == COMPOSITE_FORMAT_VERSION:
        return _load_composite(document)
    return _index_from_document(document)


def _load_composite(document: dict):
    from repro.engine.adapters import ChainEngine
    from repro.engine.composite import CompositeEngine

    sub_engine = document.get("sub_engine")
    if not isinstance(sub_engine, str):
        raise GraphFormatError("composite manifest missing sub_engine")
    partitions = document.get("partitions")
    if not isinstance(partitions, list):
        raise GraphFormatError(
            "composite manifest missing partitions list")
    component_of: dict = {}
    members: list[list] = []
    engines: list = []
    for position, payload in enumerate(partitions):
        if not isinstance(payload, dict):
            raise GraphFormatError(
                f"partition {position} is not a JSON object")
        try:
            partition_document = _check_single(payload)
            index = _index_from_document(partition_document)
        except IndexFormatError as exc:
            raise IndexFormatError(
                f"partition {position}: {exc}") from None
        except GraphFormatError as exc:
            raise GraphFormatError(
                f"partition {position}: {exc}") from None
        nodes = [node for component in partition_document["members"]
                 for node in component]
        for node in nodes:
            if node in component_of:
                raise GraphFormatError(
                    f"node {node!r} appears in partitions "
                    f"{component_of[node]} and {position}")
            component_of[node] = position
        members.append(nodes)
        engines.append(ChainEngine(index, name=sub_engine))
    return CompositeEngine(component_of, members, engines, sub_engine)


def _index_from_document(document: dict) -> ChainIndex:
    members = document["members"]
    component_of = {}
    for component, nodes in enumerate(members):
        for node in nodes:
            component_of[node] = component
    dag = DiGraph()
    for component in range(len(members)):
        dag.add_node(component)
    for tail, head in document["dag_edges"]:
        if not (0 <= tail < len(members) and 0 <= head < len(members)):
            raise GraphFormatError(
                f"dag edge ({tail}, {head}) out of range")
        dag.add_edge(tail, head)
    condensation = Condensation(dag=dag, component_of=component_of,
                                members=members)
    decomposition = ChainDecomposition(chains=document["chains"])
    raw = document["labeling"]
    try:
        labeling = ChainLabeling(
            num_chains=raw["num_chains"],
            chain_of=array("l", raw["chain_of"]),
            position_of=array("l", raw["position_of"]),
            rank_of=array("l", raw["rank_of"]),
            level_of=array("l", raw["level_of"]),
            seq_offsets=array("l", raw["sequence_offsets"]),
            seq_chains=array("l", raw["sequence_chains"]),
            seq_positions=array("l", raw["sequence_positions"]),
        )
    except KeyError as exc:
        raise GraphFormatError(
            f"labeling is missing field {exc.args[0]!r}") from None
    except (TypeError, ValueError, OverflowError) as exc:
        raise GraphFormatError(
            f"labeling arrays must be flat integer lists: {exc}"
        ) from None
    if not isinstance(labeling.num_chains, int):
        raise GraphFormatError("num_chains must be an integer")
    recorded_crc = document.get("labeling_crc32")
    if recorded_crc is not None:
        actual_crc = labeling_checksum(raw)
        if actual_crc != recorded_crc:
            raise IndexFormatError(
                f"labeling checksum mismatch: file records CRC32 "
                f"{recorded_crc}, arrays hash to {actual_crc} — the "
                f"index file is truncated or corrupt; rebuild it with "
                f"save_index")
    _validate(members, decomposition, labeling)
    return ChainIndex(condensation, decomposition, labeling,
                      document["method"])


def _parse(handle: TextIO) -> dict:
    try:
        document = json.load(handle)
    except json.JSONDecodeError as exc:
        raise GraphFormatError(f"not valid JSON: {exc}") from None
    if not isinstance(document, dict) or document.get(
            "format") != "repro-chain-index":
        raise GraphFormatError("not a repro chain-index file")
    version = document.get("version")
    if version == COMPOSITE_FORMAT_VERSION:
        return document
    return _check_single(document)


def _check_single(document: dict) -> dict:
    """Validate the header + field skeleton of a version-2 document."""
    if document.get("version") != FORMAT_VERSION:
        raise GraphFormatError(
            f"unsupported format version {document.get('version')!r} "
            f"(expected {FORMAT_VERSION} or "
            f"{COMPOSITE_FORMAT_VERSION})")
    for key in ("members", "chains", "labeling", "method", "dag_edges"):
        if key not in document:
            raise GraphFormatError(f"missing field {key!r}")
    return document


def _validate(members: list, decomposition: ChainDecomposition,
              labeling: ChainLabeling) -> None:
    count = len(members)
    covered = sorted(v for chain in decomposition.chains for v in chain)
    if covered != list(range(count)):
        raise GraphFormatError(
            "chains do not partition the component ids")
    for field in (labeling.chain_of, labeling.position_of,
                  labeling.rank_of, labeling.level_of):
        if len(field) != count:
            raise GraphFormatError("labeling arrays have wrong length")
    offsets = labeling.seq_offsets
    if len(offsets) != count + 1 or offsets[0] != 0:
        raise GraphFormatError("sequence_offsets has wrong shape")
    if len(labeling.seq_chains) != len(labeling.seq_positions):
        raise GraphFormatError("ragged index sequence")
    if offsets[-1] != len(labeling.seq_chains):
        raise GraphFormatError(
            "sequence_offsets do not cover the sequence arrays")
    seq_chains = labeling.seq_chains
    for v in range(count):
        lo, hi = offsets[v], offsets[v + 1]
        if lo > hi:
            raise GraphFormatError("sequence_offsets not monotone")
        for i in range(lo + 1, hi):
            if seq_chains[i - 1] >= seq_chains[i]:
                raise GraphFormatError(
                    "index sequence not sorted/unique")
    if sorted(labeling.rank_of) != list(range(count)):
        raise GraphFormatError(
            "rank_of is not a permutation of the component ids")
