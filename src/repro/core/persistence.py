"""Saving and loading a built :class:`ChainIndex`.

The index is the product of the expensive part of the pipeline
(decomposition + labeling); persisting it lets a database open a graph
snapshot and answer queries immediately.  The format is a single JSON
document with a version header:

* ``members`` — the SCC membership lists (node labels must be
  JSON-representable: str, int, float, bool — the usual database key
  types);
* ``chains`` — the decomposition over component ids;
* ``labeling`` — the label columns of the index's
  :class:`~repro.core.labelstore.LabelStore`, under the codec named by
  the document's ``codec`` field.

Format version 2 introduced the packed layout (version 1 stored
per-node nested lists): flat ``chain_of`` / ``position_of`` /
``rank_of`` / ``level_of`` integer lists plus the
``sequence_offsets`` / ``sequence_chains`` / ``sequence_positions``
CSR triple (node ``v``'s sequence is the slice
``[sequence_offsets[v], sequence_offsets[v+1])``).

Format version 4 adds the ``codec`` field and the ``compressed``
payload: the four scalar columns stay flat integer lists, while the
sequences ship as one base64 ``sequence_blob`` of delta/varint pairs
delimited by ``sequence_byte_offsets`` (see
:mod:`repro.core.labelstore` for the bit layout) plus an ``entries``
count.  A version-4 document with ``codec: "packed"`` carries exactly
the version-2 labeling fields.  Version-2 files keep loading
unchanged.

Every file carries ``labeling_crc32`` — a CRC32 over the label
columns in a platform-independent byte form
(:func:`~repro.core.labelstore.packed_checksum` /
:func:`~repro.core.labelstore.compressed_checksum`; for the
compressed codec the CRC covers the raw varint bytes, and the
shared-memory publisher records the *same* value, so a file load and
an shm attach validate identically).  :func:`load_index` recomputes
and compares it, raising :class:`IndexFormatError` on mismatch, so a
truncated or bit-flipped index cannot be silently served; files
written before the field existed (no ``labeling_crc32`` key) still
load.

Format version 3 (additive — version-2 files keep loading unchanged)
persists a :class:`~repro.engine.composite.CompositeEngine`: a manifest
carrying the sub-engine name and a ``partitions`` list in which every
entry is a complete single-index document for one weak component's
chain index (version 2 or 4 — old manifests embed version-2 payloads
and keep loading).  Each partition therefore carries — and is verified
against — its own ``labeling_crc32``, so corruption in any single
component fails the whole load.  :func:`save_index` accepts a
:class:`ChainIndex`, a ``ChainEngine`` wrapper, or a chain-backed
composite, and :func:`load_index` returns whichever of
:class:`ChainIndex` / ``CompositeEngine`` the file holds.
"""

from __future__ import annotations

import base64
import binascii
import json
from array import array
from pathlib import Path
from typing import TextIO

from repro.core.chains import ChainDecomposition
from repro.core.index import ChainIndex
from repro.core.labeling import ChainLabeling, labeling_from_store
from repro.core.labelstore import (
    CODECS,
    LabelStore,
    compressed_checksum,
    packed_checksum,
)
from repro.graph.digraph import DiGraph
from repro.graph.errors import GraphFormatError, IndexFormatError
from repro.graph.scc import Condensation
from repro.obs import OBS

__all__ = ["save_index", "load_index", "describe_index_file",
           "labeling_checksum", "FORMAT_VERSION",
           "LEGACY_FORMAT_VERSION", "COMPOSITE_FORMAT_VERSION"]

FORMAT_VERSION = 4
LEGACY_FORMAT_VERSION = 2
COMPOSITE_FORMAT_VERSION = 3
_JSON_SAFE = (str, int, float, bool)

#: the version-2 labeling payload fields (also version 4, codec packed)
_PACKED_KEYS = ("chain_of", "position_of", "rank_of", "level_of",
                "sequence_offsets", "sequence_chains",
                "sequence_positions")
#: the version-4 compressed labeling payload fields
_COMPRESSED_KEYS = ("chain_of", "position_of", "rank_of", "level_of",
                    "sequence_byte_offsets", "sequence_blob", "entries")


def labeling_checksum(fields: dict) -> int:
    """CRC32 of the packed label arrays (the v2 checksum definition).

    Kept as the public name; the implementation lives in
    :func:`repro.core.labelstore.packed_checksum`, which the
    shared-memory publisher uses too.
    """
    return packed_checksum(fields)


def save_index(index, target: str | Path | TextIO, *,
               codec: str | None = None) -> None:
    """Serialise an index (or chain-backed engine) as JSON.

    Accepts a :class:`ChainIndex` (written as a single-index
    document), a ``ChainEngine`` adapter (its wrapped index is
    written), or a ``CompositeEngine`` whose partitions are
    chain-backed (written as a version-3 manifest of per-component
    payloads).  ``codec`` forces the label codec on disk (``packed``
    or ``compressed``); by default each index keeps its in-memory
    codec.  Single-index documents are written as format version 4
    with an explicit ``codec`` field (version-2 files written by
    earlier releases keep loading).  Raises :class:`GraphFormatError` when a
    node label is not a JSON scalar (tuples and arbitrary objects do
    not round-trip) or when the engine is not persistable.  Emits the
    ``persist/save`` span.
    """
    if codec is not None and codec not in CODECS:
        raise GraphFormatError(
            f"unknown label codec {codec!r}; expected one of {CODECS}")
    with OBS.span("persist/save"):
        _write(_to_document(index, codec), target)


def _to_document(index, codec: str | None = None) -> dict:
    if isinstance(index, ChainIndex):
        return _document(index, codec)
    if hasattr(index, "engines") and hasattr(index, "sub_engine"):
        return _composite_document(index, codec)
    inner = getattr(index, "index", None)
    if isinstance(inner, ChainIndex):
        return _document(inner, codec)
    raise GraphFormatError(
        f"cannot persist {type(index).__name__}: only ChainIndex, "
        f"chain engines and chain-backed composites serialise")


def _composite_document(engine, codec: str | None = None) -> dict:
    partitions = []
    for sub in engine.engines:
        inner = sub if isinstance(sub, ChainIndex) \
            else getattr(sub, "index", None)
        if not isinstance(inner, ChainIndex):
            raise GraphFormatError(
                f"composite partition {type(sub).__name__} is not "
                f"chain-backed; only chain sub-engines persist")
        partitions.append(_document(inner, codec))
    return {
        "format": "repro-chain-index",
        "version": COMPOSITE_FORMAT_VERSION,
        "kind": "composite",
        "sub_engine": engine.sub_engine,
        "partitions": partitions,
    }


def _write(document: dict, target: str | Path | TextIO) -> None:
    if isinstance(target, (str, Path)):
        with open(target, "w", encoding="utf-8") as handle:
            json.dump(document, handle, separators=(",", ":"))
    else:
        json.dump(document, target, separators=(",", ":"))


def _document(index: ChainIndex, codec: str | None = None) -> dict:
    condensation = index._condensation
    for members in condensation.members:
        for node in members:
            if not isinstance(node, _JSON_SAFE):
                raise GraphFormatError(
                    f"node label {node!r} is not JSON-serialisable; "
                    f"persistence supports str/int/float/bool labels")
    # store.fields() is the single shared view of the labeling's
    # storage: the same buffers (owned arrays or borrowed
    # shared-memory views) feed this JSON dump, the checksum and the
    # repro.service.shm segment writer.
    store = index._labeling.store.to_codec(codec or index.codec)
    if store.codec == "packed":
        packed = {"num_chains": store.num_chains}
        packed.update((name, buffer.tolist())
                      for name, buffer in store.fields().items())
    else:
        fields = store.fields()
        packed = {"num_chains": store.num_chains,
                  "entries": store.num_entries}
        packed.update(
            (name, buffer.tolist()) for name, buffer in fields.items()
            if name != "sequence_blob")
        packed["sequence_blob"] = base64.b64encode(
            bytes(fields["sequence_blob"])).decode("ascii")
    return {
        "format": "repro-chain-index",
        "version": FORMAT_VERSION,
        "codec": store.codec,
        "method": index.method,
        "members": condensation.members,
        "dag_edges": [list(edge) for edge in condensation.dag.edges()],
        "chains": index._decomposition.chains,
        "labeling": packed,
        "labeling_crc32": store.checksum(),
    }


def load_index(source: str | Path | TextIO):
    """Load an index written by :func:`save_index`.

    Returns a :class:`ChainIndex` for a single-index file (version 2
    or 4, either codec) and a ``CompositeEngine`` for a version-3
    composite manifest.  Raises :class:`GraphFormatError` on malformed
    or wrong-version input and :class:`IndexFormatError` on a checksum
    mismatch (any partition, for composites).  The loaded index is
    fully equivalent: queries, descendant and ancestor enumeration all
    behave as on the originally built one.  Emits the ``persist/load``
    span.
    """
    with OBS.span("persist/load"):
        return _load_index(source)


def _load_index(source: str | Path | TextIO):
    if isinstance(source, (str, Path)):
        with open(source, "r", encoding="utf-8") as handle:
            document = _parse(handle)
    else:
        document = _parse(source)
    if document["version"] == COMPOSITE_FORMAT_VERSION:
        return _load_composite(document)
    return _index_from_document(document)


def _load_composite(document: dict):
    from repro.engine.adapters import ChainEngine
    from repro.engine.composite import CompositeEngine

    sub_engine = document.get("sub_engine")
    if not isinstance(sub_engine, str):
        raise GraphFormatError("composite manifest missing sub_engine")
    partitions = document.get("partitions")
    if not isinstance(partitions, list):
        raise GraphFormatError(
            "composite manifest missing partitions list")
    component_of: dict = {}
    members: list[list] = []
    engines: list = []
    for position, payload in enumerate(partitions):
        if not isinstance(payload, dict):
            raise GraphFormatError(
                f"partition {position} is not a JSON object")
        try:
            partition_document = _check_single(payload)
            index = _index_from_document(partition_document)
        except IndexFormatError as exc:
            raise IndexFormatError(
                f"partition {position}: {exc}") from None
        except GraphFormatError as exc:
            raise GraphFormatError(
                f"partition {position}: {exc}") from None
        nodes = [node for component in partition_document["members"]
                 for node in component]
        for node in nodes:
            if node in component_of:
                raise GraphFormatError(
                    f"node {node!r} appears in partitions "
                    f"{component_of[node]} and {position}")
            component_of[node] = position
        members.append(nodes)
        engines.append(ChainEngine(index, name=sub_engine))
    return CompositeEngine(component_of, members, engines, sub_engine)


def _document_codec(document: dict) -> str:
    """The label codec a single-index document declares (or implies)."""
    if document.get("version") == LEGACY_FORMAT_VERSION:
        return "packed"
    codec = document.get("codec")
    if codec not in CODECS:
        raise GraphFormatError(
            f"version-{FORMAT_VERSION} document has invalid codec "
            f"{codec!r}; expected one of {CODECS}")
    return codec


def _store_from_document(document: dict) -> LabelStore:
    raw = document["labeling"]
    codec = _document_codec(document)
    try:
        if codec == "packed":
            store = LabelStore.packed(
                raw["num_chains"],
                chain_of=array("l", raw["chain_of"]),
                position_of=array("l", raw["position_of"]),
                rank_of=array("l", raw["rank_of"]),
                level_of=array("l", raw["level_of"]),
                seq_offsets=array("l", raw["sequence_offsets"]),
                seq_chains=array("l", raw["sequence_chains"]),
                seq_positions=array("l", raw["sequence_positions"]),
            )
        else:
            blob_b64 = raw["sequence_blob"]
            if not isinstance(blob_b64, str):
                raise GraphFormatError(
                    "sequence_blob must be a base64 string")
            try:
                blob = base64.b64decode(blob_b64.encode("ascii"),
                                        validate=True)
            except (binascii.Error, UnicodeEncodeError) as exc:
                raise GraphFormatError(
                    f"sequence_blob is not valid base64: {exc}"
                ) from None
            entries = raw["entries"]
            if not isinstance(entries, int) or entries < 0:
                raise GraphFormatError(
                    "entries must be a non-negative integer")
            store = LabelStore.compressed(
                raw["num_chains"],
                chain_of=array("l", raw["chain_of"]),
                position_of=array("l", raw["position_of"]),
                rank_of=array("l", raw["rank_of"]),
                level_of=array("l", raw["level_of"]),
                seq_byte_offsets=array(
                    "l", raw["sequence_byte_offsets"]),
                seq_blob=blob,
                num_entries=entries,
            )
    except KeyError as exc:
        raise GraphFormatError(
            f"labeling is missing field {exc.args[0]!r}") from None
    except (TypeError, ValueError, OverflowError) as exc:
        if isinstance(exc, GraphFormatError):
            raise
        raise GraphFormatError(
            f"labeling arrays must be flat integer lists: {exc}"
        ) from None
    if not isinstance(store.num_chains, int):
        raise GraphFormatError("num_chains must be an integer")
    return store


def _verify_checksum(document: dict, store: LabelStore) -> None:
    recorded_crc = document.get("labeling_crc32")
    if recorded_crc is None:
        return
    actual_crc = (packed_checksum if store.codec == "packed"
                  else compressed_checksum)(store.fields())
    if actual_crc != recorded_crc:
        raise IndexFormatError(
            f"labeling checksum mismatch: file records CRC32 "
            f"{recorded_crc}, arrays hash to {actual_crc} — the "
            f"index file is truncated or corrupt; rebuild it with "
            f"save_index")


def _index_from_document(document: dict) -> ChainIndex:
    members = document["members"]
    component_of = {}
    for component, nodes in enumerate(members):
        for node in nodes:
            component_of[node] = component
    dag = DiGraph()
    for component in range(len(members)):
        dag.add_node(component)
    for tail, head in document["dag_edges"]:
        if not (0 <= tail < len(members) and 0 <= head < len(members)):
            raise GraphFormatError(
                f"dag edge ({tail}, {head}) out of range")
        dag.add_edge(tail, head)
    condensation = Condensation(dag=dag, component_of=component_of,
                                members=members)
    decomposition = ChainDecomposition(chains=document["chains"])
    store = _store_from_document(document)
    _verify_checksum(document, store)
    labeling = labeling_from_store(store)
    _validate(members, decomposition, labeling)
    return ChainIndex(condensation, decomposition, labeling,
                      document["method"])


def _parse(handle: TextIO) -> dict:
    try:
        document = json.load(handle)
    except json.JSONDecodeError as exc:
        raise GraphFormatError(f"not valid JSON: {exc}") from None
    if not isinstance(document, dict) or document.get(
            "format") != "repro-chain-index":
        raise GraphFormatError("not a repro chain-index file")
    version = document.get("version")
    if version == COMPOSITE_FORMAT_VERSION:
        return document
    return _check_single(document)


def _check_single(document: dict) -> dict:
    """Validate the header + field skeleton of a single-index document."""
    if document.get("version") not in (LEGACY_FORMAT_VERSION,
                                       FORMAT_VERSION):
        raise GraphFormatError(
            f"unsupported format version {document.get('version')!r} "
            f"(expected {LEGACY_FORMAT_VERSION}, {COMPOSITE_FORMAT_VERSION} "
            f"or {FORMAT_VERSION})")
    for key in ("members", "chains", "labeling", "method", "dag_edges"):
        if key not in document:
            raise GraphFormatError(f"missing field {key!r}")
    _document_codec(document)     # rejects a bad/missing v4 codec early
    return document


def _validate(members: list, decomposition: ChainDecomposition,
              labeling: ChainLabeling) -> None:
    count = len(members)
    covered = sorted(v for chain in decomposition.chains for v in chain)
    if covered != list(range(count)):
        raise GraphFormatError(
            "chains do not partition the component ids")
    for field in (labeling.chain_of, labeling.position_of,
                  labeling.rank_of, labeling.level_of):
        if len(field) != count:
            raise GraphFormatError("labeling arrays have wrong length")
    offsets = labeling.seq_offsets
    if len(offsets) != count + 1 or offsets[0] != 0:
        raise GraphFormatError("sequence_offsets has wrong shape")
    store = labeling.store
    if store.codec == "packed":
        if len(store.seq_chains) != len(store.seq_positions):
            raise GraphFormatError("ragged index sequence")
        if offsets[-1] != len(store.seq_chains):
            raise GraphFormatError(
                "sequence_offsets do not cover the sequence arrays")
    elif offsets[-1] != len(store.seq_blob):
        raise GraphFormatError(
            "sequence_byte_offsets do not cover the sequence blob")
    entries = 0
    for v in range(count):
        if offsets[v] > offsets[v + 1]:
            raise GraphFormatError("sequence_offsets not monotone")
        try:
            items = store.sequence_items(v)
        except ValueError as exc:
            raise GraphFormatError(
                f"node {v}: corrupt sequence stream: {exc}") from None
        entries += len(items)
        for i in range(1, len(items)):
            if items[i - 1][0] >= items[i][0]:
                raise GraphFormatError(
                    "index sequence not sorted/unique")
    if entries != store.num_entries:
        raise GraphFormatError(
            f"sequence entry count mismatch: document declares "
            f"{store.num_entries}, stream decodes to {entries}")
    if sorted(labeling.rank_of) != list(range(count)):
        raise GraphFormatError(
            "rank_of is not a permutation of the component ids")


# ----------------------------------------------------------------------
# file inspection (CLI `stats --index`)
# ----------------------------------------------------------------------
def describe_index_file(path: str | Path) -> dict:
    """Summarise an index file: versions, codecs and sizes.

    Returns a dict with ``kind`` (``single`` | ``composite``),
    ``version``, ``codec`` (for composites: the partitions' codecs,
    deduplicated), ``method`` / ``sub_engine``, ``file_bytes`` (bytes
    on disk), ``label_bytes`` (in-memory label-column footprint under
    the stored codec), ``label_entries``, ``size_words``,
    ``components`` and ``chains``.  The file is parsed but *not*
    validated — checksums are not recomputed; use :func:`load_index`
    to actually serve it.
    """
    path = Path(path)
    file_bytes = path.stat().st_size
    with open(path, "r", encoding="utf-8") as handle:
        try:
            document = json.load(handle)
        except json.JSONDecodeError as exc:
            raise GraphFormatError(f"not valid JSON: {exc}") from None
    if not isinstance(document, dict) or document.get(
            "format") != "repro-chain-index":
        raise GraphFormatError("not a repro chain-index file")
    version = document.get("version")
    if version == COMPOSITE_FORMAT_VERSION:
        payloads = document.get("partitions")
        if not isinstance(payloads, list):
            raise GraphFormatError(
                "composite manifest missing partitions list")
        summary = {"kind": "composite", "version": version,
                   "sub_engine": document.get("sub_engine"),
                   "partitions": len(payloads)}
    else:
        payloads = [_check_single(document)]
        summary = {"kind": "single", "version": version,
                   "method": document.get("method")}
    codecs: list[str] = []
    label_bytes = label_entries = size_words = 0
    components = chains = 0
    for payload in payloads:
        store = _store_from_document(_check_single(payload))
        if store.codec not in codecs:
            codecs.append(store.codec)
        label_bytes += store.nbytes()
        label_entries += store.num_entries
        size_words += 2 * store.num_nodes + 2 * store.num_entries
        components += store.num_nodes
        chains += len(payload.get("chains", ()))
    summary.update(
        codec=codecs[0] if len(codecs) == 1 else sorted(codecs),
        file_bytes=file_bytes,
        label_bytes=label_bytes,
        label_entries=label_entries,
        size_words=size_words,
        components=components,
        chains=chains,
    )
    return summary
