"""Structural protocols shared by the reachability backends.

The serving layer (:mod:`repro.service`) dispatches queries against
*whichever* index currently backs the live snapshot — the frozen
:class:`~repro.core.index.ChainIndex` promoted by the last
rebuild-and-swap, or the mutable
:class:`~repro.core.maintenance.DynamicChainIndex` shadow absorbing
writes.  Both satisfy :class:`BatchReachability` structurally, so the
manager, the micro-batcher and the benchmarks target one surface and
never branch on the concrete type.

(The abstract base :class:`repro.baselines.interface.ReachabilityIndex`
describes the *evaluation* surface of the paper's six methods — build,
scalar query, size accounting.  This protocol describes the narrower
*serving* surface: scalar plus batch queries.)
"""

from __future__ import annotations

from typing import Iterable, Protocol, runtime_checkable

__all__ = ["BatchReachability"]


@runtime_checkable
class BatchReachability(Protocol):
    """An index that answers reachability queries one at a time or in bulk."""

    def is_reachable(self, source, target) -> bool:
        """Reflexive reachability between two node objects."""

    def is_reachable_many(self, pairs: Iterable[tuple]) -> list[bool]:
        """One bool per ``(source, target)`` pair, in order.

        Must be equivalent to mapping :meth:`is_reachable` over the
        pairs, and must raise
        :class:`~repro.graph.errors.NodeNotFoundError` (with ``role``
        set) for the first pair naming an unknown node.
        """
