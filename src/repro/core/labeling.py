"""Chain labels: the compressed transitive closure of Section II.

Given a chain decomposition with ``k`` chains, every node ``v`` gets

* its own coordinate ``(chain, position)`` — the paper's index
  ``(i, j)`` (positions count from the *top* of the chain, 0-based:
  smaller position = ancestor side), and
* an *index sequence*: for each chain, the smallest position on that
  chain that ``v`` reaches — at most one entry per chain, so at most
  ``k`` entries, sorted by chain id.

``u ⇝ v`` then holds iff ``u = v`` or the sequence of ``u`` has an
entry ``(chain(v), p)`` with ``p ≤ position(v)``: reaching any node at
or above ``v`` on ``v``'s own chain implies reaching ``v`` (chain order
is reachability order).  One binary search per query — O(log k).

Storage layout
--------------

Labels are packed CSR-style into flat :class:`array.array` typecode
``'l'`` buffers instead of per-node tuples: ``seq_chains`` and
``seq_positions`` concatenate every node's sequence, and
``seq_offsets`` (length ``n + 1``) delimits node ``v``'s slice as
``[seq_offsets[v], seq_offsets[v + 1])``.  The per-node coordinate
arrays ``chain_of`` / ``position_of`` are flat too.  This keeps the
whole index in a handful of contiguous native-int buffers — compact to
persist, cheap to mmap-style slice, and friendly to bulk evaluation.

Negative pre-filters
--------------------

The index additionally carries two O(1)-checkable certificates per
node (in the spirit of O'Reach's observation that most negative
queries die on cheap pre-tests):

* ``rank_of[v]`` — ``v``'s position in a fixed topological order.
  ``u ⇝ v`` with ``u ≠ v`` implies ``rank(u) < rank(v)``; and because
  the ranks are a permutation, ``rank(u) == rank(v)`` iff ``u == v``,
  which folds the reflexive test into the same comparison.
* ``level_of[v]`` — the stratification level (1-based longest path to
  a sink).  ``u ⇝ v`` with ``u ≠ v`` implies ``level(u) > level(v)``.

A query only reaches the binary search when both certificates allow
reachability; on sparse graphs the pre-filters reject the large
majority of negative queries before any probe.

Sequences are built in a single reverse-topological pass, merging the
children's sequences with each child's own coordinate and keeping the
minimum position per chain — the paper's O(b·e) merge.  (The paper
merges sorted pair lists pairwise; we accumulate per-node dictionaries
and sort once per node, which has the same asymptotic in the RAM model
and is considerably faster in CPython.)  The pass refcounts each
child's accumulator — a node's dictionary is freed the moment its last
parent has consumed it — so peak build memory tracks the frontier of
the reverse sweep, not the whole graph.

Storage accounting follows the paper: with ``n`` nodes the labels
occupy ``O(k·n)`` 16-bit words — two words for the coordinate and two
per sequence entry.
"""

from __future__ import annotations

from array import array
from bisect import bisect_left
from collections.abc import Iterable, Sequence

from repro.core.chains import ChainDecomposition
from repro.graph.digraph import DiGraph
from repro.graph.topology import topological_order_ids
from repro.obs import OBS

__all__ = ["ChainLabeling", "build_labeling", "merge_index_sequences",
           "packed_fields"]


def merge_index_sequences(left: list[tuple[int, int]],
                          right: list[tuple[int, int]]
                          ) -> list[tuple[int, int]]:
    """The paper's Section II pairwise merge of two sorted sequences.

    Entries are ``(chain, position)`` sorted by chain; when both sides
    carry the same chain the smaller (higher, i.e. more-ancestral)
    position wins — the paper's "if b2 > b1, replace b1 with b2"
    written for top-counted positions.  :func:`build_labeling` uses a
    dictionary accumulation with the same semantics (and asymptotics in
    the RAM model); this function exists as the literal algorithm and
    as a cross-check target in the test suite.
    """
    merged: list[tuple[int, int]] = []
    i = j = 0
    while i < len(left) and j < len(right):
        left_chain, left_position = left[i]
        right_chain, right_position = right[j]
        if left_chain < right_chain:
            merged.append(left[i])
            i += 1
        elif right_chain < left_chain:
            merged.append(right[j])
            j += 1
        else:
            merged.append((left_chain,
                           min(left_position, right_position)))
            i += 1
            j += 1
    merged.extend(left[i:])
    merged.extend(right[j:])
    return merged


def _as_buffer(values):
    """Coerce an int sequence to a native signed-long buffer.

    An ``array('l')`` passes through untouched (the owning case); a
    signed-long ``memoryview`` passes through too — that is the
    *borrowed* case the shared-memory serving path relies on: a
    labeling constructed from views over an attached segment indexes,
    slices and bisects exactly like one over owned arrays, without
    copying a byte.  Anything else (lists from JSON, generators) is
    copied into a fresh ``array('l')``.
    """
    if isinstance(values, array) and values.typecode == "l":
        return values
    if isinstance(values, memoryview) and values.format == "l":
        return values
    return array("l", values)


def packed_fields(labeling: "ChainLabeling") -> dict:
    """The seven packed buffers, keyed by their persistence names.

    This is the single shared view of a labeling's storage: the
    persistence v2 writer serialises exactly these fields, the
    checksum (:func:`repro.core.persistence.labeling_checksum`) is
    defined over them in this key order, and the shared-memory
    publisher maps their raw bytes into a segment.  Values are the
    live buffers — ``array('l')`` or borrowed ``memoryview`` — never
    copies.
    """
    return {
        "chain_of": labeling.chain_of,
        "position_of": labeling.position_of,
        "rank_of": labeling.rank_of,
        "level_of": labeling.level_of,
        "sequence_offsets": labeling.seq_offsets,
        "sequence_chains": labeling.seq_chains,
        "sequence_positions": labeling.seq_positions,
    }


class ChainLabeling:
    """Chain coordinates, index sequences and pre-filter certificates.

    All storage is flat ``array('l')`` — or, for a labeling attached
    to a shared-memory segment, borrowed read-only signed-long
    ``memoryview`` slices with identical indexing/bisect semantics:
    per-node ``chain_of`` / ``position_of`` / ``rank_of`` /
    ``level_of`` plus the CSR triple ``seq_offsets`` / ``seq_chains``
    / ``seq_positions`` (see the module docstring for the layout).
    The legacy per-node tuple views remain available as the
    :attr:`sequence_chains` / :attr:`sequence_positions` properties.
    """

    __slots__ = ("num_chains", "chain_of", "position_of", "rank_of",
                 "level_of", "seq_offsets", "seq_chains",
                 "seq_positions")

    def __init__(self, num_chains: int, chain_of, position_of,
                 rank_of, level_of, seq_offsets, seq_chains,
                 seq_positions) -> None:
        self.num_chains = num_chains
        self.chain_of = _as_buffer(chain_of)
        self.position_of = _as_buffer(position_of)
        self.rank_of = _as_buffer(rank_of)
        self.level_of = _as_buffer(level_of)
        self.seq_offsets = _as_buffer(seq_offsets)
        self.seq_chains = _as_buffer(seq_chains)
        self.seq_positions = _as_buffer(seq_positions)

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def is_reachable_ids(self, source: int, target: int) -> bool:
        """Reflexive reachability on dense node ids, O(log k).

        Applies the rank/level pre-filters first: equal ranks mean
        ``source == target`` (reflexive hit), an out-of-order rank or
        level proves non-reachability without touching the sequences.
        Counts ``query/answered`` (every call), ``query/prefilter_hits``
        (negatives killed by the pre-filter) and ``query/probes``
        (calls that reach the binary search) when observability is on;
        when it is off the cost is one attribute check per query.
        """
        enabled = OBS.enabled
        if enabled:
            OBS.count("query/answered")
        rank_of = self.rank_of
        source_rank = rank_of[source]
        target_rank = rank_of[target]
        if source_rank == target_rank:      # ranks are a permutation
            return True                     # ⇒ source == target
        if (source_rank > target_rank
                or self.level_of[source] <= self.level_of[target]):
            if enabled:
                OBS.count("query/prefilter_hits")
            return False
        if enabled:
            OBS.count("query/probes")
        seq_chains = self.seq_chains
        target_chain = self.chain_of[target]
        hi = self.seq_offsets[source + 1]
        index = bisect_left(seq_chains, target_chain,
                            self.seq_offsets[source], hi)
        if index == hi or seq_chains[index] != target_chain:
            return False
        return self.seq_positions[index] <= self.position_of[target]

    def is_reachable_many_ids(self,
                              pairs: Iterable[tuple[int, int]]
                              ) -> list[bool]:
        """Bulk :meth:`is_reachable_ids` over ``(source, target)`` ids.

        The whole batch is answered in one tight loop with every
        attribute lookup hoisted out and a single ``OBS.enabled`` check
        per batch; counters accumulate in locals and publish once
        (``query/answered`` by ``len(pairs)``, ``query/prefilter_hits``
        and ``query/probes`` by their batch totals).
        """
        rank_of = self.rank_of
        level_of = self.level_of
        chain_of = self.chain_of
        position_of = self.position_of
        seq_offsets = self.seq_offsets
        seq_chains = self.seq_chains
        seq_positions = self.seq_positions
        bisect = bisect_left
        answers: list[bool] = []
        append = answers.append
        reflexive = rejected = 0
        for source, target in pairs:
            source_rank = rank_of[source]
            target_rank = rank_of[target]
            if source_rank == target_rank:
                reflexive += 1
                append(True)
                continue
            if (source_rank > target_rank
                    or level_of[source] <= level_of[target]):
                rejected += 1
                append(False)
                continue
            target_chain = chain_of[target]
            hi = seq_offsets[source + 1]
            index = bisect(seq_chains, target_chain,
                           seq_offsets[source], hi)
            if index == hi or seq_chains[index] != target_chain:
                append(False)
                continue
            append(seq_positions[index] <= position_of[target])
        if OBS.enabled:
            OBS.count("query/answered", len(answers))
            if rejected:
                OBS.count("query/prefilter_hits", rejected)
            probes = len(answers) - reflexive - rejected
            if probes:
                OBS.count("query/probes", probes)
        return answers

    # ------------------------------------------------------------------
    # per-node views and accounting
    # ------------------------------------------------------------------
    @property
    def sequence_chains(self) -> list[tuple[int, ...]]:
        """Per-node chain-id tuples (a view over the packed arrays)."""
        offsets = self.seq_offsets
        chains = self.seq_chains
        return [tuple(chains[offsets[v]:offsets[v + 1]])
                for v in range(len(self.chain_of))]

    @property
    def sequence_positions(self) -> list[tuple[int, ...]]:
        """Per-node position tuples (a view over the packed arrays)."""
        offsets = self.seq_offsets
        positions = self.seq_positions
        return [tuple(positions[offsets[v]:offsets[v + 1]])
                for v in range(len(self.chain_of))]

    def sequence_length(self, node_id: int) -> int:
        """Number of index-sequence entries for a node (<= k)."""
        return (self.seq_offsets[node_id + 1]
                - self.seq_offsets[node_id])

    def size_words(self) -> int:
        """Label size in 16-bit words (the unit of the paper's tables)."""
        words = 2 * len(self.chain_of)  # one (chain, position) per node
        words += 2 * len(self.seq_chains)
        return words

    def nbytes(self) -> int:
        """Actual bytes held by the packed label arrays."""
        return sum(buffer.itemsize * len(buffer)
                   for buffer in (self.chain_of, self.position_of,
                                  self.rank_of, self.level_of,
                                  self.seq_offsets, self.seq_chains,
                                  self.seq_positions))

    def average_sequence_length(self) -> float:
        """Mean sequence length across nodes."""
        if not len(self.chain_of):
            return 0.0
        return len(self.seq_chains) / len(self.chain_of)


def build_labeling(graph: DiGraph, decomposition: ChainDecomposition,
                   level_of: Sequence[int] | None = None
                   ) -> ChainLabeling:
    """Build packed index sequences for every node (one reverse-topo pass).

    ``level_of`` may supply precomputed stratification levels (1-based,
    as produced by :func:`repro.core.stratification.stratify`); when
    omitted, equivalent longest-path-to-sink levels are derived during
    the same sweep.

    The merge refcounts consumers: each node's accumulator dictionary
    is dropped as soon as its last parent has merged it (the pending
    count starts at the in-degree), so peak memory is proportional to
    the live frontier rather than all ``n`` dictionaries.

    Emits the ``labeling`` span; when observability is on it also
    counts ``labeling/merge_ops`` — one per (chain, position) candidate
    considered, the work unit of the paper's O(b·e) bound.  The count
    accumulates in a local and publishes once, so the disabled cost is
    one branch per edge, not per candidate.
    """
    with OBS.span("labeling"):
        n = graph.num_nodes
        chain_of = decomposition.chain_of
        position_of = decomposition.position_of
        enabled = OBS.enabled
        merge_ops = 0
        order = topological_order_ids(graph)
        rank_of = [0] * n
        for rank, v in enumerate(order):
            rank_of[v] = rank
        compute_levels = level_of is None
        levels = [1] * n if compute_levels else level_of
        pending = [len(graph.predecessor_ids(v)) for v in range(n)]
        reach: list[dict[int, int] | None] = [None] * n
        sequences: list[list[tuple[int, int]] | None] = [None] * n
        for v in reversed(order):
            accumulator: dict[int, int] = {}
            deepest_child_level = 0
            for child in graph.successor_ids(v):
                child_reach = reach[child]
                if enabled:
                    merge_ops += 1 + len(child_reach)
                child_chain = chain_of[child]
                child_position = position_of[child]
                best = accumulator.get(child_chain)
                if best is None or child_position < best:
                    accumulator[child_chain] = child_position
                for chain, position in child_reach.items():
                    best = accumulator.get(chain)
                    if best is None or position < best:
                        accumulator[chain] = position
                pending[child] -= 1
                if not pending[child]:
                    reach[child] = None     # last parent consumed it
                if compute_levels and levels[child] > deepest_child_level:
                    deepest_child_level = levels[child]
            if compute_levels:
                levels[v] = deepest_child_level + 1
            if accumulator:
                sequences[v] = sorted(accumulator.items())
                if pending[v]:
                    reach[v] = accumulator
            elif pending[v]:
                reach[v] = accumulator
            # sources (pending == 0) are never consumed: not retained.

        seq_offsets = array("l", [0] * (n + 1))
        seq_chains = array("l")
        seq_positions = array("l")
        filled = 0
        for v in range(n):
            items = sequences[v]
            if items:
                seq_chains.extend(chain for chain, _ in items)
                seq_positions.extend(position for _, position in items)
                filled += len(items)
            seq_offsets[v + 1] = filled
        if enabled:
            OBS.count("labeling/merge_ops", merge_ops)
        return ChainLabeling(
            num_chains=decomposition.num_chains,
            chain_of=chain_of,
            position_of=position_of,
            rank_of=rank_of,
            level_of=levels,
            seq_offsets=seq_offsets,
            seq_chains=seq_chains,
            seq_positions=seq_positions,
        )
