"""Chain labels: the compressed transitive closure of Section II.

Given a chain decomposition with ``k`` chains, every node ``v`` gets

* its own coordinate ``(chain, position)`` — the paper's index
  ``(i, j)`` (positions count from the *top* of the chain, 0-based:
  smaller position = ancestor side), and
* an *index sequence*: for each chain, the smallest position on that
  chain that ``v`` reaches — at most one entry per chain, so at most
  ``k`` entries, sorted by chain id.

``u ⇝ v`` then holds iff ``u = v`` or the sequence of ``u`` has an
entry ``(chain(v), p)`` with ``p ≤ position(v)``: reaching any node at
or above ``v`` on ``v``'s own chain implies reaching ``v`` (chain order
is reachability order).  One binary search per query — O(log k).

Sequences are built in a single reverse-topological pass, merging the
children's sequences with each child's own coordinate and keeping the
minimum position per chain — the paper's O(b·e) merge.  (The paper
merges sorted pair lists pairwise; we accumulate per-node dictionaries
and sort once per node, which has the same asymptotic in the RAM model
and is considerably faster in CPython.)

Storage follows the paper's accounting: with ``n`` nodes the labels
occupy ``O(k·n)`` 16-bit words — two words for the coordinate and two
per sequence entry.
"""

from __future__ import annotations

from bisect import bisect_left
from dataclasses import dataclass

from repro.core.chains import ChainDecomposition
from repro.graph.digraph import DiGraph
from repro.graph.topology import topological_order_ids
from repro.obs import OBS

__all__ = ["ChainLabeling", "build_labeling", "merge_index_sequences"]


def merge_index_sequences(left: list[tuple[int, int]],
                          right: list[tuple[int, int]]
                          ) -> list[tuple[int, int]]:
    """The paper's Section II pairwise merge of two sorted sequences.

    Entries are ``(chain, position)`` sorted by chain; when both sides
    carry the same chain the smaller (higher, i.e. more-ancestral)
    position wins — the paper's "if b2 > b1, replace b1 with b2"
    written for top-counted positions.  :func:`build_labeling` uses a
    dictionary accumulation with the same semantics (and asymptotics in
    the RAM model); this function exists as the literal algorithm and
    as a cross-check target in the test suite.
    """
    merged: list[tuple[int, int]] = []
    i = j = 0
    while i < len(left) and j < len(right):
        left_chain, left_position = left[i]
        right_chain, right_position = right[j]
        if left_chain < right_chain:
            merged.append(left[i])
            i += 1
        elif right_chain < left_chain:
            merged.append(right[j])
            j += 1
        else:
            merged.append((left_chain,
                           min(left_position, right_position)))
            i += 1
            j += 1
    merged.extend(left[i:])
    merged.extend(right[j:])
    return merged


@dataclass
class ChainLabeling:
    """Chain coordinates plus per-node index sequences."""

    num_chains: int
    chain_of: list[int]
    position_of: list[int]
    sequence_chains: list[tuple[int, ...]]
    sequence_positions: list[tuple[int, ...]]

    def is_reachable_ids(self, source: int, target: int) -> bool:
        """Reflexive reachability on dense node ids, O(log k).

        Counts ``query/answered`` (every call) and ``query/probes``
        (calls that reach the binary search) when observability is on;
        when it is off the cost is one attribute check per query.
        """
        enabled = OBS.enabled
        if enabled:
            OBS.count("query/answered")
        if source == target:
            return True
        if enabled:
            OBS.count("query/probes")
        chains = self.sequence_chains[source]
        target_chain = self.chain_of[target]
        index = bisect_left(chains, target_chain)
        if index == len(chains) or chains[index] != target_chain:
            return False
        return (self.sequence_positions[source][index]
                <= self.position_of[target])

    def sequence_length(self, node_id: int) -> int:
        """Number of index-sequence entries for a node (<= k)."""
        return len(self.sequence_chains[node_id])

    def size_words(self) -> int:
        """Label size in 16-bit words (the unit of the paper's tables)."""
        words = 2 * len(self.chain_of)  # one (chain, position) per node
        words += 2 * sum(len(seq) for seq in self.sequence_chains)
        return words

    def average_sequence_length(self) -> float:
        """Mean sequence length across nodes."""
        if not self.sequence_chains:
            return 0.0
        total = sum(len(seq) for seq in self.sequence_chains)
        return total / len(self.sequence_chains)


def build_labeling(graph: DiGraph,
                   decomposition: ChainDecomposition) -> ChainLabeling:
    """Build index sequences for every node (one reverse-topo pass).

    Emits the ``labeling`` span; when observability is on it also
    counts ``labeling/merge_ops`` — one per (chain, position) candidate
    considered, the work unit of the paper's O(b·e) bound.  The count
    accumulates in a local and publishes once, so the disabled cost is
    one branch per edge, not per candidate.
    """
    with OBS.span("labeling"):
        n = graph.num_nodes
        chain_of = decomposition.chain_of
        position_of = decomposition.position_of
        enabled = OBS.enabled
        merge_ops = 0
        reach: list[dict[int, int]] = [{} for _ in range(n)]
        for v in reversed(topological_order_ids(graph)):
            accumulator = reach[v]
            for child in graph.successor_ids(v):
                child_chain = chain_of[child]
                child_position = position_of[child]
                if enabled:
                    merge_ops += 1 + len(reach[child])
                best = accumulator.get(child_chain)
                if best is None or child_position < best:
                    accumulator[child_chain] = child_position
                for chain, position in reach[child].items():
                    best = accumulator.get(chain)
                    if best is None or position < best:
                        accumulator[chain] = position

        sequence_chains: list[tuple[int, ...]] = [()] * n
        sequence_positions: list[tuple[int, ...]] = [()] * n
        for v in range(n):
            if reach[v]:
                items = sorted(reach[v].items())
                sequence_chains[v] = tuple(chain for chain, _ in items)
                sequence_positions[v] = tuple(pos for _, pos in items)
        if enabled:
            OBS.count("labeling/merge_ops", merge_ops)
        return ChainLabeling(
            num_chains=decomposition.num_chains,
            chain_of=list(chain_of),
            position_of=list(position_of),
            sequence_chains=sequence_chains,
            sequence_positions=sequence_positions,
        )
