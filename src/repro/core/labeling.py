"""Chain labels: the compressed transitive closure of Section II.

Given a chain decomposition with ``k`` chains, every node ``v`` gets

* its own coordinate ``(chain, position)`` — the paper's index
  ``(i, j)`` (positions count from the *top* of the chain, 0-based:
  smaller position = ancestor side), and
* an *index sequence*: for each chain, the smallest position on that
  chain that ``v`` reaches — at most one entry per chain, so at most
  ``k`` entries, sorted by chain id.

``u ⇝ v`` then holds iff ``u = v`` or the sequence of ``u`` has an
entry ``(chain(v), p)`` with ``p ≤ position(v)``: reaching any node at
or above ``v`` on ``v``'s own chain implies reaching ``v`` (chain order
is reachability order).  One binary search per query — O(log k).

Storage layout
--------------

Labels are packed CSR-style into flat :class:`array.array` typecode
``'l'`` buffers instead of per-node tuples: ``seq_chains`` and
``seq_positions`` concatenate every node's sequence, and
``seq_offsets`` (length ``n + 1``) delimits node ``v``'s slice as
``[seq_offsets[v], seq_offsets[v + 1])``.  The per-node coordinate
arrays ``chain_of`` / ``position_of`` are flat too.  This keeps the
whole index in a handful of contiguous native-int buffers — compact to
persist, cheap to mmap-style slice, and friendly to bulk evaluation.

Negative pre-filters
--------------------

The index additionally carries two O(1)-checkable certificates per
node (in the spirit of O'Reach's observation that most negative
queries die on cheap pre-tests):

* ``rank_of[v]`` — ``v``'s position in a fixed topological order.
  ``u ⇝ v`` with ``u ≠ v`` implies ``rank(u) < rank(v)``; and because
  the ranks are a permutation, ``rank(u) == rank(v)`` iff ``u == v``,
  which folds the reflexive test into the same comparison.
* ``level_of[v]`` — the stratification level (1-based longest path to
  a sink).  ``u ⇝ v`` with ``u ≠ v`` implies ``level(u) > level(v)``.

A query only reaches the binary search when both certificates allow
reachability; on sparse graphs the pre-filters reject the large
majority of negative queries before any probe.

Sequences are built in a single reverse-topological pass, merging the
children's sequences with each child's own coordinate and keeping the
minimum position per chain — the paper's O(b·e) merge.  (The paper
merges sorted pair lists pairwise; we accumulate per-node dictionaries
and sort once per node, which has the same asymptotic in the RAM model
and is considerably faster in CPython.)  The pass refcounts each
child's accumulator — a node's dictionary is freed the moment its last
parent has consumed it — so peak build memory tracks the frontier of
the reverse sweep, not the whole graph.

Storage accounting follows the paper: with ``n`` nodes the labels
occupy ``O(k·n)`` 16-bit words — two words for the coordinate and two
per sequence entry.
"""

from __future__ import annotations

from array import array
from bisect import bisect_left
from collections.abc import Iterable, Sequence

from repro.core.chains import ChainDecomposition
from repro.core.labelstore import LabelStore, probe_sequence
from repro.graph.digraph import DiGraph
from repro.graph.topology import topological_order_ids
from repro.obs import OBS

__all__ = ["ChainLabeling", "CompressedChainLabeling",
           "build_labeling", "labeling_from_store",
           "merge_index_sequences", "packed_fields"]


def merge_index_sequences(left: list[tuple[int, int]],
                          right: list[tuple[int, int]]
                          ) -> list[tuple[int, int]]:
    """The paper's Section II pairwise merge of two sorted sequences.

    Entries are ``(chain, position)`` sorted by chain; when both sides
    carry the same chain the smaller (higher, i.e. more-ancestral)
    position wins — the paper's "if b2 > b1, replace b1 with b2"
    written for top-counted positions.  :func:`build_labeling` uses a
    dictionary accumulation with the same semantics (and asymptotics in
    the RAM model); this function exists as the literal algorithm and
    as a cross-check target in the test suite.
    """
    merged: list[tuple[int, int]] = []
    i = j = 0
    while i < len(left) and j < len(right):
        left_chain, left_position = left[i]
        right_chain, right_position = right[j]
        if left_chain < right_chain:
            merged.append(left[i])
            i += 1
        elif right_chain < left_chain:
            merged.append(right[j])
            j += 1
        else:
            merged.append((left_chain,
                           min(left_position, right_position)))
            i += 1
            j += 1
    merged.extend(left[i:])
    merged.extend(right[j:])
    return merged


def packed_fields(labeling: "ChainLabeling") -> dict:
    """The seven packed buffers, keyed by their persistence names.

    This is the packed-codec view of a labeling's storage (see
    :meth:`repro.core.labelstore.LabelStore.fields` for the
    codec-generic form): the persistence writer serialises exactly
    these fields, the checksum is defined over them in this key order,
    and the shared-memory publisher maps their raw bytes into a
    segment.  Values are the live buffers — ``array('l')`` or
    borrowed ``memoryview`` — never copies.  Raises
    :class:`ValueError` for a compressed labeling, whose sequences do
    not exist as flat arrays; use ``labeling.store.fields()`` instead.
    """
    if labeling.codec != "packed":
        raise ValueError(
            f"packed_fields needs a packed labeling, got codec "
            f"{labeling.codec!r}; use labeling.store.fields()")
    return labeling.store.fields()


def labeling_from_store(store: LabelStore) -> "ChainLabeling":
    """Wrap a :class:`LabelStore` in the codec-matching labeling class."""
    if store.codec == "packed":
        return ChainLabeling(
            num_chains=store.num_chains, chain_of=store.chain_of,
            position_of=store.position_of, rank_of=store.rank_of,
            level_of=store.level_of, seq_offsets=store.seq_offsets,
            seq_chains=store.seq_chains,
            seq_positions=store.seq_positions)
    return CompressedChainLabeling(store)


class ChainLabeling:
    """Chain coordinates, index sequences and pre-filter certificates.

    All storage is flat ``array('l')`` — or, for a labeling attached
    to a shared-memory segment, borrowed read-only signed-long
    ``memoryview`` slices with identical indexing/bisect semantics:
    per-node ``chain_of`` / ``position_of`` / ``rank_of`` /
    ``level_of`` plus the CSR triple ``seq_offsets`` / ``seq_chains``
    / ``seq_positions`` (see the module docstring for the layout).
    The legacy per-node tuple views remain available as the
    :attr:`sequence_chains` / :attr:`sequence_positions` properties.
    """

    __slots__ = ("num_chains", "chain_of", "position_of", "rank_of",
                 "level_of", "seq_offsets", "seq_chains",
                 "seq_positions", "store")

    #: storage codec of this labeling's :class:`LabelStore`.
    codec = "packed"

    def __init__(self, num_chains: int, chain_of, position_of,
                 rank_of, level_of, seq_offsets, seq_chains,
                 seq_positions) -> None:
        store = LabelStore.packed(num_chains, chain_of, position_of,
                                  rank_of, level_of, seq_offsets,
                                  seq_chains, seq_positions)
        self.store = store
        self.num_chains = num_chains
        self.chain_of = store.chain_of
        self.position_of = store.position_of
        self.rank_of = store.rank_of
        self.level_of = store.level_of
        self.seq_offsets = store.seq_offsets
        self.seq_chains = store.seq_chains
        self.seq_positions = store.seq_positions

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def is_reachable_ids(self, source: int, target: int) -> bool:
        """Reflexive reachability on dense node ids, O(log k).

        Applies the rank/level pre-filters first: equal ranks mean
        ``source == target`` (reflexive hit), an out-of-order rank or
        level proves non-reachability without touching the sequences.
        Counts ``query/answered`` (every call), ``query/prefilter_hits``
        (negatives killed by the pre-filter) and ``query/probes``
        (calls that reach the binary search) when observability is on;
        when it is off the cost is one attribute check per query.
        """
        enabled = OBS.enabled
        if enabled:
            OBS.count("query/answered")
        rank_of = self.rank_of
        source_rank = rank_of[source]
        target_rank = rank_of[target]
        if source_rank == target_rank:      # ranks are a permutation
            return True                     # ⇒ source == target
        if (source_rank > target_rank
                or self.level_of[source] <= self.level_of[target]):
            if enabled:
                OBS.count("query/prefilter_hits")
            return False
        if enabled:
            OBS.count("query/probes")
        seq_chains = self.seq_chains
        target_chain = self.chain_of[target]
        hi = self.seq_offsets[source + 1]
        index = bisect_left(seq_chains, target_chain,
                            self.seq_offsets[source], hi)
        if index == hi or seq_chains[index] != target_chain:
            return False
        return self.seq_positions[index] <= self.position_of[target]

    def is_reachable_many_ids(self,
                              pairs: Iterable[tuple[int, int]]
                              ) -> list[bool]:
        """Bulk :meth:`is_reachable_ids` over ``(source, target)`` ids.

        The whole batch is answered in one tight loop with every
        attribute lookup hoisted out and a single ``OBS.enabled`` check
        per batch; counters accumulate in locals and publish once
        (``query/answered`` by ``len(pairs)``, ``query/prefilter_hits``
        and ``query/probes`` by their batch totals).
        """
        rank_of = self.rank_of
        level_of = self.level_of
        chain_of = self.chain_of
        position_of = self.position_of
        seq_offsets = self.seq_offsets
        seq_chains = self.seq_chains
        seq_positions = self.seq_positions
        bisect = bisect_left
        answers: list[bool] = []
        append = answers.append
        reflexive = rejected = 0
        for source, target in pairs:
            source_rank = rank_of[source]
            target_rank = rank_of[target]
            if source_rank == target_rank:
                reflexive += 1
                append(True)
                continue
            if (source_rank > target_rank
                    or level_of[source] <= level_of[target]):
                rejected += 1
                append(False)
                continue
            target_chain = chain_of[target]
            hi = seq_offsets[source + 1]
            index = bisect(seq_chains, target_chain,
                           seq_offsets[source], hi)
            if index == hi or seq_chains[index] != target_chain:
                append(False)
                continue
            append(seq_positions[index] <= position_of[target])
        if OBS.enabled:
            OBS.count("query/answered", len(answers))
            if rejected:
                OBS.count("query/prefilter_hits", rejected)
            probes = len(answers) - reflexive - rejected
            if probes:
                OBS.count("query/probes", probes)
        return answers

    # ------------------------------------------------------------------
    # per-node views and accounting
    # ------------------------------------------------------------------
    @property
    def sequence_chains(self) -> list[tuple[int, ...]]:
        """Per-node chain-id tuples (a view over the packed arrays)."""
        offsets = self.seq_offsets
        chains = self.seq_chains
        return [tuple(chains[offsets[v]:offsets[v + 1]])
                for v in range(len(self.chain_of))]

    @property
    def sequence_positions(self) -> list[tuple[int, ...]]:
        """Per-node position tuples (a view over the packed arrays)."""
        offsets = self.seq_offsets
        positions = self.seq_positions
        return [tuple(positions[offsets[v]:offsets[v + 1]])
                for v in range(len(self.chain_of))]

    def sequence_items(self, node_id: int) -> list[tuple[int, int]]:
        """Node's sorted ``(chain, position)`` pairs, decoded if needed."""
        return self.store.sequence_items(node_id)

    def sequence_length(self, node_id: int) -> int:
        """Number of index-sequence entries for a node (<= k)."""
        return self.store.sequence_length(node_id)

    def num_entries(self) -> int:
        """Total index-sequence entries across all nodes."""
        return self.store.num_entries

    def size_words(self) -> int:
        """Label size in 16-bit words (the unit of the paper's tables).

        The unit is *logical* — two words per coordinate and two per
        sequence entry — so the figure is codec-independent and stays
        comparable across the paper's tables; :meth:`nbytes` reports
        the codec-dependent physical footprint.
        """
        return 2 * len(self.chain_of) + 2 * self.store.num_entries

    def nbytes(self) -> int:
        """Actual bytes held by the label columns under this codec."""
        return self.store.nbytes()

    def average_sequence_length(self) -> float:
        """Mean sequence length across nodes."""
        if not len(self.chain_of):
            return 0.0
        return self.store.num_entries / len(self.chain_of)


class CompressedChainLabeling(ChainLabeling):
    """A labeling over the ``compressed`` codec of the store.

    The four scalar columns are flat buffers exactly as in the packed
    codec — the rank/level pre-filters, observers and dense-label
    kernel prep all read them unchanged — but the index sequences live
    gap/varint-encoded in ``store.seq_blob``; ``seq_offsets`` holds
    **byte** offsets and ``seq_chains`` / ``seq_positions`` are
    ``None``.  Queries decode the source node's slice on demand with
    an early exit once the running chain id passes the target's (see
    :func:`repro.core.labelstore.probe_sequence`), trading the packed
    codec's O(log k) bisect for an O(k) scan over far fewer bytes.
    """

    __slots__ = ()

    codec = "compressed"

    def __init__(self, store: LabelStore) -> None:
        if store.codec != "compressed":
            raise ValueError(
                f"CompressedChainLabeling needs a compressed store, "
                f"got codec {store.codec!r}")
        self.store = store
        self.num_chains = store.num_chains
        self.chain_of = store.chain_of
        self.position_of = store.position_of
        self.rank_of = store.rank_of
        self.level_of = store.level_of
        self.seq_offsets = store.seq_offsets
        self.seq_chains = None
        self.seq_positions = None

    def is_reachable_ids(self, source: int, target: int) -> bool:
        enabled = OBS.enabled
        if enabled:
            OBS.count("query/answered")
        rank_of = self.rank_of
        source_rank = rank_of[source]
        target_rank = rank_of[target]
        if source_rank == target_rank:      # ranks are a permutation
            return True                     # ⇒ source == target
        if (source_rank > target_rank
                or self.level_of[source] <= self.level_of[target]):
            if enabled:
                OBS.count("query/prefilter_hits")
            return False
        if enabled:
            OBS.count("query/probes")
        offsets = self.seq_offsets
        return probe_sequence(self.store.seq_blob, offsets[source],
                              offsets[source + 1],
                              self.chain_of[target],
                              self.position_of[target])

    def is_reachable_many_ids(self,
                              pairs: Iterable[tuple[int, int]]
                              ) -> list[bool]:
        rank_of = self.rank_of
        level_of = self.level_of
        chain_of = self.chain_of
        position_of = self.position_of
        offsets = self.seq_offsets
        blob = self.store.seq_blob
        probe = probe_sequence
        answers: list[bool] = []
        append = answers.append
        reflexive = rejected = 0
        for source, target in pairs:
            source_rank = rank_of[source]
            target_rank = rank_of[target]
            if source_rank == target_rank:
                reflexive += 1
                append(True)
                continue
            if (source_rank > target_rank
                    or level_of[source] <= level_of[target]):
                rejected += 1
                append(False)
                continue
            append(probe(blob, offsets[source], offsets[source + 1],
                         chain_of[target], position_of[target]))
        if OBS.enabled:
            OBS.count("query/answered", len(answers))
            if rejected:
                OBS.count("query/prefilter_hits", rejected)
            probes = len(answers) - reflexive - rejected
            if probes:
                OBS.count("query/probes", probes)
        return answers

    @property
    def sequence_chains(self) -> list[tuple[int, ...]]:
        """Per-node chain-id tuples (decoded from the varint blob)."""
        store = self.store
        return [tuple(chain for chain, _ in store.sequence_items(v))
                for v in range(len(self.chain_of))]

    @property
    def sequence_positions(self) -> list[tuple[int, ...]]:
        """Per-node position tuples (decoded from the varint blob)."""
        store = self.store
        return [tuple(position
                      for _, position in store.sequence_items(v))
                for v in range(len(self.chain_of))]


def build_labeling(graph: DiGraph, decomposition: ChainDecomposition,
                   level_of: Sequence[int] | None = None
                   ) -> ChainLabeling:
    """Build packed index sequences for every node (one reverse-topo pass).

    ``level_of`` may supply precomputed stratification levels (1-based,
    as produced by :func:`repro.core.stratification.stratify`); when
    omitted, equivalent longest-path-to-sink levels are derived during
    the same sweep.

    The merge refcounts consumers: each node's accumulator is dropped
    as soon as its last parent has merged it (the pending count starts
    at the in-degree), so peak memory is proportional to the live
    frontier rather than all ``n`` accumulators.  When the cover is
    narrow (``num_chains`` ≤ 64 — every scale-family graph) the
    accumulator is a flat position list indexed by chain id instead of
    a dict, turning each merge into a straight element-wise minimum;
    wide covers (an antichain's is ``n`` chains) keep the sparse dict.

    Emits the ``labeling`` span; when observability is on it also
    counts ``labeling/merge_ops`` — one per (chain, position) candidate
    considered, the work unit of the paper's O(b·e) bound.  The count
    accumulates in a local and publishes once, so the disabled cost is
    one branch per edge, not per candidate.
    """
    with OBS.span("labeling"):
        n = graph.num_nodes
        chain_of = decomposition.chain_of
        position_of = decomposition.position_of
        enabled = OBS.enabled
        merge_ops = 0
        order = topological_order_ids(graph)
        rank_of = [0] * n
        for rank, v in enumerate(order):
            rank_of[v] = rank
        compute_levels = level_of is None
        levels = [1] * n if compute_levels else level_of
        predecessor_ids = graph.predecessor_ids
        successor_ids = graph.successor_ids
        pending = [len(predecessor_ids(v)) for v in range(n)]
        sequences: list[list[tuple[int, int]] | None] = [None] * n
        num_chains = decomposition.num_chains
        if 0 < num_chains <= _FLAT_REACH_CHAINS:
            merge_ops = _flat_sweep(
                order, successor_ids, chain_of, position_of, pending,
                sequences, num_chains, n, levels, compute_levels,
                enabled)
            if enabled:
                OBS.count("labeling/merge_ops", merge_ops)
            return _pack_labeling(decomposition, chain_of, position_of,
                                  rank_of, levels, sequences, n)
        reach: list[dict[int, int] | None] = [None] * n
        for v in reversed(order):
            accumulator: dict[int, int] = {}
            deepest_child_level = 0
            for child in successor_ids(v):
                child_reach = reach[child]
                child_chain = chain_of[child]
                child_position = position_of[child]
                pending[child] -= 1
                consumed = not pending[child]
                if consumed:
                    reach[child] = None     # last parent consumed it
                if consumed and not accumulator:
                    # Steal the child's dictionary outright instead of
                    # merging entry by entry — on path-like graphs
                    # (one parent, one child) this turns the whole
                    # merge into an O(1) handoff.
                    if enabled:
                        merge_ops += 1
                    accumulator = child_reach
                    best = accumulator.get(child_chain)
                    if best is None or child_position < best:
                        accumulator[child_chain] = child_position
                else:
                    if enabled:
                        merge_ops += 1 + len(child_reach)
                    best = accumulator.get(child_chain)
                    if best is None or child_position < best:
                        accumulator[child_chain] = child_position
                    for chain, position in child_reach.items():
                        best = accumulator.get(chain)
                        if best is None or position < best:
                            accumulator[chain] = position
                if compute_levels and levels[child] > deepest_child_level:
                    deepest_child_level = levels[child]
            if compute_levels:
                levels[v] = deepest_child_level + 1
            if accumulator:
                sequences[v] = sorted(accumulator.items())
                if pending[v]:
                    reach[v] = accumulator
            elif pending[v]:
                reach[v] = accumulator
            # sources (pending == 0) are never consumed: not retained.

        if enabled:
            OBS.count("labeling/merge_ops", merge_ops)
        return _pack_labeling(decomposition, chain_of, position_of,
                              rank_of, levels, sequences, n)


#: Covers at most this wide use the flat (list-per-node) merge path in
#: :func:`build_labeling`; wider ones fall back to sparse dicts so an
#: antichain (one chain per node) cannot trigger O(n²) accumulators.
_FLAT_REACH_CHAINS = 64


def _flat_sweep(order, successor_ids, chain_of, position_of, pending,
                sequences, num_chains, n, levels, compute_levels,
                enabled) -> int:
    """Reverse-topo merge sweep with flat position-list accumulators.

    ``accumulator[chain]`` holds the minimum reachable position on
    ``chain`` (``n`` = unreachable sentinel; real positions are < n),
    so a merge is a straight element-wise minimum over ``num_chains``
    slots — no hashing.  Fills ``sequences`` in place and returns the
    merge-op count (0 when ``enabled`` is false).
    """
    unreachable = n
    merge_ops = 0
    reach: list[list[int] | None] = [None] * n
    for v in reversed(order):
        accumulator: list[int] | None = None
        deepest_child_level = 0
        for child in successor_ids(v):
            child_reach = reach[child]
            pending[child] -= 1
            consumed = not pending[child]
            if consumed:
                reach[child] = None     # last parent consumed it
            if accumulator is None:
                if consumed:
                    # Steal the child's list outright; O(1) handoff.
                    if enabled:
                        merge_ops += 1
                    accumulator = child_reach
                else:
                    if enabled:
                        merge_ops += 1 + num_chains
                    accumulator = child_reach[:]
            else:
                if enabled:
                    merge_ops += 1 + num_chains
                for chain in range(num_chains):
                    position = child_reach[chain]
                    if position < accumulator[chain]:
                        accumulator[chain] = position
            child_position = position_of[child]
            if child_position < accumulator[chain_of[child]]:
                accumulator[chain_of[child]] = child_position
            if compute_levels and levels[child] > deepest_child_level:
                deepest_child_level = levels[child]
        if compute_levels:
            levels[v] = deepest_child_level + 1
        if accumulator is not None:
            items = [(chain, accumulator[chain])
                     for chain in range(num_chains)
                     if accumulator[chain] != unreachable]
            if items:
                sequences[v] = items
            if pending[v]:
                reach[v] = accumulator
        elif pending[v]:
            reach[v] = [unreachable] * num_chains
        # sources (pending == 0) are never consumed: not retained.
    return merge_ops


def _pack_labeling(decomposition, chain_of, position_of, rank_of,
                   levels, sequences, n) -> ChainLabeling:
    """Pack per-node ``(chain, position)`` rows into the CSR columns."""
    seq_offsets = array("l", [0] * (n + 1))
    seq_chains = array("l")
    seq_positions = array("l")
    filled = 0
    for v in range(n):
        items = sequences[v]
        if items:
            chains_row, positions_row = zip(*items)
            seq_chains.extend(chains_row)
            seq_positions.extend(positions_row)
            filled += len(items)
        seq_offsets[v + 1] = filled
    return ChainLabeling(
        num_chains=decomposition.num_chains,
        chain_of=chain_of,
        position_of=position_of,
        rank_of=rank_of,
        level_of=levels,
        seq_offsets=seq_offsets,
        seq_chains=seq_chains,
        seq_positions=seq_positions,
    )
