"""Virtual nodes (Definition 4) and the per-level matching records.

A *virtual node* stands in for a chain top stranded at a lower level: if
bottom ``v`` ends up free (uncovered) in the matching between ``V_{i+1}``
and ``V_i'``, a virtual ``v'`` joins ``V_{i+1}'`` so the matching one
level up can still extend ``v``'s chain.  The virtual node carries two
kinds of bipartite edges:

* **direct** edges from the real parents (at the next level up) of the
  *base* node — the real node at the bottom of the virtual tower.  This
  realises the paper's *edge inheritance* (Fig. 9): instead of grafting
  linked lists we keep a pointer to the base and read its
  ``parents_by_level`` lists lazily, which is the same O(1) grafting.
* **s-edges** from nodes that are parents of an odd-position top on an
  alternating path starting at one of ``v``'s covered parents — the
  paper's label entries ``(w_g, {(n_gj, S_gj)})``.  Matching such an
  edge promises that a prefix of the alternating path can be
  *transferred* to free a bottom for the matched parent while ``w_g``
  adopts ``v``.

The label positions themselves are not stored: the resolution phase
re-derives the alternating paths against the *current* matching (see
``repro/core/stratified.py``), which both implements the paper's
Section IV.B redundancy sharing (one multi-source BFS per virtual
node) and stays correct after earlier transfers have mutated the
matching.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.matching.bipartite import BipartiteGraph, Matching

__all__ = ["VirtualNode", "VirtualRegistry", "LevelMatching"]


@dataclass
class VirtualNode:
    """One virtual node of the decomposition.

    ``ext_id``
        Extended node id (``>= graph.num_nodes``); real nodes use their
        dense graph id.
    ``level``
        The 1-based stratum the virtual node was *added to* (``i+1``
        when its original was free at level ``i``).
    ``for_node``
        Extended id of the node it was created for (may be virtual).
    ``base``
        Dense id of the real node at the bottom of the virtual tower.
    ``direct_tops`` / ``s_tops``
        Real node ids (in ``V_{level+1}``) adjacent to this virtual
        node in the next level's bipartite graph, split by edge kind.
    ``support``
        The cumulative *rerouting support set* of the tower: every
        odd-position top collected by the alternating BFS at each tower
        level, plus — whenever flipping to such a top would free a
        virtual bottom — that bottom tower's base and support.  A node
        whose real parent set touches the support can still claim this
        stranded chain through a transfer, so each new tower level
        turns the next stratum's parents of the support into fresh
        s-edges (the same inheritance the paper applies to the base
        node's own parent edges; the base itself is kept separate in
        ``direct_tops``).
    """

    ext_id: int
    level: int
    for_node: int
    base: int
    direct_tops: list[int] = field(default_factory=list)
    s_tops: list[int] = field(default_factory=list)
    support: tuple[int, ...] = ()

    @property
    def adjacent_tops(self) -> list[int]:
        """All bipartite tops adjacent to this virtual node."""
        return self.direct_tops + self.s_tops


class VirtualRegistry:
    """Maps extended ids to :class:`VirtualNode` records.

    Real nodes occupy ids ``0 .. n-1``; virtual nodes take ``n, n+1, …``
    in creation order.
    """

    def __init__(self, num_real: int) -> None:
        self.num_real = num_real
        self.virtuals: list[VirtualNode] = []

    def __len__(self) -> int:
        return len(self.virtuals)

    def is_virtual(self, ext_id: int) -> bool:
        """True for ids in the virtual range (>= num_real)."""
        return ext_id >= self.num_real

    def get(self, ext_id: int) -> VirtualNode:
        """The :class:`VirtualNode` behind an extended id."""
        return self.virtuals[ext_id - self.num_real]

    def base_of(self, ext_id: int) -> int:
        """The real node at the bottom of an (arbitrary) tower."""
        if ext_id < self.num_real:
            return ext_id
        return self.get(ext_id).base

    def create(self, level: int, for_node: int,
               direct_tops: list[int], s_tops: list[int],
               support: tuple[int, ...]) -> VirtualNode:
        """Register a new virtual node; assigns the next extended id."""
        base = self.base_of(for_node)
        node = VirtualNode(
            ext_id=self.num_real + len(self.virtuals),
            level=level,
            for_node=for_node,
            base=base,
            direct_tops=direct_tops,
            s_tops=s_tops,
            support=support,
        )
        self.virtuals.append(node)
        return node

    def at_level(self, level: int) -> list[VirtualNode]:
        """All virtual nodes added to one stratum."""
        return [v for v in self.virtuals if v.level == level]


@dataclass
class LevelMatching:
    """Everything the resolution phase needs about one level's matching.

    Matching ``i`` pairs tops ``V_{i+1}`` (always real nodes) with
    bottoms ``V_i'`` (real level-``i`` nodes plus virtuals at level
    ``i``).  Local indexes are positions in ``tops`` / ``bottoms``.
    """

    level: int                      # i — the bottoms' stratum
    tops: list[int]                 # real node ids, V_{i+1}
    bottoms: list[int]              # extended ids, V_i'
    top_index: dict[int, int]
    bottom_index: dict[int, int]
    bipartite: BipartiteGraph
    matching: Matching
    reverse_adj: list[list[int]]    # bottom local -> adjacent top locals

    def matched_top_of_bottom(self, bottom_ext: int) -> int | None:
        """Real id of the top currently matched to ``bottom_ext``."""
        local = self.bottom_index[bottom_ext]
        top_local = self.matching.top_of[local]
        if top_local == Matching.UNMATCHED:
            return None
        return self.tops[top_local]

    def unmatch_bottom(self, bottom_ext: int) -> None:
        """Remove the pair covering ``bottom_ext`` (no-op when free)."""
        local = self.bottom_index[bottom_ext]
        top_local = self.matching.top_of[local]
        if top_local != Matching.UNMATCHED:
            self.matching.unmatch_top(top_local)
