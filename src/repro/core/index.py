"""``ChainIndex`` — the library's public reachability index.

This is the paper's complete pipeline behind one class:

1. collapse strongly connected components (cyclic input is fine — every
   node answers queries through its SCC representative, Section II);
2. decompose the condensation DAG into a minimum set of disjoint chains
   (``method="stratified"``, the paper's algorithm; ``"closure"`` for
   the exact Fulkerson reference; ``"jagadish"`` for the DD heuristic
   the paper compares against);
3. label every node with a chain coordinate and an index sequence.

Queries then run in O(log b) where ``b`` is the DAG's width::

    >>> from repro import ChainIndex, DiGraph
    >>> g = DiGraph.from_edges([("a", "b"), ("b", "c"), ("a", "d")])
    >>> index = ChainIndex.build(g)
    >>> index.is_reachable("a", "c")
    True
    >>> index.is_reachable("d", "b")
    False
"""

from __future__ import annotations

from collections.abc import Iterator

from repro.core.chains import ChainDecomposition
from repro.core.closure_cover import closure_chain_cover
from repro.core.labeling import ChainLabeling, build_labeling
from repro.core.stratified import (
    DecompositionStats,
    stratified_chain_cover_with_stats,
)
from repro.graph.digraph import DiGraph
from repro.graph.errors import NodeNotFoundError
from repro.graph.scc import Condensation, condense
from repro.obs import OBS

__all__ = ["ChainIndex"]

_METHODS = ("stratified", "closure", "jagadish")


class ChainIndex:
    """Chain-cover reachability index over an arbitrary digraph."""

    def __init__(self, condensation: Condensation,
                 decomposition: ChainDecomposition,
                 labeling: ChainLabeling, method: str,
                 stats: DecompositionStats | None = None) -> None:
        self._condensation = condensation
        self._decomposition = decomposition
        self._labeling = labeling
        self._method = method
        self._reverse: tuple[ChainDecomposition, ChainLabeling] | None = None
        self.stats = stats

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    @classmethod
    def build(cls, graph: DiGraph, method: str = "stratified",
              check: bool = False) -> "ChainIndex":
        """Index ``graph`` (cyclic allowed).

        ``method`` selects the chain-cover algorithm: ``"stratified"``
        (the paper's, default), ``"closure"`` (exact reference via
        matching on the transitive closure), or ``"jagadish"`` (the DD
        heuristic — more chains, larger labels; exists for comparisons).
        ``check=True`` validates the decomposition against the graph
        before labeling (slow; meant for tests).

        When :data:`repro.obs.OBS` is enabled the build emits the
        phase spans and build counters of ``docs/OBSERVABILITY.md``
        (``condense``, ``stratify``, ``matching/level-*``,
        ``resolution``, ``labeling``, ``build/chains``, ...).
        """
        if method not in _METHODS:
            raise ValueError(
                f"unknown method {method!r}; expected one of {_METHODS}")
        with OBS.span("condense"):
            condensation = condense(graph)
        dag = condensation.dag
        stats = None
        if method == "stratified":
            decomposition, stats = stratified_chain_cover_with_stats(dag)
        elif method == "closure":
            decomposition = closure_chain_cover(dag)
        else:
            from repro.baselines.jagadish import jagadish_chain_cover
            decomposition = jagadish_chain_cover(dag)
        if check:
            decomposition.check(dag)
        labeling = build_labeling(dag, decomposition)
        if OBS.enabled:
            OBS.count("build/chains", decomposition.num_chains)
            OBS.gauge("build/components", condensation.num_components)
            OBS.gauge("index/size_words", labeling.size_words())
        return cls(condensation, decomposition, labeling, method, stats)

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def is_reachable(self, source, target) -> bool:
        """True iff a (possibly empty) path leads ``source`` → ``target``."""
        component_of = self._condensation.component_of
        try:
            source_component = component_of[source]
            target_component = component_of[target]
        except KeyError as exc:
            raise NodeNotFoundError(exc.args[0]) from None
        return self._labeling.is_reachable_ids(source_component,
                                               target_component)

    def descendants(self, source) -> Iterator:
        """All nodes reachable from ``source`` (including itself).

        Runs in O(k + output) — each index-sequence entry names a chain
        and the position from which the whole chain suffix is reachable.
        """
        component_of = self._condensation.component_of
        try:
            component = component_of[source]
        except KeyError as exc:
            raise NodeNotFoundError(exc.args[0]) from None
        members = self._condensation.members
        yield from members[component]
        labeling = self._labeling
        chains = self._decomposition.chains
        own_chain = labeling.chain_of[component]
        own_position = labeling.position_of[component]
        for chain_id, position in zip(labeling.sequence_chains[component],
                                      labeling.sequence_positions[component]):
            for dag_node in chains[chain_id][position:]:
                if chain_id == own_chain and dag_node == component:
                    continue
                yield from members[dag_node]

    def ancestors(self, target) -> Iterator:
        """All nodes that reach ``target`` (including itself).

        Symmetric to :meth:`descendants`: reversing every chain of the
        decomposition yields a valid chain decomposition of the
        reversed DAG, so the same O(k + output) enumeration applies.
        The reverse labeling is built lazily on first use and cached.
        """
        component_of = self._condensation.component_of
        try:
            component = component_of[target]
        except KeyError as exc:
            raise NodeNotFoundError(exc.args[0]) from None
        reverse_decomposition, reverse_labeling = self._reverse_index()
        members = self._condensation.members
        yield from members[component]
        chains = reverse_decomposition.chains
        own_chain = reverse_labeling.chain_of[component]
        for chain_id, position in zip(
                reverse_labeling.sequence_chains[component],
                reverse_labeling.sequence_positions[component]):
            for dag_node in chains[chain_id][position:]:
                if chain_id == own_chain and dag_node == component:
                    continue
                yield from members[dag_node]

    def _reverse_index(self) -> tuple[ChainDecomposition, ChainLabeling]:
        if self._reverse is None:
            reversed_dag = self._condensation.dag.reversed()
            reverse_decomposition = ChainDecomposition(
                chains=[list(reversed(chain))
                        for chain in self._decomposition.chains])
            reverse_labeling = build_labeling(reversed_dag,
                                              reverse_decomposition)
            self._reverse = (reverse_decomposition, reverse_labeling)
        return self._reverse

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------
    @property
    def method(self) -> str:
        """The chain-cover algorithm this index was built with."""
        return self._method

    @property
    def num_chains(self) -> int:
        """Number of chains — the DAG's width for the exact methods."""
        return self._decomposition.num_chains

    @property
    def width(self) -> int:
        """Alias of :attr:`num_chains`."""
        return self._decomposition.num_chains

    @property
    def num_components(self) -> int:
        """SCC count of the indexed graph."""
        return self._condensation.num_components

    def chains(self) -> list[list]:
        """The chains, as lists of SCC member-lists (top first)."""
        members = self._condensation.members
        return [[members[dag_node] for dag_node in chain]
                for chain in self._decomposition.chains]

    def size_words(self) -> int:
        """Label size in 16-bit words (the paper's table unit)."""
        return self._labeling.size_words()

    def __repr__(self) -> str:
        return (f"<ChainIndex method={self._method!r} "
                f"components={self.num_components} chains={self.num_chains} "
                f"words={self.size_words()}>")
