"""``ChainIndex`` — the library's public reachability index.

This is the paper's complete pipeline behind one class:

1. collapse strongly connected components (cyclic input is fine — every
   node answers queries through its SCC representative, Section II);
2. decompose the condensation DAG into a minimum set of disjoint chains
   (``method="stratified"``, the paper's algorithm; ``"closure"`` for
   the exact Fulkerson reference; ``"jagadish"`` for the DD heuristic
   the paper compares against);
3. label every node with a chain coordinate and an index sequence.

Queries then run in O(log b) where ``b`` is the DAG's width::

    >>> from repro import ChainIndex, DiGraph
    >>> g = DiGraph.from_edges([("a", "b"), ("b", "c"), ("a", "d")])
    >>> index = ChainIndex.build(g)
    >>> index.is_reachable("a", "c")
    True
    >>> index.is_reachable("d", "b")
    False
"""

from __future__ import annotations

from bisect import bisect_left
from collections.abc import Iterable, Iterator
from dataclasses import dataclass

from repro.core.chains import ChainDecomposition
from repro.core.closure_cover import closure_chain_cover
from repro.core.labeling import (
    ChainLabeling,
    build_labeling,
    labeling_from_store,
)
from repro.core.labelstore import CODECS, probe_sequence
from repro.core.stratified import (
    DecompositionStats,
    stratified_chain_cover_with_stats,
)
from repro.graph.digraph import DiGraph
from repro.graph.errors import NodeNotFoundError
from repro.graph.scc import Condensation, condense
from repro.obs import OBS

__all__ = ["ChainIndex", "CHAIN_METHODS"]

#: The chain-cover algorithms :meth:`ChainIndex.build` accepts — the
#: single definition site.  ``repro.engine`` registers one
#: ``chain-<method>`` engine per entry and the CLI derives its
#: ``--method`` choices from that registry, so the four can not drift.
CHAIN_METHODS = ("stratified", "closure", "jagadish", "concat")


@dataclass(frozen=True)
class _Kernel:
    """Resolved batch-query state, built lazily on the first batch.

    ``tables`` holds the flat per-label lookup tables when the node
    labels are exactly the dense ints ``0..n-1``; it is ``None`` when
    the labels do not qualify and batches must run through the dict
    translation fallback instead.  ``codec`` records which table shape
    ``tables`` carries: the packed 8-tuple ending in the CSR sequence
    arrays, or the compressed 7-tuple ending in the varint byte blob.
    An unbuilt kernel is represented by ``ChainIndex._kernel is None``
    — there is no sentinel value with a second meaning.
    """

    tables: tuple | None
    codec: str = "packed"

    @property
    def flat(self) -> bool:
        """Whether the fast flat-table path applies."""
        return self.tables is not None


class ChainIndex:
    """Chain-cover reachability index over an arbitrary digraph."""

    def __init__(self, condensation: Condensation,
                 decomposition: ChainDecomposition,
                 labeling: ChainLabeling, method: str,
                 stats: DecompositionStats | None = None) -> None:
        self._condensation = condensation
        self._decomposition = decomposition
        self._labeling = labeling
        self._method = method
        self._reverse: tuple[ChainDecomposition, ChainLabeling] | None = None
        #: lazy batch-query state; ``None`` until the first batch, then
        #: a :class:`_Kernel` (flat tables or the explicit fallback).
        self._kernel: _Kernel | None = None
        self.stats = stats

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    @classmethod
    def build(cls, graph: DiGraph, method: str = "stratified",
              check: bool = False, codec: str = "packed"
              ) -> "ChainIndex":
        """Index ``graph`` (cyclic allowed).

        ``method`` selects the chain-cover algorithm: ``"stratified"``
        (the paper's, default), ``"closure"`` (exact reference via
        matching on the transitive closure), ``"jagadish"`` (the DD
        heuristic — more chains, larger labels; exists for
        comparisons), or ``"concat"`` (the Kritikakis–Tollis greedy
        concatenation — near-linear build, slightly wider cover; the
        large-graph choice).  ``check=True`` validates the
        decomposition against the graph before labeling (slow; meant
        for tests).  ``codec`` selects the label storage:
        ``"packed"`` flat CSR arrays (default) or ``"compressed"``
        delta/varint sequences (~2-3x smaller labels, O(k) decode per
        probe instead of an O(log k) bisect).

        When :data:`repro.obs.OBS` is enabled the build emits the
        phase spans and build counters of ``docs/OBSERVABILITY.md``
        (``condense``, ``stratify``, ``matching/level-*``,
        ``resolution``, ``labeling``, ``build/chains``, ...) plus the
        ``index/size_words`` / ``index/label_bytes`` /
        ``index/label_entries`` size gauges.
        """
        if method not in CHAIN_METHODS:
            raise ValueError(
                f"unknown method {method!r}; expected one of "
                f"{CHAIN_METHODS}")
        if codec not in CODECS:
            raise ValueError(
                f"unknown codec {codec!r}; expected one of {CODECS}")
        with OBS.span("condense"):
            condensation = condense(graph)
        dag = condensation.dag
        stats = None
        if method == "stratified":
            decomposition, stats = stratified_chain_cover_with_stats(dag)
        elif method == "closure":
            decomposition = closure_chain_cover(dag)
        elif method == "concat":
            from repro.core.concat import concat_chain_cover
            decomposition = concat_chain_cover(dag)
        else:
            from repro.baselines.jagadish import jagadish_chain_cover
            decomposition = jagadish_chain_cover(dag)
        if check:
            decomposition.check(dag)
        level_of = stats.level_of if stats is not None else None
        labeling = build_labeling(dag, decomposition, level_of=level_of)
        if codec != "packed":
            labeling = labeling_from_store(labeling.store.to_codec(codec))
        if OBS.enabled:
            OBS.count("build/chains", decomposition.num_chains)
            OBS.gauge("build/components", condensation.num_components)
            OBS.gauge("index/size_words", labeling.size_words())
            OBS.gauge("index/label_bytes", labeling.nbytes())
            OBS.gauge("index/label_entries", labeling.store.num_entries)
        return cls(condensation, decomposition, labeling, method, stats)

    def with_codec(self, codec: str) -> "ChainIndex":
        """This index under another label codec (self when unchanged).

        Conversion re-encodes only the sequence columns; the
        condensation, decomposition and scalar columns are shared with
        the original, so flipping codecs is cheap relative to a build.
        """
        labeling = self._labeling
        if codec in CODECS and codec == labeling.codec:
            return self
        converted = labeling_from_store(labeling.store.to_codec(codec))
        return ChainIndex(self._condensation, self._decomposition,
                          converted, self._method, self.stats)

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def is_reachable(self, source, target) -> bool:
        """True iff a (possibly empty) path leads ``source`` → ``target``.

        Raises :class:`NodeNotFoundError` naming which operand is
        missing (``role`` of ``"source"`` or ``"target"``).
        """
        component_of = self._condensation.component_of
        try:
            source_component = component_of[source]
        except KeyError:
            raise NodeNotFoundError(source, role="source") from None
        try:
            target_component = component_of[target]
        except KeyError:
            raise NodeNotFoundError(target, role="target") from None
        return self._labeling.is_reachable_ids(source_component,
                                               target_component)

    def is_reachable_many(self, pairs: Iterable[tuple]) -> list[bool]:
        """Answer a batch of ``(source, target)`` pairs in one pass.

        Returns one bool per pair, in order — exactly what per-pair
        :meth:`is_reachable` would return, but with every attribute
        lookup, label translation and ``OBS.enabled`` check hoisted out
        of the loop (counters are published once per batch:
        ``query/answered`` by the batch size, ``query/prefilter_hits``
        and ``query/probes`` by their totals).  When node labels are
        dense ints ``0..n-1`` — the benchmark families — the batch runs
        on flat per-label tables built lazily on first use; other label
        types fall back to a dict translation into
        :meth:`ChainLabeling.is_reachable_many_ids`.

        Raises :class:`NodeNotFoundError` (with ``role`` set) for the
        first pair referencing an unknown node.
        """
        if not isinstance(pairs, list):
            pairs = list(pairs)
        kernel = self._kernel
        if kernel is None:
            kernel = self._kernel = _Kernel(
                self._build_query_kernel(), self._labeling.codec)
        if kernel.flat and kernel.codec == "compressed":
            return self._is_reachable_many_compressed(pairs,
                                                      kernel.tables)
        if not kernel.flat:
            component_of = self._condensation.component_of
            try:
                id_pairs = [(component_of[source], component_of[target])
                            for source, target in pairs]
            except KeyError:
                self._raise_batch_missing(pairs)
            return self._labeling.is_reachable_many_ids(id_pairs)
        (rank_of, level_of, chain_of, position_of,
         seq_lo, seq_hi, seq_chains, seq_positions) = kernel.tables
        bisect = bisect_left
        answers: list[bool] = []
        append = answers.append
        if not OBS.enabled:
            # Hot path: same answers as the counting loop below but with
            # no per-query counter bookkeeping (worth ~10% throughput)
            # and the reflexive + rank tests folded into one comparison:
            # rank(s) >= rank(t) settles the query — True iff equal
            # (same component/SCC), False otherwise (ranks are
            # topological, so s could never reach a lower-ranked t).
            try:
                for source, target in pairs:
                    source_rank = rank_of[source]
                    target_rank = rank_of[target]
                    if (source | target) < 0:  # negatives would wrap around
                        raise IndexError
                    if source_rank >= target_rank:
                        append(source_rank == target_rank)
                        continue
                    if level_of[source] <= level_of[target]:
                        append(False)
                        continue
                    target_chain = chain_of[target]
                    hi = seq_hi[source]
                    index = bisect(seq_chains, target_chain,
                                   seq_lo[source], hi)
                    if index == hi or seq_chains[index] != target_chain:
                        append(False)
                        continue
                    append(seq_positions[index] <= position_of[target])
            except (IndexError, TypeError):
                self._raise_batch_missing(pairs)
            return answers
        reflexive = rejected = 0
        try:
            for source, target in pairs:
                if (source | target) < 0:   # negatives would wrap around
                    raise IndexError
                source_rank = rank_of[source]
                target_rank = rank_of[target]
                if source_rank == target_rank:  # same component (or SCC)
                    reflexive += 1
                    append(True)
                    continue
                if (source_rank > target_rank
                        or level_of[source] <= level_of[target]):
                    rejected += 1
                    append(False)
                    continue
                target_chain = chain_of[target]
                hi = seq_hi[source]
                index = bisect(seq_chains, target_chain,
                               seq_lo[source], hi)
                if index == hi or seq_chains[index] != target_chain:
                    append(False)
                    continue
                append(seq_positions[index] <= position_of[target])
        except (IndexError, TypeError):
            self._raise_batch_missing(pairs)
        OBS.count("query/answered", len(answers))
        if rejected:
            OBS.count("query/prefilter_hits", rejected)
        probes = len(answers) - reflexive - rejected
        if probes:
            OBS.count("query/probes", probes)
        return answers

    def _is_reachable_many_compressed(self, pairs: list,
                                      tables: tuple) -> list[bool]:
        """The flat-table batch loop over the compressed codec.

        Same pre-filters and table layout as the packed loop, but the
        residual probe decodes the source's varint slice of the shared
        byte blob (:func:`repro.core.labelstore.probe_sequence`) —
        the blob stays a borrowed read-only view when the labeling is
        attached to a shared-memory segment, so workers never copy
        label bytes.
        """
        (rank_of, level_of, chain_of, position_of,
         byte_lo, byte_hi, blob) = tables
        probe = probe_sequence
        answers: list[bool] = []
        append = answers.append
        reflexive = rejected = 0
        try:
            for source, target in pairs:
                if (source | target) < 0:   # negatives would wrap around
                    raise IndexError
                source_rank = rank_of[source]
                target_rank = rank_of[target]
                if source_rank == target_rank:  # same component (or SCC)
                    reflexive += 1
                    append(True)
                    continue
                if (source_rank > target_rank
                        or level_of[source] <= level_of[target]):
                    rejected += 1
                    append(False)
                    continue
                append(probe(blob, byte_lo[source], byte_hi[source],
                             chain_of[target], position_of[target]))
        except (IndexError, TypeError):
            self._raise_batch_missing(pairs)
        if OBS.enabled:
            OBS.count("query/answered", len(answers))
            if rejected:
                OBS.count("query/prefilter_hits", rejected)
            probes = len(answers) - reflexive - rejected
            if probes:
                OBS.count("query/probes", probes)
        return answers

    def prefilter_rejects(self, source, target) -> bool:
        """O(1): would the rank/level pre-filter alone settle this pair?

        True exactly when the negative answer needs no binary search —
        ``rank(source) > rank(target)`` (topological order forbids the
        path) or ``level(source) <= level(target)`` (the stratification
        forbids it).  Same-component pairs (positive by reflexivity)
        and unknown nodes return False.  The serving layer uses this to
        attribute a negative answer's latency to the ``prefilter_hit``
        class without re-running the query.
        """
        component_of = self._condensation.component_of
        try:
            source_component = component_of[source]
            target_component = component_of[target]
        except (KeyError, TypeError):
            return False
        if source_component == target_component:
            return False
        labeling = self._labeling
        rank_of = labeling.rank_of
        if rank_of[source_component] > rank_of[target_component]:
            return True
        level_of = labeling.level_of
        return (level_of[source_component]
                <= level_of[target_component])

    def _build_query_kernel(self) -> tuple | None:
        """Flat per-label query tables (or ``None`` if inapplicable).

        Valid only when the node labels are exactly the dense ints
        ``0..n-1``: each packed-label array is then re-indexed by label,
        removing the label→component dict hop from the batch loop.  The
        tables are plain lists — indexing a list is measurably faster
        than ``array('l')`` in CPython — built once and cached; the
        canonical storage stays the packed arrays on the labeling.

        Exception: a labeling *borrowed* from a shared-memory segment
        (memoryview-backed, :mod:`repro.service.shm`) keeps its
        ``seq_chains`` / ``seq_positions`` as the read-only views —
        copying them into lists would privatise the largest arrays in
        every worker process and forfeit the zero-copy attach.  The
        per-component tables above are small (one int per component)
        and are rebuilt as lists either way.
        """
        component_of = self._condensation.component_of
        count = len(component_of)
        for label in component_of:
            if type(label) is not int or not 0 <= label < count:
                return None
        labeling = self._labeling
        ranks = labeling.rank_of
        levels = labeling.level_of
        chains = labeling.chain_of
        positions = labeling.position_of
        offsets = labeling.seq_offsets
        rank_of = [0] * count
        level_of = [0] * count
        chain_of = [0] * count
        position_of = [0] * count
        seq_lo = [0] * count
        seq_hi = [0] * count
        for label, component in component_of.items():
            rank_of[label] = ranks[component]
            level_of[label] = levels[component]
            chain_of[label] = chains[component]
            position_of[label] = positions[component]
            seq_lo[label] = offsets[component]
            seq_hi[label] = offsets[component + 1]
        if labeling.codec == "compressed":
            # seq_lo/seq_hi are byte offsets here; the blob is shared
            # (a borrowed read-only view when shm-attached) — never
            # copied into the kernel.
            return (rank_of, level_of, chain_of, position_of, seq_lo,
                    seq_hi, labeling.store.seq_blob)
        seq_chains = labeling.seq_chains
        seq_positions = labeling.seq_positions
        if not isinstance(seq_chains, memoryview):
            seq_chains = list(seq_chains)
            seq_positions = list(seq_positions)
        return (rank_of, level_of, chain_of, position_of, seq_lo, seq_hi,
                seq_chains, seq_positions)

    def _raise_batch_missing(self, pairs) -> None:
        """Re-scan a failed batch slowly to name the missing operand."""
        component_of = self._condensation.component_of
        for source, target in pairs:
            if source not in component_of:
                raise NodeNotFoundError(source, role="source") from None
            if target not in component_of:
                raise NodeNotFoundError(target, role="target") from None
        raise  # not a lookup miss after all: propagate the original

    def descendants(self, source) -> Iterator:
        """All nodes reachable from ``source`` (including itself).

        Runs in O(k + output) — each index-sequence entry names a chain
        and the position from which the whole chain suffix is reachable.
        """
        component_of = self._condensation.component_of
        try:
            component = component_of[source]
        except KeyError:
            raise NodeNotFoundError(source) from None
        return self._chain_suffix_members(component, self._decomposition,
                                          self._labeling)

    def ancestors(self, target) -> Iterator:
        """All nodes that reach ``target`` (including itself).

        Symmetric to :meth:`descendants`: reversing every chain of the
        decomposition yields a valid chain decomposition of the
        reversed DAG, so the same O(k + output) enumeration applies.
        The reverse labeling is built lazily on first use and cached.
        """
        component_of = self._condensation.component_of
        try:
            component = component_of[target]
        except KeyError:
            raise NodeNotFoundError(target) from None
        reverse_decomposition, reverse_labeling = self._reverse_index()
        return self._chain_suffix_members(component, reverse_decomposition,
                                          reverse_labeling)

    def _chain_suffix_members(self, component: int,
                              decomposition: ChainDecomposition,
                              labeling: ChainLabeling) -> Iterator:
        """Expand a node's packed index sequence into graph nodes.

        Shared by :meth:`descendants` (forward labeling) and
        :meth:`ancestors` (reverse labeling): yields the component's
        own SCC members, then the members of every reachable chain
        suffix, skipping the component itself on its own chain.  Reads
        the CSR slice directly — no per-node tuple materialisation.
        """
        members = self._condensation.members
        yield from members[component]
        chains = decomposition.chains
        own_chain = labeling.chain_of[component]
        if labeling.codec == "packed":
            offsets = labeling.seq_offsets
            seq_chains = labeling.seq_chains
            seq_positions = labeling.seq_positions
            entries = ((seq_chains[entry], seq_positions[entry])
                       for entry in range(offsets[component],
                                          offsets[component + 1]))
        else:
            entries = labeling.sequence_items(component)
        for chain_id, position in entries:
            for dag_node in chains[chain_id][position:]:
                if chain_id == own_chain and dag_node == component:
                    continue
                yield from members[dag_node]

    def _reverse_index(self) -> tuple[ChainDecomposition, ChainLabeling]:
        if self._reverse is None:
            reversed_dag = self._condensation.dag.reversed()
            reverse_decomposition = ChainDecomposition(
                chains=[list(reversed(chain))
                        for chain in self._decomposition.chains])
            reverse_labeling = build_labeling(reversed_dag,
                                              reverse_decomposition)
            self._reverse = (reverse_decomposition, reverse_labeling)
        return self._reverse

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------
    @property
    def method(self) -> str:
        """The chain-cover algorithm this index was built with."""
        return self._method

    @property
    def codec(self) -> str:
        """The label storage codec (``packed`` or ``compressed``)."""
        return self._labeling.codec

    @property
    def num_chains(self) -> int:
        """Number of chains — the DAG's width for the exact methods."""
        return self._decomposition.num_chains

    @property
    def width(self) -> int:
        """Alias of :attr:`num_chains`."""
        return self._decomposition.num_chains

    @property
    def num_components(self) -> int:
        """SCC count of the indexed graph."""
        return self._condensation.num_components

    def chains(self) -> list[list]:
        """The chains, as lists of SCC member-lists (top first)."""
        members = self._condensation.members
        return [[members[dag_node] for dag_node in chain]
                for chain in self._decomposition.chains]

    def size_words(self) -> int:
        """Label size in 16-bit words (the paper's table unit)."""
        return self._labeling.size_words()

    def label_bytes(self) -> int:
        """Actual bytes held by the label columns (codec-dependent)."""
        return self._labeling.nbytes()

    def label_entries(self) -> int:
        """Total index-sequence entries across all components."""
        return self._labeling.store.num_entries

    def __repr__(self) -> str:
        return (f"<ChainIndex method={self._method!r} "
                f"components={self.num_components} chains={self.num_chains} "
                f"words={self.size_words()}>")
