"""Exact minimum chain cover via the Fulkerson reduction.

Dilworth's theorem: the minimum number of chains covering a DAG equals
its width.  The classical constructive route (the paper's Section I
credits it to network-flow formulations [15, 19]) builds a bipartite
graph with a *tail* copy and a *head* copy of every node and an edge
``(u_tail, v_head)`` whenever ``u ⇝ v`` in the transitive closure; a
maximum matching ``M`` yields a minimum cover of ``n − |M|`` chains by
following matched successors.

This is slower than the paper's stratified algorithm — it materialises
the closure — but it is *provably* minimum, which makes it the
cross-check oracle for the stratified decomposition and an alternative
``method="closure"`` for :class:`repro.core.index.ChainIndex`.
"""

from __future__ import annotations

from repro.graph.closure import descendants_bitsets
from repro.graph.digraph import DiGraph
from repro.matching.bipartite import BipartiteGraph, Matching
from repro.matching.hopcroft_karp import hopcroft_karp

__all__ = ["closure_matching", "closure_chain_cover", "dag_width"]


def closure_matching(graph: DiGraph) -> Matching:
    """Maximum matching of the closure bipartite graph."""
    n = graph.num_nodes
    bipartite = BipartiteGraph(n, n)
    for v, row in enumerate(descendants_bitsets(graph)):
        while row:
            low = row & -row
            w = low.bit_length() - 1
            bipartite.add_edge(v, w)
            row ^= low
    return hopcroft_karp(bipartite)


def closure_chain_cover(graph: DiGraph):
    """A provably minimum chain decomposition (``width(G)`` chains)."""
    from repro.core.chains import ChainDecomposition

    n = graph.num_nodes
    matching = closure_matching(graph)
    chains: list[list[int]] = []
    is_successor = [False] * n
    for v in range(n):
        # v is a chain head iff nothing is matched *to* it.
        if matching.top_of[v] != Matching.UNMATCHED:
            is_successor[v] = True
    for v in range(n):
        if is_successor[v]:
            continue
        chain = [v]
        current = v
        while matching.bottom_of[current] != Matching.UNMATCHED:
            current = matching.bottom_of[current]
            chain.append(current)
        chains.append(chain)
    return ChainDecomposition(chains=chains)


def dag_width(graph: DiGraph) -> int:
    """The DAG's width — size of a largest antichain (Dilworth).

    Computed as ``n − |maximum matching of the closure bipartite
    graph|``; the paper quotes the same bound via [2].
    """
    if graph.num_nodes == 0:
        return 0
    return graph.num_nodes - closure_matching(graph).size()
