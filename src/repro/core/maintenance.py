"""Incremental maintenance of the chain index.

Section I of the paper: "Since our data structure is of the same form
as Jagadish's, the maintenance suggested by Jagadish's can be adapted
to ours" — and then omits it for space.  This module supplies that
piece: a :class:`DynamicChainIndex` that absorbs node and edge
insertions without a full rebuild.

Insertion semantics follow Jagadish's scheme:

* a new node starts its own chain (the chain count can therefore drift
  above the minimum over time — call :meth:`DynamicChainIndex.rebuild`
  to re-minimise, the same compaction trade-off Jagadish describes);
* a new edge ``u → v`` merges ``v``'s reachable set into ``u`` and
  propagates upward through ancestors whose index sequences actually
  change — O(affected · b) per insertion, not O(n · b).

Deletions restructure chains non-locally, so they fall back to
:meth:`rebuild` (also Jagadish's recommendation).

Queries stay exact at every point; the dynamic variant answers them in
O(1) expected time from per-node hash maps instead of the static
index's O(log b) binary search over frozen arrays.
"""

from __future__ import annotations

from repro.core.stratified import stratified_chain_cover
from repro.graph.digraph import DiGraph
from repro.graph.errors import NodeNotFoundError, NotADAGError
from repro.graph.topology import check_dag
from repro.obs import OBS

__all__ = ["DynamicChainIndex"]


class DynamicChainIndex:
    """A chain-label reachability index that accepts insertions.

    >>> index = DynamicChainIndex.from_graph(
    ...     DiGraph.from_edges([("a", "b")]))
    >>> index.add_node("c")
    >>> index.add_edge("b", "c")
    >>> index.is_reachable("a", "c")
    True
    """

    def __init__(self, graph: DiGraph) -> None:
        self._graph = graph
        self._chain_of: list[int] = []
        self._position_of: list[int] = []
        self._reach: list[dict[int, int]] = []
        self._num_chains = 0
        self._rebuild_from_graph()

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    @classmethod
    def from_graph(cls, graph: DiGraph) -> "DynamicChainIndex":
        """Index a DAG (the graph is copied; cyclic input is rejected)."""
        check_dag(graph)
        return cls(graph.copy())

    def _rebuild_from_graph(self) -> None:
        with OBS.span("maintenance/rebuild"):
            graph = self._graph
            cover = stratified_chain_cover(graph)
            self._chain_of = list(cover.chain_of)
            self._position_of = list(cover.position_of)
            self._num_chains = cover.num_chains
            from repro.graph.topology import topological_order_ids
            reach: list[dict[int, int]] = [{}
                                           for _ in range(graph.num_nodes)]
            for v in reversed(topological_order_ids(graph)):
                accumulator = reach[v]
                for child in graph.successor_ids(v):
                    self._merge_into(accumulator, child, reach[child])
            self._reach = reach

    def rebuild(self) -> None:
        """Re-minimise the chains (compaction after many insertions)."""
        self._rebuild_from_graph()

    # ------------------------------------------------------------------
    # updates
    # ------------------------------------------------------------------
    def add_node(self, node) -> None:
        """Insert an isolated node as its own new chain."""
        self._graph.add_node(node)
        self._chain_of.append(self._num_chains)
        self._position_of.append(0)
        self._reach.append({})
        self._num_chains += 1
        if OBS.enabled:
            OBS.count("maintenance/nodes_added")

    def add_edge(self, tail, head) -> None:
        """Insert ``tail → head``; rejects edges that would close a cycle.

        Labels of ``tail`` and its ancestors are updated in one upward
        worklist pass; nodes whose sequences do not change cut the
        propagation off.
        """
        graph = self._graph
        tail_id = graph.node_id(tail)
        head_id = graph.node_id(head)
        if tail_id == head_id:
            return
        if self._reachable_ids(head_id, tail_id):
            raise NotADAGError(
                f"edge ({tail!r}, {head!r}) would create a cycle")
        graph.add_edge(tail, head)
        enabled = OBS.enabled
        if enabled:
            OBS.count("maintenance/edges_added")
        changed = self._merge_into(self._reach[tail_id], head_id,
                                   self._reach[head_id])
        if not changed:
            return
        label_updates = 1  # the tail's own label just changed
        worklist = [tail_id]
        while worklist:
            node = worklist.pop()
            contribution = self._reach[node]
            own = (self._chain_of[node], self._position_of[node])
            for parent in graph.predecessor_ids(node):
                parent_reach = self._reach[parent]
                touched = self._merge_pairs(parent_reach,
                                            contribution.items())
                # The parent also sees `node` itself through this edge;
                # normally already present, but keep it exact.
                if self._merge_pairs(parent_reach, [own]):
                    touched = True
                if touched:
                    label_updates += 1
                    worklist.append(parent)
        if enabled:
            OBS.count("maintenance/label_updates", label_updates)

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def is_reachable(self, source, target) -> bool:
        """Reflexive reachability on node objects.

        Raises :class:`NodeNotFoundError` with ``role`` naming the
        missing operand (``"source"`` / ``"target"``), matching the
        static :meth:`ChainIndex.is_reachable` contract.
        """
        graph = self._graph
        try:
            source_id = graph.node_id(source)
        except NodeNotFoundError:
            raise NodeNotFoundError(source, role="source") from None
        try:
            target_id = graph.node_id(target)
        except NodeNotFoundError:
            raise NodeNotFoundError(target, role="target") from None
        return self._reachable_ids(source_id, target_id)

    def is_reachable_many(self, pairs) -> list[bool]:
        """Answer a batch of ``(source, target)`` pairs in one pass.

        The dynamic counterpart of
        :meth:`repro.core.index.ChainIndex.is_reachable_many`, so both
        backends satisfy :class:`repro.core.protocols.BatchReachability`
        and the serving layer can dispatch to either without branching.
        Each pair runs through the O(1)-expected hash-map path; the
        ``query/answered`` counter is published once per batch.

        Raises :class:`NodeNotFoundError` (with ``role`` set) for the
        first pair referencing an unknown node.
        """
        graph = self._graph
        node_id = graph.node_id
        reachable = self._reachable_ids
        answers: list[bool] = []
        for source, target in pairs:
            try:
                source_id = node_id(source)
            except NodeNotFoundError:
                raise NodeNotFoundError(source, role="source") from None
            try:
                target_id = node_id(target)
            except NodeNotFoundError:
                raise NodeNotFoundError(target, role="target") from None
            answers.append(reachable(source_id, target_id))
        if OBS.enabled:
            OBS.count("query/answered", len(answers))
        return answers

    def _reachable_ids(self, source: int, target: int) -> bool:
        if source == target:
            return True
        best = self._reach[source].get(self._chain_of[target])
        return best is not None and best <= self._position_of[target]

    @property
    def graph(self) -> DiGraph:
        """The indexed DAG — a live view, mutate only through the index."""
        return self._graph

    @property
    def num_chains(self) -> int:
        """Current chain count (may exceed the width until rebuild)."""
        return self._num_chains

    @property
    def num_nodes(self) -> int:
        """Nodes currently indexed."""
        return self._graph.num_nodes

    def size_words(self) -> int:
        """Same 16-bit-word accounting as the static index."""
        return (2 * self._graph.num_nodes
                + 2 * sum(len(reach) for reach in self._reach))

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------
    def _merge_into(self, accumulator: dict[int, int], child: int,
                    child_reach: dict[int, int]) -> bool:
        """Absorb a child's coordinate and reach; True when changed."""
        changed = self._merge_pairs(
            accumulator,
            [(self._chain_of[child], self._position_of[child])])
        if self._merge_pairs(accumulator, child_reach.items()):
            changed = True
        return changed

    @staticmethod
    def _merge_pairs(accumulator: dict[int, int], pairs) -> bool:
        changed = False
        for chain, position in pairs:
            best = accumulator.get(chain)
            if best is None or position < best:
                accumulator[chain] = position
                changed = True
        return changed
