"""Introspection of the decomposition pipeline, in the paper's notation.

:func:`trace_decomposition` re-runs phase 1 of the stratified algorithm
while recording, for every level, the bipartite graph
``G(V_{i+1}, V_i'; C_i')``, the maximum matching found, and each
virtual node with a label rendered the way Definition 4 / Example 1
write them::

    e[(c, {(1, {b})}), (h, {(1, {g})})]

i.e. per covered parent ``w`` of the stranded node, the odd positions
``n`` on the alternating path starting at ``w`` whose node has parents
``S`` one level further up.  (The production code never materialises
these labels — it re-derives alternating paths at resolution time, see
``repro/core/stratified.py`` — but the rendered form is invaluable for
debugging, teaching and for tests pinned to the paper's figures.)
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.stratification import stratify
from repro.graph.digraph import DiGraph
from repro.matching.alternating import alternating_bfs, bottoms_to_tops
from repro.matching.bipartite import BipartiteGraph
from repro.matching.hopcroft_karp import hopcroft_karp

__all__ = ["VirtualNodeTrace", "LevelTrace", "DecompositionTrace",
           "trace_decomposition"]


@dataclass
class VirtualNodeTrace:
    """One virtual node, in presentation form."""

    name: str                     # e.g. "e'" or "e''"
    for_node: str                 # the node it was created for
    base: object                  # the tower's real base node object
    level: int                    # stratum it was added to
    entries: list[tuple]          # (parent w, [(position, S set)…])

    def label(self) -> str:
        """The paper's label string, e.g. ``e[(c, {(1, {b})})]``."""
        if not self.entries:
            return f"{self.for_node}[ ]"
        rendered = []
        for parent, positions in self.entries:
            inner = ", ".join(
                f"({position}, {{{', '.join(map(str, sorted(s, key=str)))}}})"
                for position, s in positions)
            rendered.append(f"({parent}, {{{inner}}})")
        return f"{self.for_node}[{', '.join(rendered)}]"


@dataclass
class LevelTrace:
    """One level's bipartite graph and matching, in node objects."""

    level: int                              # the bottoms' stratum i
    tops: list                              # V_{i+1}
    bottoms: list                           # V_i' (strings for virtuals)
    edges: list[tuple]                      # (top, bottom) pairs
    matched: list[tuple]                    # the found M_i'
    free_bottoms: list
    virtuals_created: list[VirtualNodeTrace] = field(default_factory=list)


@dataclass
class DecompositionTrace:
    """The full phase-1 trace."""

    stratification_levels: list[list]
    levels: list[LevelTrace]

    def render(self) -> str:
        """Human-readable multi-line report of the whole trace."""
        lines = []
        for index, level in enumerate(self.stratification_levels, 1):
            members = ", ".join(map(str, level))
            lines.append(f"V{index}: {{{members}}}")
        for trace in self.levels:
            lines.append("")
            lines.append(f"bipartite G(V{trace.level + 1}, "
                         f"V{trace.level}'; C{trace.level}')")
            matched = ", ".join(f"({t}, {b})" for t, b in trace.matched)
            lines.append(f"  matching: {matched or '(empty)'}")
            if trace.free_bottoms:
                free = ", ".join(map(str, trace.free_bottoms))
                lines.append(f"  free bottoms: {free}")
            for virtual in trace.virtuals_created:
                lines.append(f"  virtual {virtual.name} -> "
                             f"{virtual.label()}")
        return "\n".join(lines) + "\n"


def trace_decomposition(graph: DiGraph) -> DecompositionTrace:
    """Phase 1 of the stratified algorithm, fully recorded.

    The matchings are computed with the same Hopcroft–Karp code as the
    production path; where the paper's figures show one particular
    maximum matching, the trace shows the one HK happened to find.
    """
    strat = stratify(graph)
    levels = strat.levels
    h = len(levels)
    name_of: dict[object, str] = {}

    def display(ext) -> str:
        return name_of.get(ext, str(ext))

    trace = DecompositionTrace(
        stratification_levels=[[graph.node_at(v) for v in level]
                               for level in levels],
        levels=[])

    pending: list[tuple[str, object, list]] = []  # (name, for, tops)
    primes: dict[object, int] = {}
    virtual_adjacency: dict[str, list[int]] = {}
    base_of: dict[str, int] = {}

    for bottom_level in range(1, h):
        tops = levels[bottom_level]
        bottoms: list = list(levels[bottom_level - 1])
        bottoms.extend(name for name, _, _ in pending)
        top_index = {v: i for i, v in enumerate(tops)}
        bottom_index = {v: i for i, v in enumerate(bottoms)}
        bipartite = BipartiteGraph(len(tops), len(bottoms))
        edges: list[tuple] = []
        for top_local, top in enumerate(tops):
            for child in strat.children_by_level[top].get(bottom_level,
                                                          ()):
                bipartite.add_edge(top_local, bottom_index[child])
                edges.append((graph.node_at(top), graph.node_at(child)))
        for name, _, adjacent in pending:
            for top in adjacent:
                bipartite.add_edge(top_index[top], bottom_index[name])
                edges.append((graph.node_at(top), name))
        matching = hopcroft_karp(bipartite)
        reverse_adj = bottoms_to_tops(bipartite)

        def show_bottom(local: int) -> object:
            ext = bottoms[local]
            return ext if isinstance(ext, str) else graph.node_at(ext)

        level_trace = LevelTrace(
            level=bottom_level,
            tops=[graph.node_at(v) for v in tops],
            bottoms=[show_bottom(i) for i in range(len(bottoms))],
            edges=edges,
            matched=[(graph.node_at(tops[t]), show_bottom(b))
                     for t, b in matching.pairs()],
            free_bottoms=[show_bottom(b)
                          for b in matching.free_bottoms()],
        )
        trace.levels.append(level_trace)

        next_pending: list[tuple[str, object, list]] = []
        if bottom_level + 1 <= h - 1:
            parent_level_up = bottom_level + 2
            for bottom_local in matching.free_bottoms():
                ext = bottoms[bottom_local]
                if isinstance(ext, str):
                    base = base_of[ext]
                    shown = ext
                else:
                    base = ext
                    shown = graph.node_at(ext)
                forest = alternating_bfs(matching, reverse_adj,
                                         reverse_adj[bottom_local])
                entries = []
                adjacent_next: list[int] = list(
                    strat.parents_by_level[base].get(parent_level_up,
                                                     ()))
                for root_local in dict.fromkeys(
                        forest.root_of[t] for t in forest.order):
                    positions = []
                    for top_local in forest.order:
                        if forest.root_of[top_local] != root_local:
                            continue
                        depth = len(forest.path_to(top_local))
                        s_set = {graph.node_at(p)
                                 for p in strat.parents_by_level[
                                     tops[top_local]].get(
                                         parent_level_up, ())}
                        positions.append((2 * depth - 1, s_set))
                        adjacent_next.extend(
                            strat.parents_by_level[tops[top_local]].get(
                                parent_level_up, ()))
                    entries.append((graph.node_at(tops[root_local]),
                                    positions))
                primes[base] = primes.get(base, 0) + 1
                name = f"{graph.node_at(base)}{chr(39) * primes[base]}"
                name_of[name] = name
                base_of[name] = base
                adjacent_next = sorted(set(adjacent_next))
                virtual_adjacency[name] = adjacent_next
                virtual = VirtualNodeTrace(
                    name=name, for_node=shown,
                    base=graph.node_at(base),
                    level=bottom_level + 1, entries=entries)
                level_trace.virtuals_created.append(virtual)
                if adjacent_next or any(
                        level > parent_level_up
                        for level in strat.parents_by_level[base]):
                    next_pending.append((name, ext, adjacent_next))
        pending = next_pending
    return trace
