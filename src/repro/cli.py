"""``python -m repro`` — work with graphs and indexes from the shell.

Subcommands operate on the edge-list format of :mod:`repro.graph.io`::

    python -m repro stats graph.txt          # nodes/edges/width/height
    python -m repro stats graph.txt --profile    # + cProfile hot spots
    python -m repro chains graph.txt         # minimum chain cover
    python -m repro antichain graph.txt      # a maximum antichain
    python -m repro query graph.txt 0 1 2 3  # reachability pairs
    python -m repro query graph.txt --pairs-file q.txt   # batch query
    python -m repro generate dsrg 500 200 --seed 3 --out graph.txt
    python -m repro index graph.txt -o graph.idx     # persist the index
    python -m repro index --edges huge.txt -o huge.idx --codec compressed
    python -m repro stats --index graph.idx  # codec, on-disk vs RAM size
    python -m repro query --index graph.idx 0 1      # query without rebuild
    python -m repro serve graph.txt --port 7431      # TCP query service
    python -m repro query --remote 127.0.0.1:7431 0 1    # query a server
    python -m repro serve graph.txt --capture j.ndjson   # request journal
    python -m repro serve graph.txt --slo "positive p99 < 2ms"
    python -m repro slo-report --remote 127.0.0.1:7431   # objective status
    python -m repro remove-edge --remote 127.0.0.1:7431 0 1  # delete edge
    python -m repro remove-node graph.txt 7 --out g2.txt # edit edge list
    python -m repro dot graph.txt --chains           # Graphviz export

``--engine`` (on ``query`` / ``serve`` / ``stats`` / ``index``)
selects any backend from the :mod:`repro.engine` registry — the chain
index variants, the paper's baselines, or the component-partitioned
``composite``::

    python -m repro query graph.txt 0 1 --engine two-hop
    python -m repro serve graph.txt --engine composite
    python -m repro index graph.txt -o g.idx --engine composite  # v3
    python -m repro stats graph.txt --engine chain-stratified

``--observers on`` (on ``query`` / ``serve`` / ``stats``) puts the
O(1)-answer observer stack of ``docs/OBSERVERS.md`` in front of the
selected engine — the ``observed:<engine>`` registry spelling::

    python -m repro query graph.txt 0 1 --observers on --engine bfs
    python -m repro serve graph.txt --observers on

Observability (see ``docs/OBSERVABILITY.md``): ``--profile`` on
``stats`` prints a cProfile breakdown of the width computation, and
``--metrics-out metrics.json`` on ``index`` / ``query`` enables the
:data:`repro.obs.OBS` registry for the run and writes its JSON export
— per-phase spans (``condense``, ``stratify``, ``matching/level-*``,
``resolution``, ``labeling``), build counters (chains, virtual nodes,
transfers, ...) and query counters::

    python -m repro index graph.txt -o graph.idx --metrics-out m.json
    python -m repro query graph.txt 0 1 --metrics-out m.json
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from contextlib import contextmanager
from pathlib import Path

from repro.core.index import ChainIndex
from repro.core.labelstore import CODECS
from repro.core.width import dag_width, maximum_antichain
from repro.obs import OBS, maybe_profiled
from repro.graph.generators import (
    citation_dag,
    dense_dag,
    graph_stats,
    scale_chain_dag,
    semi_random_dag,
    sparse_random_dag,
    systematic_dag,
)
from repro.graph.io import iter_edges, read_edge_list, write_edge_list
from repro.graph.scc import condense

__all__ = ["main"]


def _load(path: str):
    return read_edge_list(Path(path))


def _load_from_edges(path: str):
    """Stream a (possibly huge) edge list straight into a DiGraph.

    Uses :func:`repro.graph.io.iter_edges`, so one line of the file is
    in memory at a time — no intermediate edge list, no adjacency
    copies; 10M edges land directly in the graph's dense arrays.
    """
    from repro.graph.digraph import DiGraph
    graph = DiGraph()
    ensure_node = graph.ensure_node
    has_edge = graph.has_edge
    add_edge = graph.add_edge
    for tail, head in iter_edges(Path(path)):
        ensure_node(tail)
        ensure_node(head)
        if tail != head and not has_edge(tail, head):
            add_edge(tail, head)
    return graph


def _engine_names() -> list[str]:
    """Registered engine names — the ``--engine`` choice list."""
    import repro.engine as engine
    return list(engine.names())


def _chain_method_choices() -> list[str]:
    """Chain-cover methods, derived from the engine registry (the
    single definition site), so ``--method`` choices cannot drift."""
    import repro.engine as engine
    return list(engine.chain_methods())


def _build_engine(name: str, graph):
    import repro.engine as engine
    return engine.build(name, graph)


def _observed_name(name: str | None) -> str:
    """The ``observed:`` spelling of ``name`` (default chain engine)."""
    import repro.engine as engine
    return engine.OBSERVED_PREFIX + (name or "chain-stratified")


@contextmanager
def _metrics_session(out: str | None):
    """Enable the OBS registry around a command and export its JSON."""
    if not out:
        yield
        return
    OBS.reset()
    OBS.enable()
    try:
        yield
    finally:
        OBS.disable()
        try:
            OBS.export(Path(out))
        except OSError as exc:
            print(f"error: cannot write metrics to {out}: {exc}",
                  file=sys.stderr)
            raise SystemExit(2) from exc
        print(f"metrics -> {out}")


def _print_index_stats(path: str) -> int:
    """``stats --index``: on-disk vs in-memory size and codec."""
    from repro.core.persistence import describe_index_file
    from repro.graph.errors import GraphFormatError
    try:
        info = describe_index_file(Path(path))
    except FileNotFoundError:
        print(f"stats: no such index file: {path}", file=sys.stderr)
        return 2
    except GraphFormatError as exc:
        print(f"stats: {path}: {exc}", file=sys.stderr)
        return 2
    codec = info["codec"]
    if isinstance(codec, list):
        codec = ", ".join(codec)
    print(f"kind:                {info['kind']} "
          f"(format v{info['version']})")
    if info["kind"] == "composite":
        print(f"sub-engine:          {info['sub_engine']} "
              f"({info['partitions']} partitions)")
    else:
        print(f"method:              {info['method']}")
    print(f"codec:               {codec}")
    print(f"on-disk size:        {info['file_bytes']} bytes")
    print(f"label bytes (RAM):   {info['label_bytes']}")
    print(f"label entries:       {info['label_entries']}")
    print(f"size (words):        {info['size_words']}")
    print(f"components:          {info['components']}")
    print(f"chains:              {info['chains']}")
    return 0


def _cmd_stats(args) -> int:
    if args.index:
        return _print_index_stats(args.index)
    if not args.graph:
        print("stats needs a graph file or --index", file=sys.stderr)
        return 2
    graph = _load(args.graph)
    with maybe_profiled(args.profile):
        condensation = condense(graph)
        stats = graph_stats(condensation.dag, path_samples=500, seed=0)
        width = dag_width(condensation.dag)
    print(f"nodes:               {graph.num_nodes}")
    print(f"edges:               {graph.num_edges}")
    print(f"scc components:      {condensation.num_components}")
    print(f"height (strata):     {stats.height}")
    print(f"width (Dilworth):    {width}")
    print(f"avg out-degree:      "
          f"{stats.average_out_degree_internal:.2f}")
    engine_name = args.engine
    if args.observers == "on":
        engine_name = _observed_name(engine_name)
    if engine_name:
        engine = _build_engine(engine_name, graph)
        info = engine.describe()
        flags = [flag for flag, value in info["capabilities"].items()
                 if value]
        print(f"engine:              {info['engine']}")
        print(f"engine size (words): {info['size_words']}")
        print(f"engine capabilities: {', '.join(flags) or '-'}")
        if "partitions" in info:
            print(f"engine partitions:   {info['partitions']} "
                  f"(sizes {info['partition_sizes']})")
        if "observers" in info:
            print(f"engine observers:    {', '.join(info['observers'])}")
    return 0


def _cmd_chains(args) -> int:
    graph = _load(args.graph)
    index = ChainIndex.build(graph, method=args.method)
    print(f"{index.num_chains} chains "
          f"({index.num_components} components):")
    for chain in index.chains():
        print("  " + " > ".join("/".join(map(str, scc))
                                for scc in chain))
    return 0


def _cmd_antichain(args) -> int:
    graph = _load(args.graph)
    condensation = condense(graph)
    antichain = maximum_antichain(condensation.dag)
    members = [condensation.members[c][0] for c in antichain]
    print(f"maximum antichain ({len(members)} nodes):")
    print("  " + " ".join(map(str, sorted(members, key=str))))
    return 0


def _cmd_query(args) -> int:
    with _metrics_session(args.metrics_out):
        return _run_query(args)


def _read_pairs_file(path: str) -> list[str]:
    """Whitespace-separated node tokens; ``#`` starts a comment."""
    tokens: list[str] = []
    for line in Path(path).read_text(encoding="utf-8").splitlines():
        tokens.extend(line.split("#", 1)[0].split())
    return tokens


def _run_query(args) -> int:
    pairs = list(args.pairs)
    index = None
    if args.remote or args.index:
        # With --remote/--index the positional "graph" slot, if
        # filled, is really the first query node.
        if args.graph is not None:
            pairs.insert(0, args.graph)
    observed = args.observers == "on"
    if args.remote:
        if args.engine:
            print("query: --engine selects a local build; it has no "
                  "effect with --remote", file=sys.stderr)
            return 2
        if observed:
            print("query: --observers wraps a local build; it has no "
                  "effect with --remote", file=sys.stderr)
            return 2
        pass                                 # resolved after pair parsing
    elif args.index:
        if args.engine:
            print("query: --engine selects a local build; a persisted "
                  "--index already fixes the engine", file=sys.stderr)
            return 2
        from repro.core.persistence import load_index
        index = load_index(Path(args.index))
        if observed:
            if not isinstance(index, ChainIndex):
                print("query: --observers on a persisted index needs "
                      "a chain index (composites rebuild from the "
                      "graph instead)", file=sys.stderr)
                return 2
            from repro.engine.adapters import ChainEngine
            from repro.observers import ObserverChain
            index = ObserverChain.wrap(
                None, ChainEngine(index, f"chain-{index.method}"))
    elif args.graph:
        try:
            graph = _load(args.graph)
        except FileNotFoundError:
            print(f"query: no such graph file: {args.graph} "
                  f"(or pass --index)", file=sys.stderr)
            return 2
        engine_name = args.engine
        if observed:
            engine_name = _observed_name(engine_name)
        index = _build_engine(engine_name, graph) if engine_name \
            else ChainIndex.build(graph)
    else:
        print("query needs a graph file, --index or --remote",
              file=sys.stderr)
        return 2
    if args.pairs_file:
        try:
            pairs.extend(_read_pairs_file(args.pairs_file))
        except OSError as exc:
            print(f"query: cannot read pairs file: {exc}",
                  file=sys.stderr)
            return 2
    if not pairs:
        print("query needs at least one source target pair (arguments "
              "or --pairs-file)", file=sys.stderr)
        return 2
    if len(pairs) % 2:
        print("query expects an even number of nodes (source target "
              "pairs)", file=sys.stderr)
        return 2
    if args.int_labels:
        pairs = [int(token) for token in pairs]
    query_pairs = [(pairs[i], pairs[i + 1])
                   for i in range(0, len(pairs), 2)]
    if args.remote:
        return _query_remote(args.remote, query_pairs)
    answers = index.is_reachable_many(query_pairs)
    return _print_answers(query_pairs, answers)


def _print_answers(query_pairs, answers) -> int:
    exit_code = 0
    for (source, target), answer in zip(query_pairs, answers):
        print(f"{source} -> {target}: {'yes' if answer else 'no'}")
        if not answer:
            exit_code = 1
    return exit_code


def _query_remote(address: str, query_pairs) -> int:
    """Answer the batch through a running ``repro serve`` instance."""
    from repro.service import RemoteError, ServiceClient, ServiceError
    try:
        with ServiceClient.from_address(address) as client:
            epoch, answers = client.query_batch(query_pairs)
    except (ServiceError, RemoteError, ValueError, OSError) as exc:
        print(f"query: remote {address}: {exc}", file=sys.stderr)
        return 2
    exit_code = _print_answers(query_pairs, answers)
    print(f"(epoch {epoch})")
    return exit_code


def _cmd_serve(args) -> int:
    """Run the TCP reachability service until interrupted."""
    import asyncio
    import signal

    from repro.service import IndexManager, ReachabilityService

    if args.method is not None:
        print("serve: --method is deprecated; use "
              f"--engine chain-{args.method}", file=sys.stderr)
    slo_specs = list(args.slo or []) or None
    if slo_specs:
        # fail fast on a typo'd objective, before any index build
        from repro.obs import parse_objectives
        try:
            parse_objectives(slo_specs)
        except ValueError as exc:
            print(f"serve: --slo: {exc}", file=sys.stderr)
            return 2
    if args.index:
        if args.engine:
            print("serve: a persisted --index already fixes the "
                  "engine; --engine has no effect", file=sys.stderr)
            return 2
        if args.observers == "on":
            print("serve: --observers needs a graph build; a "
                  "persisted --index serves bare", file=sys.stderr)
            return 2
        manager = IndexManager.from_index_file(Path(args.index))
        label = args.index
    elif args.graph:
        engine_name = args.engine
        if args.observers == "on":
            engine_name = _observed_name(
                engine_name or f"chain-{args.method or 'stratified'}")
        try:
            # under a worker pool the pool owns write-triggered swaps
            # (it must publish + broadcast each epoch), so the manager
            # itself never auto-swaps
            manager = IndexManager.from_graph(
                _load(args.graph), method=args.method or "stratified",
                engine=engine_name,
                auto_swap_after=(None if args.workers
                                 else args.swap_after))
        except ValueError as exc:            # engine/method conflict
            print(f"serve: {exc}", file=sys.stderr)
            return 2
        label = args.graph
    else:
        print("serve needs a graph file or --index", file=sys.stderr)
        return 2
    if args.workers:
        return _serve_pool(args, manager, label)
    if args.metrics_port is not None:
        # the exposition endpoint is most useful with the registry's
        # counters/spans included, so a metrics listener enables OBS
        OBS.enable()
    service = ReachabilityService(
        manager, host=args.host, port=args.port,
        max_batch=args.max_batch, max_wait_us=args.max_wait_us,
        max_pending=args.max_pending, cache_size=args.cache_size,
        request_timeout=args.request_timeout,
        metrics_port=args.metrics_port,
        log=args.log, slow_query_ms=args.slow_query_ms,
        capture=args.capture, capture_capacity=args.capture_capacity,
        capture_sample=args.capture_sample, slo=slo_specs)

    async def run() -> None:
        host, port = await service.start()
        print(f"serving {label} on {host}:{port} "
              f"(engine {manager.stats()['engine']}, "
              f"epoch {manager.epoch}, writable={manager.writable})",
              flush=True)
        if service.metrics_address is not None:
            metrics_host, metrics_port = service.metrics_address
            print(f"metrics on http://{metrics_host}:{metrics_port}"
                  f"/metrics", flush=True)
        if args.capture:
            print(f"capturing requests to {args.capture} "
                  f"(capacity {args.capture_capacity}, "
                  f"sample {args.capture_sample}); journal is "
                  f"written on shutdown", flush=True)
        if slo_specs:
            print(f"tracking {len(slo_specs)} SLO objective(s); read "
                  f"with 'repro slo-report --remote {host}:{port}'",
                  flush=True)
        if args.ready_file:
            _write_ready_file(args.ready_file, host, port,
                              epoch=manager.epoch, workers=0,
                              pids=[os.getpid()])
        try:
            await service.serve_forever()
        finally:
            await service.shutdown()

    def _terminate(signum, frame):
        # orchestrators stop with SIGTERM; drain exactly like Ctrl-C
        # (the capture journal is flushed on the drain path)
        raise KeyboardInterrupt

    signal.signal(signal.SIGTERM, _terminate)
    try:
        asyncio.run(run())
    except KeyboardInterrupt:
        pass                      # Ctrl-C lands here or exits run() cleanly
    print("drained and stopped")
    return 0


def _write_ready_file(path, host, port, *, epoch, workers, pids) -> None:
    """One JSON line: address + epoch + serving pids, written only
    once every listener is accepting (docs/SERVICE.md)."""
    payload = {"host": host, "port": port, "epoch": epoch,
               "workers": workers, "pids": pids}
    Path(path).write_text(json.dumps(payload) + "\n", encoding="utf-8")


def _serve_pool(args, manager, label) -> int:
    """Run the multi-process worker pool until interrupted."""
    import signal
    import time

    from repro.service import ServiceError, WorkerPool

    if args.metrics_port is not None:
        OBS.enable()
    pool = WorkerPool(
        manager, workers=args.workers, host=args.host, port=args.port,
        swap_after=args.swap_after, metrics_port=args.metrics_port,
        service_options={
            "max_batch": args.max_batch,
            "max_wait_us": args.max_wait_us,
            "max_pending": args.max_pending,
            "cache_size": args.cache_size,
            "request_timeout": args.request_timeout,
            # a str capture path is rewritten per worker to
            # PATH.worker<id>; slo trackers are per worker too
            "capture": args.capture,
            "capture_capacity": args.capture_capacity,
            "capture_sample": args.capture_sample,
            "slo": list(args.slo or []) or None,
        },
        log=args.log)
    try:
        host, port = pool.start()
    except (ServiceError, OSError) as exc:
        print(f"serve: {exc}", file=sys.stderr)
        return 2

    def _terminate(signum, frame):
        raise KeyboardInterrupt

    signal.signal(signal.SIGTERM, _terminate)
    pids = pool.worker_pids()
    print(f"serving {label} on {host}:{port} "
          f"({args.workers} workers, pids {pids}, "
          f"engine {manager.stats()['engine']}, "
          f"epoch {manager.epoch}, writable={manager.writable})",
          flush=True)
    if pool.metrics_address is not None:
        metrics_host, metrics_port = pool.metrics_address
        print(f"metrics on http://{metrics_host}:{metrics_port}"
              f"/metrics", flush=True)
    if args.capture:
        print(f"capturing requests to {args.capture}.worker<id> "
              f"(one journal per worker, written on shutdown)",
              flush=True)
    if args.ready_file:
        _write_ready_file(args.ready_file, host, port,
                          epoch=pool.epoch,
                          workers=pool.alive_workers(), pids=pids)
    try:
        while True:
            time.sleep(3600)
    except KeyboardInterrupt:
        pass
    finally:
        pool.stop()
    print("drained and stopped")
    return 0


def _cmd_slo_report(args) -> int:
    """Fetch and render a running server's SLO report."""
    from repro.service import RemoteError, ServiceClient, ServiceError
    try:
        with ServiceClient.from_address(args.remote) as client:
            report = client.slo()
    except (ServiceError, RemoteError, ValueError, OSError) as exc:
        print(f"slo-report: remote {args.remote}: {exc}",
              file=sys.stderr)
        return 2
    if args.json:
        print(json.dumps(report, indent=2, sort_keys=True))
        return 0 if report.get("healthy", True) else 1
    if not report.get("enabled"):
        print("SLO tracking is off on this server "
              "(start it with: repro serve ... --slo SPEC)")
        return 0
    windows = report["windows"]
    print(f"windows: fast {windows['fast_seconds']:.0f}s / "
          f"slow {windows['slow_seconds']:.0f}s "
          f"(cells of {windows['cell_seconds']:.0f}s); verdicts are "
          f"over the slow window")
    width = max(len(row["spec"]) for row in report["objectives"]) \
        if report["objectives"] else 0
    for row in report["objectives"]:
        if row["metric"] == "availability":
            observed = f"{100 * row['observed']:.3f}%"
        else:
            observed = f"{1e3 * row['observed']:.3f}ms"
        status = "ok" if row["compliant"] else "BREACH"
        if row["alert"]:
            status += " ALERT"
        print(f"  {row['spec']:<{width}}  observed {observed:>10}  "
              f"compliance {100 * row['compliance_ratio']:7.3f}%  "
              f"burn {row['burn_rate_fast']:.2f}/"
              f"{row['burn_rate_slow']:.2f}  "
              f"n={row['samples']:<6} {status}")
    print(f"breaches since start: {report['breach_count']}")
    for breach in report["breaches"][-5:]:
        print(f"  at +{breach['at']:.1f}s: {breach['spec']} "
              f"(observed {breach['observed']:.6f}, "
              f"n={breach['samples']})")
    return 0 if report["healthy"] else 1


def _cmd_remove(args) -> int:
    """Delete an edge or a node, remotely or in an edge-list file."""
    tokens = ([args.source, args.target] if args.what == "edge"
              else [args.node])
    if args.int_labels:
        tokens = [int(token) for token in tokens]
    if args.remote:
        return _remove_remote(args, tokens)
    if not args.graph:
        print(f"remove-{args.what} needs a graph file or --remote",
              file=sys.stderr)
        return 2
    from repro.graph.errors import GraphError
    graph = _load(args.graph)
    try:
        if args.what == "edge":
            graph.remove_edge(*tokens)
        else:
            graph.remove_node(tokens[0])
    except GraphError as exc:                # unknown node / edge
        print(f"remove-{args.what}: {exc}", file=sys.stderr)
        return 1
    out = args.out or args.graph
    write_edge_list(graph, Path(out))
    print(f"removed {args.what} "
          f"{' -> '.join(map(str, tokens))} -> {out}")
    return 0


def _remove_remote(args, tokens) -> int:
    """Send the removal to a running ``repro serve`` instance."""
    from repro.service import RemoteError, ServiceClient, ServiceError
    try:
        with ServiceClient.from_address(args.remote) as client:
            if args.what == "edge":
                response = client.remove_edge(*tokens)
            else:
                response = client.remove_node(tokens[0])
    except RemoteError as exc:
        print(f"remove-{args.what}: remote {args.remote}: {exc}",
              file=sys.stderr)
        # an unknown node is the same rejection the file path reports
        # with exit 1; only transport/protocol trouble is exit 2
        return 1 if exc.code == "unknown_node" else 2
    except (ServiceError, ValueError, OSError) as exc:
        print(f"remove-{args.what}: remote {args.remote}: {exc}",
              file=sys.stderr)
        return 2
    removed = response["removed"]
    label = " -> ".join(map(str, tokens))
    print(f"{label}: {'removed' if removed else 'not present'} "
          f"(epoch {response['epoch']}, "
          f"pending {response['pending_writes']})")
    return 0 if removed else 1


_GENERATORS = {
    "sparse": lambda a: sparse_random_dag(a.size, a.extra, seed=a.seed),
    "dsg": lambda a: systematic_dag(a.size, max(2, a.extra),
                                    seed=a.seed),
    "dsrg": lambda a: semi_random_dag(a.size, a.extra, seed=a.seed),
    "dense": lambda a: dense_dag(a.size, min(0.5, a.extra / 100),
                                 seed=a.seed),
    "citation": lambda a: citation_dag(a.size, max(1, a.extra),
                                       seed=a.seed),
    "scale": lambda a: scale_chain_dag(a.size, a.extra, seed=a.seed),
}


def _cmd_index(args) -> int:
    from repro.core.persistence import save_index
    with _metrics_session(args.metrics_out):
        if args.graph and args.edges:
            print("index: pass a graph file or --edges, not both",
                  file=sys.stderr)
            return 2
        if args.edges:
            graph = _load_from_edges(args.edges)
        elif args.graph:
            graph = _load(args.graph)
        else:
            print("index needs a graph file or --edges",
                  file=sys.stderr)
            return 2
        codec_note = f", {args.codec} labels" if args.codec else ""
        if args.engine and not args.engine.startswith("chain-"):
            import repro.engine as registry
            spec = registry.get(args.engine)
            if not spec.persistable:
                print(f"index: engine {args.engine!r} is not "
                      f"persistable; choose one of "
                      f"{', '.join(_persistable_engines())}",
                      file=sys.stderr)
                return 2
            index = spec.build(graph)
            save_index(index, Path(args.out), codec=args.codec)
            print(f"indexed {graph.num_nodes} nodes with "
                  f"{args.engine} ({index.size_words()} words"
                  f"{codec_note}) -> {args.out}")
            return 0
        method = args.engine[len("chain-"):] if args.engine \
            else args.method
        index = ChainIndex.build(graph, method=method,
                                 codec=args.codec or "packed")
        save_index(index, Path(args.out))
    print(f"indexed {graph.num_nodes} nodes into {index.num_chains} "
          f"chains ({index.size_words()} words{codec_note}) "
          f"-> {args.out}")
    return 0


def _persistable_engines() -> list[str]:
    import repro.engine as engine
    return [spec.name for spec in engine.specs() if spec.persistable]


def _cmd_dot(args) -> int:
    from repro.graph.dot import chains_to_dot, stratification_to_dot, to_dot
    graph = _load(args.graph)
    if args.chains:
        condensation = condense(graph)
        index = ChainIndex.build(graph)
        text = chains_to_dot(condensation.dag,
                             index._decomposition)  # noqa: SLF001
    elif args.strata:
        from repro.core.stratification import stratify
        condensation = condense(graph)
        text = stratification_to_dot(condensation.dag,
                                     stratify(condensation.dag))
    else:
        text = to_dot(graph)
    if args.out:
        Path(args.out).write_text(text, encoding="utf-8")
        print(f"wrote {args.out}")
    else:
        sys.stdout.write(text)
    return 0


def _cmd_generate(args) -> int:
    graph = _GENERATORS[args.family](args)
    if args.out:
        write_edge_list(graph, Path(args.out))
        print(f"wrote {graph.num_nodes} nodes / {graph.num_edges} "
              f"edges to {args.out}")
    else:
        write_edge_list(graph, sys.stdout)
    return 0


def build_parser() -> argparse.ArgumentParser:
    """The repro-graph argument parser with all subcommands."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Chain-cover reachability toolkit (Chen & Chen, "
                    "ICDE 2008)")
    sub = parser.add_subparsers(dest="command", required=True)
    engine_names = _engine_names()
    method_names = _chain_method_choices()

    stats = sub.add_parser("stats", help="graph statistics incl. width")
    stats.add_argument("graph", nargs="?", default=None)
    stats.add_argument("--index", default=None, metavar="FILE",
                       help="describe a persisted index instead: "
                            "format version, codec, on-disk vs "
                            "in-memory size (v2/v3/v4 files)")
    stats.add_argument("--profile", action="store_true",
                       help="print a cProfile breakdown of the "
                            "width/stats computation")
    stats.add_argument("--engine", default=None, choices=engine_names,
                       help="also build this engine and report its "
                            "size and capabilities")
    stats.add_argument("--observers", default="off",
                       choices=("on", "off"),
                       help="report the engine behind the O(1)-answer "
                            "observer stack (docs/OBSERVERS.md); "
                            "implies --engine chain-stratified if no "
                            "engine is given")
    stats.set_defaults(func=_cmd_stats)

    chains = sub.add_parser("chains", help="minimum chain cover")
    chains.add_argument("graph")
    chains.add_argument("--method", default="stratified",
                        choices=method_names)
    chains.set_defaults(func=_cmd_chains)

    antichain = sub.add_parser("antichain", help="a maximum antichain")
    antichain.add_argument("graph")
    antichain.set_defaults(func=_cmd_antichain)

    query = sub.add_parser("query", help="reachability queries")
    query.add_argument("graph", nargs="?", default=None)
    query.add_argument("pairs", nargs="*",
                       help="source target [source target ...]")
    query.add_argument("--index", default=None,
                       help="use a persisted index instead of a graph")
    query.add_argument("--remote", default=None, metavar="HOST:PORT",
                       help="send the batch to a running 'repro serve' "
                            "instance instead of building locally")
    query.add_argument("--pairs-file", default=None, metavar="FILE",
                       help="read extra whitespace-separated source/"
                            "target pairs from FILE (# comments "
                            "allowed); the whole batch is answered "
                            "through is_reachable_many")
    query.add_argument("--engine", default=None, choices=engine_names,
                       help="answer through this registered engine "
                            "(default: chain-stratified)")
    query.add_argument("--observers", default="off",
                       choices=("on", "off"),
                       help="answer through the O(1)-answer observer "
                            "stack in front of the engine "
                            "(docs/OBSERVERS.md)")
    query.add_argument("--str-labels", dest="int_labels",
                       action="store_false",
                       help="treat node labels as strings")
    query.add_argument("--metrics-out", default=None, metavar="FILE",
                       help="record repro.obs metrics for the run and "
                            "write the JSON export here")
    query.set_defaults(func=_cmd_query)

    index = sub.add_parser("index", help="build and persist an index")
    index.add_argument("graph", nargs="?", default=None)
    index.add_argument("--edges", default=None, metavar="FILE",
                       help="stream the edge list from FILE instead "
                            "of the graph positional — one line in "
                            "memory at a time, for graphs too big to "
                            "parse eagerly (n/v node declarations "
                            "are skipped: only edge endpoints exist)")
    index.add_argument("-o", "--out", required=True)
    index.add_argument("--method", default="stratified",
                       choices=method_names)
    index.add_argument("--codec", default=None, choices=CODECS,
                       help="label codec to build and persist "
                            "(default packed; compressed gap-encodes "
                            "the sorted index sequences, format v4)")
    index.add_argument("--engine", default=None, choices=engine_names,
                       help="persist this engine instead (must be "
                            "persistable; 'composite' writes a "
                            "format-v3 partition manifest)")
    index.add_argument("--metrics-out", default=None, metavar="FILE",
                       help="record repro.obs metrics (phase spans, "
                            "build counters) and write the JSON here")
    index.set_defaults(func=_cmd_index)

    serve = sub.add_parser(
        "serve", help="run the TCP reachability query service")
    serve.add_argument("graph", nargs="?", default=None)
    serve.add_argument("--index", default=None,
                       help="serve a persisted index (read-only) "
                            "instead of building from a graph")
    serve.add_argument("--method", default=None,
                       choices=method_names,
                       help="deprecated spelling of --engine chain-X")
    serve.add_argument("--engine", default=None, choices=engine_names,
                       help="serve this registered engine (default: "
                            "chain-stratified; writes need a DAG)")
    serve.add_argument("--observers", default="off",
                       choices=("on", "off"),
                       help="serve behind the O(1)-answer observer "
                            "stack (docs/OBSERVERS.md); rebuilt on "
                            "every snapshot swap")
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument("--port", type=int, default=7431,
                       help="TCP port (0 picks a free one)")
    serve.add_argument("--max-batch", type=int, default=128,
                       help="largest coalesced query batch")
    serve.add_argument("--max-wait-us", type=int, default=500,
                       help="micro-batch coalescing window in µs")
    serve.add_argument("--max-pending", type=int, default=1024,
                       help="query queue bound before 'overloaded'")
    serve.add_argument("--cache-size", type=int, default=4096,
                       help="LRU result-cache capacity (0 disables)")
    serve.add_argument("--request-timeout", type=float, default=10.0,
                       help="per-request timeout in seconds")
    serve.add_argument("--swap-after", type=int, default=64,
                       metavar="N",
                       help="auto rebuild-and-swap after N writes")
    serve.add_argument("--workers", type=int, default=0, metavar="N",
                       help="serve through N worker processes attached "
                            "to a shared-memory snapshot (0 = single "
                            "process; needs a chain engine)")
    serve.add_argument("--ready-file", default=None, metavar="FILE",
                       help="write a JSON line {host, port, epoch, "
                            "workers, pids} to FILE once every "
                            "listener is accepting (for scripts "
                            "supervising the server)")
    serve.add_argument("--metrics-port", type=int, default=None,
                       metavar="PORT",
                       help="serve Prometheus text exposition over "
                            "HTTP on PORT (0 picks a free one); also "
                            "enables the OBS registry")
    serve.add_argument("--log", default=None, metavar="FILE",
                       help="append structured JSON-lines events "
                            "(swaps, drain, overload, slow queries) "
                            "to FILE ('-' for stderr)")
    serve.add_argument("--slow-query-ms", type=float, default=None,
                       metavar="MS",
                       help="log a slow_query record (with the trace "
                            "breakdown) for requests slower than MS "
                            "milliseconds (needs --log)")
    serve.add_argument("--capture", default=None, metavar="FILE",
                       help="journal sampled requests (queries and "
                            "writes) to FILE as NDJSON on shutdown, "
                            "replayable with repro.bench.replay; "
                            "under --workers each worker writes "
                            "FILE.worker<id>")
    serve.add_argument("--capture-capacity", type=int, default=65536,
                       metavar="N",
                       help="capture ring bound: keep the most recent "
                            "N sampled requests, counting drops")
    serve.add_argument("--capture-sample", type=float, default=1.0,
                       metavar="P",
                       help="capture sampling probability in [0, 1] "
                            "(deterministic per seed)")
    serve.add_argument("--slo", action="append", default=None,
                       metavar="SPEC",
                       help="track a per-class latency/availability "
                            "objective, e.g. 'positive p99 < 2ms' or "
                            "'availability >= 99.9%%' (repeatable; "
                            "read back via the slo verb, the metrics "
                            "listener and 'repro slo-report')")
    serve.set_defaults(func=_cmd_serve)

    slo_report = sub.add_parser(
        "slo-report",
        help="objective compliance, burn rates and breaches of a "
             "running server (needs serve --slo)")
    slo_report.add_argument("--remote", required=True,
                            metavar="HOST:PORT",
                            help="address of the 'repro serve' "
                                 "instance to interrogate")
    slo_report.add_argument("--json", action="store_true",
                            help="print the raw report as JSON "
                                 "instead of the table")
    slo_report.set_defaults(func=_cmd_slo_report)

    for what, operands, blurb in (
            ("edge", ("source", "target"),
             "delete one edge (remotely, or rewriting an edge list)"),
            ("node", ("node",),
             "delete a node and its incident edges")):
        remove = sub.add_parser(f"remove-{what}", help=blurb)
        remove.add_argument("graph", nargs="?", default=None,
                            help="edge-list file to rewrite in place "
                                 "(omit with --remote)")
        for operand in operands:
            remove.add_argument(operand)
        remove.add_argument("--remote", default=None,
                            metavar="HOST:PORT",
                            help="send the removal to a running "
                                 "'repro serve' instance (needs a "
                                 "writable manager; dynamic-tol "
                                 "repairs labels in place)")
        remove.add_argument("--out", default=None, metavar="FILE",
                            help="write the edited edge list here "
                                 "instead of back over the input")
        remove.add_argument("--str-labels", dest="int_labels",
                            action="store_false",
                            help="treat node labels as strings")
        remove.set_defaults(func=_cmd_remove, what=what)

    dot = sub.add_parser("dot", help="Graphviz export")
    dot.add_argument("graph")
    group = dot.add_mutually_exclusive_group()
    group.add_argument("--chains", action="store_true",
                       help="colour the minimum chain cover")
    group.add_argument("--strata", action="store_true",
                       help="rank nodes by stratification level")
    dot.add_argument("--out", default=None)
    dot.set_defaults(func=_cmd_dot)

    generate = sub.add_parser("generate",
                              help="emit a benchmark-family graph")
    generate.add_argument("family", choices=sorted(_GENERATORS))
    generate.add_argument("size", type=int,
                          help="node count (dsg: root count)")
    generate.add_argument("extra", type=int,
                          help="edges (sparse, scale) / extra edges "
                               "(dsrg) / levels (dsg) / density%% "
                               "(dense) / citations per paper "
                               "(citation)")
    generate.add_argument("--seed", type=int, default=0)
    generate.add_argument("--out", default=None)
    generate.set_defaults(func=_cmd_generate)
    return parser


def main(argv: list[str] | None = None) -> int:
    """Entry point: dispatch to the chosen subcommand."""
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
