"""Online graph traversal — the no-index reference point.

The paper's complexity table lists plain graph traversal with O(e)
query time, zero labeling time and zero space.  Queries run a BFS from
the source and stop as soon as the target is seen.
"""

from __future__ import annotations

from repro.baselines.interface import ReachabilityIndex
from repro.graph.digraph import DiGraph

__all__ = ["TraversalIndex"]


class TraversalIndex(ReachabilityIndex):
    """BFS-per-query reachability; the only state is the graph itself."""

    name = "traversal"

    def __init__(self, graph: DiGraph) -> None:
        self._graph = graph

    @classmethod
    def build(cls, graph: DiGraph) -> "TraversalIndex":
        """No precomputation — just remember the graph."""
        return cls(graph)

    def is_reachable(self, source, target) -> bool:
        """BFS from ``source``, stopping at ``target`` (reflexive)."""
        graph = self._graph
        src = graph.node_id(source)
        dst = graph.node_id(target)
        if src == dst:
            return True
        seen = bytearray(graph.num_nodes)
        seen[src] = 1
        frontier = [src]
        while frontier:
            next_frontier: list[int] = []
            for v in frontier:
                for w in graph.successor_ids(v):
                    if w == dst:
                        return True
                    if not seen[w]:
                        seen[w] = 1
                        next_frontier.append(w)
            frontier = next_frontier
        return False

    def size_words(self) -> int:
        """Zero — there is no index."""
        return 0
