"""Warren's boolean-matrix transitive closure (the paper's "MM").

Warren's 1975 modification of Warshall's algorithm computes the
transitive closure of a boolean adjacency matrix in place with two
triangular passes: the first uses only entries below the diagonal, the
second only entries above.  Rows are stored as Python integers used as
bit vectors, mirroring the paper's remark that "a boolean matrix is
simply stored as bit strings" — whole-row ORs are single bignum
operations.

Space is the full n²-bit matrix (``⌈n²/16⌉`` 16-bit words), queries are
a single bit test — the O(1) fastest-query / largest-space corner of
the evaluation.
"""

from __future__ import annotations

from repro.baselines.interface import ReachabilityIndex
from repro.graph.digraph import DiGraph

__all__ = ["WarrenIndex", "warren_closure_rows"]


def warren_closure_rows(graph: DiGraph) -> list[int]:
    """Transitive-closure rows (bit ``w`` of ``rows[v]`` ⇔ ``v ⇝ w``).

    The in-place two-pass structure follows Warren's paper: within a
    row, newly OR-ed in bits of the active triangle are themselves
    processed before the row is done.
    """
    n = graph.num_nodes
    rows = [0] * n
    for v in range(n):
        acc = 0
        for w in graph.successor_ids(v):
            acc |= 1 << w
        rows[v] = acc

    def half_pass(mask_of) -> None:
        for i in range(n):
            row = rows[i]
            mask = mask_of(i)
            processed = 0
            while True:
                pending = row & mask & ~processed
                if not pending:
                    break
                j = (pending & -pending).bit_length() - 1
                row |= rows[j]
                processed |= 1 << j
            rows[i] = row

    # Pass 1: j < i (below the diagonal); pass 2: j > i (above).
    half_pass(lambda i: (1 << i) - 1)
    half_pass(lambda i: ~((1 << (i + 1)) - 1))
    return rows


class WarrenIndex(ReachabilityIndex):
    """Materialised transitive closure as a bit matrix."""

    name = "MM"

    def __init__(self, graph: DiGraph, rows: list[int]) -> None:
        self._graph = graph
        self._rows = rows

    @classmethod
    def build(cls, graph: DiGraph) -> "WarrenIndex":
        """Run Warren's two triangular passes over the bit matrix."""
        return cls(graph, warren_closure_rows(graph))

    def is_reachable(self, source, target) -> bool:
        """One bit test in the materialised closure (reflexive)."""
        src = self._graph.node_id(source)
        dst = self._graph.node_id(target)
        if src == dst:
            return True
        return (self._rows[src] >> dst) & 1 == 1

    def size_words(self) -> int:
        """The full n^2-bit matrix in 16-bit words."""
        n = len(self._rows)
        return (n * n + 15) // 16
