"""Non-tree links and their transitive closure.

With ``t`` non-tree edges ("links"), link ``i`` *directly feeds* link
``j`` when the source of ``j`` lies in the tree subtree of the target
of ``i`` — a tree-only descent connects them.  Any path that uses
non-tree edges decomposes into tree descents between links, so the
reflexive-transitive closure of this feeds-relation (a ``t × t`` bit
matrix, the paper's transitive link counting) plus the interval cover
answers every query.

The feeds-relation is acyclic on a DAG (link sources strictly advance
in topological order), so the closure is computed in one reverse-topo
pass.  The inner aggregation — "OR the closure rows of every link whose
source lies in a subtree" — is a range-OR over links sorted by source
preorder, served by a segment tree of bit rows: O(t log t) big-int ORs
instead of the O(t³) dense product.
"""

from __future__ import annotations

from bisect import bisect_left
from dataclasses import dataclass

from repro.baselines.dual.tree_cover import TreeCover
from repro.graph.digraph import DiGraph
from repro.graph.topology import topological_order_ids

__all__ = ["LinkSet", "build_link_set"]


class _OrSegmentTree:
    """Point-assign / range-OR segment tree over big-int values."""

    def __init__(self, size: int) -> None:
        self._size = max(1, size)
        self._data = [0] * (2 * self._size)

    def assign(self, position: int, value: int) -> None:
        """Set the value at ``position`` and refresh ancestor ORs."""
        index = position + self._size
        self._data[index] = value
        index //= 2
        while index:
            self._data[index] = (self._data[2 * index]
                                 | self._data[2 * index + 1])
            index //= 2

    def query(self, lo: int, hi: int) -> int:
        """OR of values at positions [lo, hi)."""
        result = 0
        lo += self._size
        hi += self._size
        while lo < hi:
            if lo & 1:
                result |= self._data[lo]
                lo += 1
            if hi & 1:
                hi -= 1
                result |= self._data[hi]
            lo //= 2
            hi //= 2
        return result


@dataclass
class LinkSet:
    """Non-tree links in source-preorder order, plus their closure.

    ``sources``/``targets`` are dense node ids; ``closure[i]`` is a
    ``t``-bit row — bit ``j`` set iff link ``i`` (reflexively) reaches
    link ``j`` through tree descents and links.
    """

    sources: list[int]
    targets: list[int]
    source_starts: list[int]   # start[sources[i]], ascending
    closure: list[int]

    @property
    def count(self) -> int:
        """t — the number of non-tree links."""
        return len(self.sources)

    def source_range(self, node: int, cover: TreeCover) -> tuple[int, int]:
        """Links whose source lies in ``node``'s subtree — the paper's
        ``[x_v, y_v)`` row range."""
        lo = bisect_left(self.source_starts, cover.start[node])
        hi = bisect_left(self.source_starts, cover.end[node])
        return lo, hi


def build_link_set(graph: DiGraph, cover: TreeCover) -> LinkSet:
    """Collect non-tree links and compute their closure."""
    links = cover.non_tree_edges(graph)
    links.sort(key=lambda edge: cover.start[edge[0]])
    sources = [edge[0] for edge in links]
    targets = [edge[1] for edge in links]
    source_starts = [cover.start[v] for v in sources]
    t = len(links)
    closure = [0] * t
    if t:
        position_of = [0] * graph.num_nodes
        for position, node in enumerate(topological_order_ids(graph)):
            position_of[node] = position
        tree = _OrSegmentTree(t)
        # A link's direct successors all have strictly later topological
        # source positions, so processing sources latest-first means
        # every successor row is already in the tree when queried.
        order = sorted(range(t), key=lambda i: position_of[sources[i]],
                       reverse=True)
        for i in order:
            target = targets[i]
            lo = bisect_left(source_starts, cover.start[target])
            hi = bisect_left(source_starts, cover.end[target])
            row = (1 << i) | tree.query(lo, hi)
            closure[i] = row
            tree.assign(i, row)
    return LinkSet(sources=sources, targets=targets,
                   source_starts=source_starts, closure=closure)
