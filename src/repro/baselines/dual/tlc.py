"""The TLC ("transitive link count") structure of dual labeling.

For the O(1)-query Dual-I scheme the paper keeps a matrix ``N`` whose
entry ``N(x, z)`` counts, among the links with row index ``≥ x``, those
that deliver into the subtree-ancestor link set identified by column
``z``; a query then tests ``N(x_u, z_v) − N(y_u, z_v) > 0`` for the
source's row range ``[x_u, y_u)``.

Dual-II — the variant the paper actually benchmarks — trades the dense
matrix for a search tree.  We store, per distinct column, the *sorted
positions of its 1-rows*; the count difference test becomes "does any
1-row fall in ``[x_u, y_u)``", answered with one binary search: the
paper's O(log t) query.  Space collapses from ``t²`` words to the
number of (column, 1-row) incidences, which is the practical saving the
search-tree variant was introduced for — and which still explodes on
non-sparse graphs, reproducing Tables 3–5.
"""

from __future__ import annotations

from bisect import bisect_left
from dataclasses import dataclass

from repro.baselines.dual.links import LinkSet
from repro.baselines.dual.tree_cover import TreeCover

__all__ = ["TLCSearchTree", "TLCMatrix", "build_tlc"]


@dataclass
class TLCSearchTree:
    """Compressed TLC: per distinct column, the sorted 1-row positions.

    ``column_of[v]`` maps a node to its column id (-1 when no link can
    deliver into ``v``); ``ones[z]`` lists, ascending, the row indexes
    ``i`` such that link ``i`` reaches *some* link whose target is a
    tree-ancestor-or-self of any node with column ``z``.
    """

    column_of: list[int]
    ones: list[tuple[int, ...]]

    def hit(self, row_lo: int, row_hi: int, node: int) -> bool:
        """True iff some 1-row of ``node``'s column lies in the range."""
        if row_lo >= row_hi:
            return False
        column = self.column_of[node]
        if column < 0:
            return False
        positions = self.ones[column]
        index = bisect_left(positions, row_lo)
        return index < len(positions) and positions[index] < row_hi

    def size_words(self) -> int:
        """One word per node (column id) + one per stored 1-position."""
        return (len(self.column_of)
                + sum(len(positions) for positions in self.ones))

    def dense_matrix_words(self, num_links: int) -> int:
        """Size of the *uncompressed* Dual-I suffix-count matrix.

        The paper's implementation materialises (a search tree over)
        the full ``N`` matrix; its footprint — one counter per
        (row-boundary, column) cell — is what blows up on non-sparse
        graphs in Tables 3–5.  Reported alongside the compressed size
        so the paper's shape can be compared directly.
        """
        return len(self.ones) * (num_links + 1)


@dataclass
class TLCMatrix:
    """Dense Dual-I TLC: per column, the full suffix-count array.

    ``counts[z][x]`` is the paper's ``N(x, z)`` — how many links with
    row index ``≥ x`` deliver into column ``z``'s ancestor set.  The
    query ``N(x_u, z_v) − N(y_u, z_v) > 0`` is two array reads: O(1),
    at the price of a ``(t+1) × #columns`` matrix — the space/time
    trade the paper draws between Dual-I and Dual-II.
    """

    column_of: list[int]
    counts: list  # one array('l') of length t+1 per column

    @classmethod
    def from_search_tree(cls, tree: TLCSearchTree,
                         num_links: int) -> "TLCMatrix":
        """Expand a compressed TLC into full suffix-count arrays."""
        from array import array

        counts = []
        for positions in tree.ones:
            suffix = array("l", bytes(8 * (num_links + 1)))
            total = 0
            index = len(positions) - 1
            for x in range(num_links, -1, -1):
                while index >= 0 and positions[index] >= x:
                    total += 1
                    index -= 1
                suffix[x] = total
            counts.append(suffix)
        return cls(column_of=list(tree.column_of), counts=counts)

    def hit(self, row_lo: int, row_hi: int, node: int) -> bool:
        """O(1) range test: ``N(row_lo, z) - N(row_hi, z) > 0``."""
        if row_lo >= row_hi:
            return False
        column = self.column_of[node]
        if column < 0:
            return False
        suffix = self.counts[column]
        return suffix[row_lo] - suffix[row_hi] > 0

    def size_words(self) -> int:
        """Dense-matrix size: one word per counter plus column ids."""
        return (len(self.column_of)
                + sum(len(suffix) for suffix in self.counts))


def build_tlc(cover: TreeCover, links: LinkSet,
              num_nodes: int) -> TLCSearchTree:
    """Assign column ids and materialise the per-column 1-rows.

    A node's *in-link set* ``g_v`` — the links whose target is a
    tree-ancestor-or-self of ``v`` — grows monotonically down each tree
    path, so it is computed top-down (``g_child = g_parent | own``) and
    deduplicated into columns.
    """
    t = links.count
    column_of = [-1] * num_nodes
    if t == 0:
        return TLCSearchTree(column_of=column_of, ones=[])

    own_mask = [0] * num_nodes
    for j, target in enumerate(links.targets):
        own_mask[target] |= 1 << j

    column_ids: dict[int, int] = {}
    g_of: list[int] = [0] * num_nodes
    order = sorted(range(num_nodes), key=lambda v: cover.start[v])
    for v in order:
        parent = cover.parent[v]
        g = own_mask[v] | (g_of[parent] if parent != -1 else 0)
        g_of[v] = g
        if g:
            column = column_ids.setdefault(g, len(column_ids))
            column_of[v] = column

    columns = [0] * len(column_ids)
    for g, column in column_ids.items():
        columns[column] = g
    ones: list[tuple[int, ...]] = []
    for g in columns:
        positions = [i for i, row in enumerate(links.closure) if row & g]
        ones.append(tuple(positions))
    return TLCSearchTree(column_of=column_of, ones=ones)
