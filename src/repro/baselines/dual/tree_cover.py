"""Spanning-tree interval cover for dual labeling.

Every node gets an interval ``[start, end)`` over preorder numbers of a
DFS spanning forest; ``v`` lies in ``u``'s tree subtree iff
``start[u] <= start[v] < end[u]`` — the paper's ``a_u ∈ [a_v, b_v)``
test.  Edges not used by the forest are the *non-tree links* the TLC
machinery indexes.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.graph.digraph import DiGraph
from repro.graph.topology import root_ids

__all__ = ["TreeCover", "build_tree_cover"]


@dataclass
class TreeCover:
    """DFS spanning forest with subtree intervals."""

    parent: list[int]      # tree parent per dense id (-1 at forest roots)
    start: list[int]       # preorder number a_v
    end: list[int]         # b_v — one past the subtree's max preorder

    def in_subtree(self, ancestor: int, node: int) -> bool:
        """True iff ``node`` lies in ``ancestor``'s tree subtree."""
        return self.start[ancestor] <= self.start[node] < self.end[ancestor]

    def non_tree_edges(self, graph: DiGraph) -> list[tuple[int, int]]:
        """Edges (by dense ids) that the spanning forest does not use."""
        links: list[tuple[int, int]] = []
        for v in range(graph.num_nodes):
            for w in graph.successor_ids(v):
                if self.parent[w] != v:
                    links.append((v, w))
        return links

    def children_lists(self, num_nodes: int) -> list[list[int]]:
        """Tree children per dense id (derived from ``parent``)."""
        children: list[list[int]] = [[] for _ in range(num_nodes)]
        for v, p in enumerate(self.parent):
            if p != -1:
                children[p].append(v)
        return children


def build_tree_cover(graph: DiGraph) -> TreeCover:
    """Grow a DFS spanning forest and assign subtree intervals."""
    n = graph.num_nodes
    parent = [-1] * n
    start = [-1] * n
    end = [0] * n
    counter = 0
    for root in root_ids(graph) + list(range(n)):
        if start[root] != -1:
            continue
        start[root] = counter
        counter += 1
        stack: list[tuple[int, int]] = [(root, 0)]
        while stack:
            v, edge_index = stack[-1]
            succ = graph.successor_ids(v)
            advanced = False
            while edge_index < len(succ):
                w = succ[edge_index]
                edge_index += 1
                if start[w] == -1:
                    stack[-1] = (v, edge_index)
                    parent[w] = v
                    start[w] = counter
                    counter += 1
                    stack.append((w, 0))
                    advanced = True
                    break
            if not advanced:
                end[v] = counter
                stack.pop()
    return TreeCover(parent=parent, start=start, end=end)
