"""Dual labeling (Wang et al., ICDE 2006) — the paper's "Dual-II".

Each node carries a *dual label*: the spanning-tree interval
``(start, end)`` and the TLC coordinates ``(x, y, z)`` — the row range
of links leaving its subtree plus its in-link column id.  A query
first tries the tree interval (O(1)); otherwise it asks the TLC search
tree whether any link leaving the source's subtree transitively
delivers into the target's ancestor set (O(log t)).

Space is ``O(n + incidences)`` where the incidence count behaves like
``t²`` as the graph stops being sparse — exactly the blow-up the
paper's Tables 3–5 demonstrate against the chain-cover index.
"""

from __future__ import annotations

from repro.baselines.dual.links import LinkSet, build_link_set
from repro.baselines.dual.tlc import TLCMatrix, TLCSearchTree, build_tlc
from repro.baselines.dual.tree_cover import TreeCover, build_tree_cover
from repro.baselines.interface import ReachabilityIndex
from repro.graph.digraph import DiGraph

__all__ = ["DualLabelingIndex"]


class DualLabelingIndex(ReachabilityIndex):
    """Tree-interval + TLC-search-tree reachability index."""

    name = "Dual-II"

    def __init__(self, graph: DiGraph, cover: TreeCover, links: LinkSet,
                 tlc: TLCSearchTree | TLCMatrix, row_lo: list[int],
                 row_hi: list[int], variant: str) -> None:
        self._graph = graph
        self._cover = cover
        self._links = links
        self._tlc = tlc
        self._row_lo = row_lo
        self._row_hi = row_hi
        self._variant = variant

    @classmethod
    def build(cls, graph: DiGraph,
              variant: str = "search-tree") -> "DualLabelingIndex":
        """Build the index.

        ``variant="search-tree"`` is Dual-II (compressed TLC, O(log t)
        queries — the scheme the paper benchmarks); ``variant="dense"``
        is Dual-I (the full suffix-count matrix, O(1) queries, ``t²``
        -flavoured space).
        """
        if variant not in ("search-tree", "dense"):
            raise ValueError(f"unknown dual-labeling variant {variant!r}")
        cover = build_tree_cover(graph)
        links = build_link_set(graph, cover)
        tlc: TLCSearchTree | TLCMatrix = build_tlc(cover, links,
                                                   graph.num_nodes)
        if variant == "dense":
            tlc = TLCMatrix.from_search_tree(tlc, links.count)
        row_lo = [0] * graph.num_nodes
        row_hi = [0] * graph.num_nodes
        for v in range(graph.num_nodes):
            row_lo[v], row_hi[v] = links.source_range(v, cover)
        return cls(graph, cover, links, tlc, row_lo, row_hi, variant)

    @property
    def variant(self) -> str:
        """The TLC variant in use: "search-tree" or "dense"."""
        return self._variant

    @property
    def num_links(self) -> int:
        """t — the number of non-tree edges."""
        return self._links.count

    def is_reachable(self, source, target) -> bool:
        """Reflexive reachability on node objects."""
        src = self._graph.node_id(source)
        dst = self._graph.node_id(target)
        if self._cover.in_subtree(src, dst):
            return True
        return self._tlc.hit(self._row_lo[src], self._row_hi[src], dst)

    def size_words(self) -> int:
        """Label + TLC size in 16-bit words."""
        # Five label words per node — (start, end) and (x, y, z) — plus
        # the TLC search tree (which already counts z's column storage).
        n = self._graph.num_nodes
        return 4 * n + self._tlc.size_words()

    def dense_size_words(self) -> int:
        """Footprint with the paper's uncompressed Dual-I TLC matrix."""
        n = self._graph.num_nodes
        if isinstance(self._tlc, TLCMatrix):
            return self.size_words()
        return 4 * n + n + self._tlc.dense_matrix_words(self._links.count)
