"""Dual labeling (Wang et al.) — tree cover, link closure, TLC."""

from repro.baselines.dual.index import DualLabelingIndex
from repro.baselines.dual.links import LinkSet, build_link_set
from repro.baselines.dual.tlc import TLCSearchTree, build_tlc
from repro.baselines.dual.tree_cover import TreeCover, build_tree_cover

__all__ = [
    "DualLabelingIndex",
    "TreeCover",
    "build_tree_cover",
    "LinkSet",
    "build_link_set",
    "TLCSearchTree",
    "build_tlc",
]
