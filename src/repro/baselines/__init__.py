"""The five comparison methods from the paper's evaluation, plus traversal."""

from repro.baselines.dual import DualLabelingIndex
from repro.baselines.interface import ReachabilityIndex
from repro.baselines.jagadish import JagadishIndex, jagadish_chain_cover
from repro.baselines.traversal import TraversalIndex
from repro.baselines.tree_encoding import TreeEncodingIndex
from repro.baselines.two_hop import TwoHopIndex
from repro.baselines.warren import WarrenIndex

__all__ = [
    "ReachabilityIndex",
    "TraversalIndex",
    "WarrenIndex",
    "JagadishIndex",
    "jagadish_chain_cover",
    "TreeEncodingIndex",
    "TwoHopIndex",
    "DualLabelingIndex",
]
