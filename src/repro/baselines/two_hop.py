"""2-hop labeling of Cohen, Halperin, Kaplan and Zwick (the paper's "2-hop").

Every node gets two label sets: ``Cout(u)`` — *centers* reachable from
``u`` — and ``Cin(v)`` — centers that reach ``v``; then ``u ⇝ v`` iff
``Cout(u) ∩ Cin(v) ≠ ∅``.  Finding a minimum 2-hop cover is NP-hard, so
the standard greedy set-cover heuristic is used: repeatedly pick the
center ``w`` whose *density* — newly covered reachable pairs
``(u, v)`` with ``u ⇝ w ⇝ v`` per label entry added — is maximal.

The implementation keeps the uncovered-pair sets as bitset rows and
uses *lazy* greedy evaluation (coverage benefit is submodular, so a
stale priority is always an upper bound), which is the only reason the
method terminates in sensible time at benchmark scale.  Even so, 2-hop
construction is by far the slowest of the evaluated methods — the paper
reports 6+ hours on Group I and drops the method from Groups II/III; we
mirror that by benchmarking it on Group I only.
"""

from __future__ import annotations

import heapq

from repro.baselines.interface import ReachabilityIndex
from repro.graph.bits import iter_bits
from repro.graph.closure import ancestors_bitsets, descendants_bitsets
from repro.graph.digraph import DiGraph

__all__ = ["TwoHopIndex"]


class TwoHopIndex(ReachabilityIndex):
    """Greedy-density 2-hop cover."""

    name = "2-hop"

    def __init__(self, graph: DiGraph, cout: list[tuple[int, ...]],
                 cin: list[tuple[int, ...]]) -> None:
        self._graph = graph
        self._cout = cout
        self._cin = cin

    @classmethod
    def build(cls, graph: DiGraph, lazy: bool = True) -> "TwoHopIndex":
        """Build the cover.

        ``lazy=True`` (default) uses lazy greedy evaluation — same
        greedy solution, orders of magnitude faster.  ``lazy=False``
        re-scores every candidate each round, which is what the paper's
        2-hop implementation effectively did and why its Table-1 build
        time dwarfs every other method; benchmarks use this mode to
        reproduce that shape.
        """
        n = graph.num_nodes
        if n == 0:
            return cls(graph, [], [])
        descendants = descendants_bitsets(graph, reflexive=True)
        ancestors = ancestors_bitsets(graph, reflexive=True)
        uncovered = [descendants[u] & ~(1 << u) for u in range(n)]
        remaining = sum(row.bit_count() for row in uncovered)
        cout: list[list[int]] = [[] for _ in range(n)]
        cin: list[list[int]] = [[] for _ in range(n)]

        def benefit(center: int) -> int:
            desc = descendants[center]
            return sum((uncovered[u] & desc).bit_count()
                       for u in iter_bits(ancestors[center]))

        def cost(center: int) -> int:
            return (ancestors[center].bit_count()
                    + descendants[center].bit_count())

        heap: list[tuple[float, int]] = []
        if lazy:
            for w in range(n):
                gain = benefit(w)
                if gain:
                    heapq.heappush(heap, (-gain / cost(w), w))

        while remaining > 0:
            if lazy:
                if not heap:  # pragma: no cover - defensive
                    raise AssertionError(
                        "2-hop greedy ran out of centers")
                _, center = heapq.heappop(heap)
                gain = benefit(center)
                if gain == 0:
                    continue
                density = gain / cost(center)
                if heap and density < -heap[0][0]:
                    # Stale priority: benefits only shrink, so re-queue
                    # with the fresh value and take the better top.
                    heapq.heappush(heap, (-density, center))
                    continue
            else:
                # Naive greedy: re-score every candidate each round.
                center = -1
                best_density = 0.0
                for w in range(n):
                    gain = benefit(w)
                    if gain:
                        density = gain / cost(w)
                        if density > best_density:
                            best_density = density
                            center = w
                if center < 0:  # pragma: no cover - defensive
                    raise AssertionError(
                        "2-hop greedy ran out of centers")
            desc = descendants[center]
            for u in iter_bits(ancestors[center]):
                newly = uncovered[u] & desc
                if newly:
                    remaining -= newly.bit_count()
                    uncovered[u] &= ~desc
                cout[u].append(center)
            for v in iter_bits(desc):
                cin[v].append(center)

        return cls(graph,
                   [tuple(sorted(labels)) for labels in cout],
                   [tuple(sorted(labels)) for labels in cin])

    def is_reachable(self, source, target) -> bool:
        """Reflexive reachability: sorted-merge intersect Cout/Cin."""
        src = self._graph.node_id(source)
        dst = self._graph.node_id(target)
        if src == dst:
            return True
        out_labels = self._cout[src]
        in_labels = self._cin[dst]
        i = j = 0
        while i < len(out_labels) and j < len(in_labels):
            a, b = out_labels[i], in_labels[j]
            if a == b:
                return True
            if a < b:
                i += 1
            else:
                j += 1
        return False

    def size_words(self) -> int:
        """Total label entries across Cin and Cout."""
        return (sum(len(labels) for labels in self._cout)
                + sum(len(labels) for labels in self._cin))

    def label_size(self, node) -> tuple[int, int]:
        """(|Cout|, |Cin|) for one node — used by tests and reports."""
        node_id = self._graph.node_id(node)
        return len(self._cout[node_id]), len(self._cin[node_id])
