"""Jagadish's DAG-decomposition heuristic (the paper's "DD").

Jagadish (TODS 1990) also compresses a transitive closure with disjoint
chains, but finding a *minimum* chain set there costs O(n³), so his
practical variant — the one the paper benchmarks — first splits the DAG
into node-disjoint **paths** (following real edges) and then **stitches**
path tails to path heads that are reachable in the closure.  The result
is a valid chain decomposition whose chain count is "normally much
larger than the minimum number of chains" (Section I), which inflates
both the label size and the query time; that inflation is exactly what
Tables 1/3/4/5 measure.

The labels built on top of the decomposition are the same chain labels
as ours (:mod:`repro.core.labeling`) — the methods differ only in how
many chains they produce, matching the paper's framing.
"""

from __future__ import annotations

from repro.baselines.interface import ReachabilityIndex
from repro.core.chains import ChainDecomposition
from repro.core.labeling import ChainLabeling, build_labeling
from repro.graph.digraph import DiGraph
from repro.graph.topology import topological_order_ids

__all__ = ["jagadish_chain_cover", "JagadishIndex"]


def _greedy_disjoint_paths(graph: DiGraph) -> list[list[int]]:
    """Cover the DAG with node-disjoint edge paths, greedily.

    Nodes are taken in topological order; each uncovered node starts a
    path that keeps following the first uncovered child.
    """
    order = topological_order_ids(graph)
    covered = [False] * graph.num_nodes
    paths: list[list[int]] = []
    for start in order:
        if covered[start]:
            continue
        path = [start]
        covered[start] = True
        current = start
        extended = True
        while extended:
            extended = False
            for child in graph.successor_ids(current):
                if not covered[child]:
                    covered[child] = True
                    path.append(child)
                    current = child
                    extended = True
                    break
        paths.append(path)
    return paths


def _stitch_paths(graph: DiGraph,
                  paths: list[list[int]]) -> list[list[int]]:
    """Greedily stitch paths whose tail reaches another path's head.

    Paths are consumed first-fit: each surviving chain repeatedly runs
    a BFS from its current tail and appends the first not-yet-consumed
    path head it reaches.  The per-extension BFS is what makes DD's
    construction "very costly" (the paper's words), and the greedy
    first-fit commitment is why its chain count stays above the width —
    both effects the evaluation section measures.
    """
    consumed = [False] * len(paths)
    head_path_of: dict[int, int] = {}
    for index, path in enumerate(paths):
        head_path_of[path[0]] = index
    chains: list[list[int]] = []
    for index, path in enumerate(paths):
        if consumed[index]:
            continue
        consumed[index] = True
        chain = list(path)
        extended = True
        while extended:
            extended = False
            seen = {chain[-1]}
            frontier = [chain[-1]]
            while frontier and not extended:
                next_frontier: list[int] = []
                for v in frontier:
                    for w in graph.successor_ids(v):
                        if w in seen:
                            continue
                        seen.add(w)
                        next_frontier.append(w)
                        other = head_path_of.get(w)
                        if other is not None and not consumed[other]:
                            consumed[other] = True
                            chain.extend(paths[other])
                            extended = True
                            break
                    if extended:
                        break
                frontier = next_frontier
        chains.append(chain)
    return chains


def jagadish_chain_cover(graph: DiGraph) -> ChainDecomposition:
    """The DD heuristic decomposition: disjoint paths, then stitching."""
    if graph.num_nodes == 0:
        return ChainDecomposition(chains=[])
    paths = _greedy_disjoint_paths(graph)
    chains = _stitch_paths(graph, paths)
    return ChainDecomposition(chains=chains)


class JagadishIndex(ReachabilityIndex):
    """Chain labels over the DD heuristic decomposition."""

    name = "DD"

    def __init__(self, graph: DiGraph, labeling: ChainLabeling) -> None:
        self._graph = graph
        self._labeling = labeling

    @classmethod
    def build(cls, graph: DiGraph) -> "JagadishIndex":
        """Decompose with the DD heuristic and label the chains."""
        decomposition = jagadish_chain_cover(graph)
        return cls(graph, build_labeling(graph, decomposition))

    @property
    def num_chains(self) -> int:
        """Chains the heuristic produced (>= the DAG's width)."""
        return self._labeling.num_chains

    def is_reachable(self, source, target) -> bool:
        """Reflexive reachability on node objects, O(log chains)."""
        return self._labeling.is_reachable_ids(self._graph.node_id(source),
                                               self._graph.node_id(target))

    def size_words(self) -> int:
        """Label size in 16-bit words."""
        return self._labeling.size_words()
