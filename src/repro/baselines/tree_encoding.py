"""Chen's tree encoding (the paper's "TE").

Two steps (Section I's review of [6]):

1. A spanning *branching* is grown depth-first; every tree node gets an
   interval ``[pre, end]`` over preorder numbers that covers exactly its
   tree subtree (equivalent to the (preorder, postorder) pair test).
2. A *pair sequence* per node is produced bottom-up (reverse topological
   order): a node merges its own interval with its children's
   sequences, discarding dominated pairs.  The kept pairs are strictly
   increasing in both components, so a single binary search answers a
   query: ``u ⇝ v`` iff some pair of ``u`` contains ``pre(v)``.

The sequence length is bounded by the number of leaves β of the
branching, giving O(β·n) space and O(log β) query time — β is at least
the DAG's width, which is why the paper's method wins on non-sparse
graphs while TE stays competitive on sparse ones (Table 1 vs Table 3).
"""

from __future__ import annotations

from bisect import bisect_right

from repro.baselines.interface import ReachabilityIndex
from repro.graph.digraph import DiGraph
from repro.graph.topology import root_ids, topological_order_ids

__all__ = ["TreeEncodingIndex", "spanning_branching_intervals",
           "merge_pair_sequences"]


def spanning_branching_intervals(graph: DiGraph) -> tuple[list[int],
                                                          list[int]]:
    """DFS spanning forest intervals: ``(pre, end)`` per dense id.

    ``pre[v]`` is the preorder number, ``end[v]`` the largest preorder
    number in ``v``'s tree subtree; ``u`` is a tree descendant of ``v``
    (or ``v`` itself) iff ``pre[v] <= pre[u] <= end[v]``.
    """
    n = graph.num_nodes
    pre = [-1] * n
    end = [-1] * n
    counter = 0
    for root in root_ids(graph) + list(range(n)):
        if pre[root] != -1:
            continue
        stack: list[tuple[int, int]] = [(root, 0)]
        pre[root] = counter
        counter += 1
        while stack:
            v, edge_index = stack[-1]
            succ = graph.successor_ids(v)
            advanced = False
            while edge_index < len(succ):
                w = succ[edge_index]
                edge_index += 1
                if pre[w] == -1:
                    stack[-1] = (v, edge_index)
                    pre[w] = counter
                    counter += 1
                    stack.append((w, 0))
                    advanced = True
                    break
            if not advanced:
                end[v] = counter - 1
                stack.pop()
    return pre, end


def merge_pair_sequences(candidates: list[tuple[int, int]]
                         ) -> list[tuple[int, int]]:
    """Drop dominated pairs; result strictly increasing in both parts.

    ``(p, q)`` dominates ``(p', q')`` when ``p <= p'`` and ``q >= q'``.
    """
    if not candidates:
        return []
    candidates.sort(key=lambda pair: (pair[0], -pair[1]))
    merged: list[tuple[int, int]] = []
    best_q = -1
    for p, q in candidates:
        if q > best_q:
            merged.append((p, q))
            best_q = q
    return merged


class TreeEncodingIndex(ReachabilityIndex):
    """Interval pair sequences over a DFS spanning branching."""

    name = "TE"

    def __init__(self, graph: DiGraph, pre: list[int],
                 starts: list[tuple[int, ...]],
                 ends: list[tuple[int, ...]]) -> None:
        self._graph = graph
        self._pre = pre
        self._starts = starts
        self._ends = ends

    @classmethod
    def build(cls, graph: DiGraph) -> "TreeEncodingIndex":
        """Grow the branching, then merge pair sequences bottom-up."""
        n = graph.num_nodes
        pre, end = spanning_branching_intervals(graph)
        sequences: list[list[tuple[int, int]]] = [[] for _ in range(n)]
        for v in reversed(topological_order_ids(graph)):
            candidates = [(pre[v], end[v])]
            for child in graph.successor_ids(v):
                candidates.extend(sequences[child])
            sequences[v] = merge_pair_sequences(candidates)
        starts = [tuple(p for p, _ in seq) for seq in sequences]
        ends = [tuple(q for _, q in seq) for seq in sequences]
        return cls(graph, pre, starts, ends)

    def is_reachable(self, source, target) -> bool:
        """Reflexive reachability: one binary search in the pair sequence."""
        src = self._graph.node_id(source)
        dst = self._graph.node_id(target)
        if src == dst:
            return True
        key = self._pre[dst]
        starts = self._starts[src]
        index = bisect_right(starts, key) - 1
        if index < 0:
            return False
        # Pairs ascend in both components, so the rightmost pair with
        # start <= key has the largest end among eligible pairs.
        return self._ends[src][index] >= key

    def size_words(self) -> int:
        """Preorder numbers plus two words per kept pair."""
        # One preorder number per node plus two words per kept pair.
        return (len(self._pre)
                + 2 * sum(len(seq) for seq in self._starts))

    def sequence_length(self, node) -> int:
        """Number of pairs kept for ``node`` (<= branching leaves)."""
        return len(self._starts[self._graph.node_id(node)])
