"""The common surface of every reachability method in the evaluation.

The paper's experiments (Section V) compare six methods.  Each one here
implements :class:`ReachabilityIndex`:

* ``build(graph)`` — construct the index over a **DAG** (the paper
  collapses SCCs before indexing; :class:`repro.core.index.ChainIndex`
  additionally accepts cyclic graphs and satisfies this interface
  structurally).
* ``is_reachable(source, target)`` — reflexive reachability on node
  objects.
* ``size_words()`` — data-structure size in 16-bit words, the unit of
  the paper's Tables 1/3/4/5.
"""

from __future__ import annotations

from abc import ABC, abstractmethod

from repro.graph.digraph import DiGraph

__all__ = ["ReachabilityIndex"]


class ReachabilityIndex(ABC):
    """Abstract base for the evaluated reachability methods."""

    #: Short method name used by the benchmark tables ("ours", "DD", …).
    name: str = "abstract"

    @classmethod
    @abstractmethod
    def build(cls, graph: DiGraph) -> "ReachabilityIndex":
        """Construct the index for a DAG."""

    @abstractmethod
    def is_reachable(self, source, target) -> bool:
        """Reflexive reachability between two node objects."""

    @abstractmethod
    def size_words(self) -> int:
        """Index size in 16-bit words."""
