"""Setuptools shim.

All metadata lives in pyproject.toml; this file exists so editable
installs work in offline environments whose setuptools predates native
wheel building (``pip install -e . --no-build-isolation --no-use-pep517``).
"""

from setuptools import setup

setup()
