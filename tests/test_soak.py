"""Soak tests: medium-scale cross-method agreement and stability.

Bigger than the unit tests, smaller than the benchmarks — these catch
scale-dependent failures (stack depth, quadratic blow-ups, drift
between methods) without slowing the suite much.
"""

import pytest

from repro.bench.harness import build_all, random_queries
from repro.core.closure_cover import dag_width
from repro.core.index import ChainIndex
from repro.graph.generators import (
    dense_dag,
    random_digraph,
    semi_random_dag,
    sparse_random_dag,
    systematic_dag,
)

MEDIUM_METHODS = ["ours", "DD", "TE", "Dual-II", "MM"]


@pytest.mark.slow
@pytest.mark.parametrize("family,graph_fn", [
    ("sparse", lambda: sparse_random_dag(800, 900, seed=71)),
    ("dsg", lambda: systematic_dag(24, 7, seed=72)),
    ("dsrg", lambda: semi_random_dag(800, 400, seed=73)),
    ("dense", lambda: dense_dag(110, 0.25, seed=74)),
])
def test_medium_scale_cross_method_agreement(family, graph_fn):
    graph = graph_fn()
    results = build_all(graph, MEDIUM_METHODS)
    queries = random_queries(graph, 1500, seed=75)
    reference = [results[0].index.is_reachable(s, t)
                 for s, t in queries]
    for result in results[1:]:
        answers = [result.index.is_reachable(s, t) for s, t in queries]
        assert answers == reference, (family, result.method)


@pytest.mark.slow
def test_large_cyclic_graph_end_to_end():
    graph = random_digraph(1500, 2600, seed=81)
    index = ChainIndex.build(graph)
    # All SCC members answer identically through the condensation.
    from repro.graph.scc import strongly_connected_components
    big = max(strongly_connected_components(graph), key=len)
    if len(big) >= 2:
        assert index.is_reachable(big[0], big[1])
        assert index.is_reachable(big[1], big[0])
    # Spot-check against online BFS.
    from tests.conftest import bfs_reachable
    for source, target in random_queries(graph, 250, seed=82):
        assert index.is_reachable(source, target) == bfs_reachable(
            graph, source, target)


@pytest.mark.slow
def test_chain_count_quality_at_scale():
    for graph in (systematic_dag(30, 8, seed=91),
                  semi_random_dag(1200, 600, seed=92),
                  dense_dag(120, 0.25, seed=93)):
        index = ChainIndex.build(graph)
        width = dag_width(graph)
        assert width <= index.num_chains <= width * 1.02 + 1
