"""The columnar :class:`LabelStore`: codecs, probes and checksums.

The store is the single layer under labeling, persistence and the
shared-memory publisher, so these tests pin its core contracts: the
gap/varint codec round-trips every sequence exactly, the streaming
probe answers like the packed binary search, corrupt streams raise
instead of mis-answering, and the checksums notice every flipped bit.
"""

import pytest
from array import array

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.labelstore import (
    CODECS,
    LabelStore,
    compress_sequences,
    compressed_checksum,
    decode_sequence,
    packed_checksum,
    probe_sequence,
)


@st.composite
def sequence_tables(draw):
    """Per-node sorted (chain, position) sequences, CSR-packed."""
    num_nodes = draw(st.integers(min_value=0, max_value=6))
    offsets = array("l", [0])
    chains = array("l")
    positions = array("l")
    for _ in range(num_nodes):
        chain_ids = sorted(draw(st.sets(
            st.integers(min_value=0, max_value=300), max_size=5)))
        for chain in chain_ids:
            chains.append(chain)
            positions.append(draw(st.integers(min_value=0,
                                              max_value=100_000)))
        offsets.append(len(chains))
    return offsets, chains, positions


class TestVarintCodec:
    @settings(max_examples=80)
    @given(sequence_tables())
    def test_round_trip(self, table):
        offsets, chains, positions = table
        byte_offsets, blob = compress_sequences(offsets, chains,
                                                positions)
        assert byte_offsets[0] == 0
        assert byte_offsets[-1] == len(blob)
        for v in range(len(offsets) - 1):
            expected = list(zip(chains[offsets[v]:offsets[v + 1]],
                                positions[offsets[v]:offsets[v + 1]]))
            decoded = decode_sequence(blob, byte_offsets[v],
                                      byte_offsets[v + 1])
            assert decoded == expected

    @settings(max_examples=80)
    @given(sequence_tables(),
           st.integers(min_value=0, max_value=300),
           st.integers(min_value=0, max_value=100_000))
    def test_probe_equals_membership(self, table, chain, position):
        offsets, chains, positions = table
        byte_offsets, blob = compress_sequences(offsets, chains,
                                                positions)
        for v in range(len(offsets) - 1):
            items = dict(zip(chains[offsets[v]:offsets[v + 1]],
                             positions[offsets[v]:offsets[v + 1]]))
            expected = chain in items and items[chain] <= position
            assert probe_sequence(blob, byte_offsets[v],
                                  byte_offsets[v + 1], chain,
                                  position) == expected

    def test_truncated_stream_raises(self):
        offsets = array("l", [0, 2])
        chains = array("l", [3, 200])
        positions = array("l", [1, 99_999])
        byte_offsets, blob = compress_sequences(offsets, chains,
                                                positions)
        # a cut exactly between two (gap, position) pairs decodes as a
        # shorter valid stream; every other cut must raise
        pair_boundary = {0, len(blob)}
        i = 0
        while i < len(blob):
            for _ in range(2):              # skip one varint pair
                while blob[i] >= 0x80:
                    i += 1
                i += 1
            pair_boundary.add(i)
        for cut in range(1, len(blob)):
            if cut in pair_boundary:
                continue
            with pytest.raises(ValueError):
                decode_sequence(blob[:cut], 0, cut)

    def test_continuation_bit_flip_raises(self):
        # set the high bit on the final byte: the stream now ends
        # mid-varint
        offsets = array("l", [0, 1])
        byte_offsets, blob = compress_sequences(
            offsets, array("l", [5]), array("l", [7]))
        corrupt = blob[:-1] + bytes([blob[-1] | 0x80])
        with pytest.raises(ValueError):
            decode_sequence(corrupt, 0, len(corrupt))


def _store(codec="packed"):
    store = LabelStore.packed(
        2,
        chain_of=[0, 0, 1, 1],
        position_of=[0, 1, 0, 1],
        rank_of=[0, 1, 2, 3],
        level_of=[2, 1, 2, 1],
        seq_offsets=[0, 2, 3, 4, 4],
        seq_chains=[0, 1, 0, 1],
        seq_positions=[1, 0, 1, 1],
    )
    return store.to_codec(codec)


class TestLabelStore:
    def test_rejects_unknown_codec(self):
        with pytest.raises(ValueError, match="unknown label codec"):
            _store().to_codec("gzip")
        with pytest.raises(ValueError, match="unknown label codec"):
            LabelStore("gzip", 1, [0], [0], [0], [1], [0, 0])

    def test_codec_conversion_round_trips(self):
        packed = _store("packed")
        compressed = packed.to_compressed()
        assert compressed.codec == "compressed"
        assert compressed.num_entries == packed.num_entries
        back = compressed.to_packed()
        assert back.seq_offsets == packed.seq_offsets
        assert back.seq_chains == packed.seq_chains
        assert back.seq_positions == packed.seq_positions

    def test_sequence_items_agree_across_codecs(self):
        packed = _store("packed")
        compressed = _store("compressed")
        for v in range(packed.num_nodes):
            assert (packed.sequence_items(v)
                    == compressed.sequence_items(v))
            assert (packed.sequence_length(v)
                    == compressed.sequence_length(v))

    def test_compressed_store_requires_entry_count(self):
        with pytest.raises(ValueError, match="num_entries"):
            LabelStore("compressed", 1, [0], [0], [0], [1], [0, 0],
                       seq_blob=b"")

    def test_nbytes_reflects_the_codec(self):
        packed = _store("packed")
        compressed = _store("compressed")
        # scalar columns identical; sequences shrink from two native
        # words per entry to a couple of varint bytes
        assert compressed.nbytes() < packed.nbytes()

    def test_borrowed_memoryviews_pass_through(self):
        packed = _store("packed")
        view = memoryview(packed.chain_of)
        borrowed = LabelStore.packed(
            packed.num_chains, view, packed.position_of,
            packed.rank_of, packed.level_of, packed.seq_offsets,
            packed.seq_chains, packed.seq_positions)
        assert borrowed.chain_of is view
        assert borrowed.sequence_items(0) == packed.sequence_items(0)


class TestChecksums:
    def test_codecs_hash_their_own_fields(self):
        packed = _store("packed")
        compressed = _store("compressed")
        assert packed.checksum() == packed_checksum(packed.fields())
        assert compressed.checksum() == compressed_checksum(
            compressed.fields())

    def test_blob_bit_flip_changes_the_checksum(self):
        compressed = _store("compressed")
        fields = dict(compressed.fields())
        blob = bytearray(fields["sequence_blob"])
        blob[0] ^= 0x01
        fields["sequence_blob"] = bytes(blob)
        assert compressed_checksum(fields) != compressed.checksum()

    def test_scalar_flip_changes_the_checksum(self):
        compressed = _store("compressed")
        fields = dict(compressed.fields())
        tweaked = array("l", fields["chain_of"])
        tweaked[0] += 1
        fields["chain_of"] = tweaked
        assert compressed_checksum(fields) != compressed.checksum()


def test_codecs_constant_is_the_public_pair():
    assert CODECS == ("packed", "compressed")
