"""Unit and property tests for the public ChainIndex."""

import pytest
from hypothesis import given, settings

from repro.core.index import ChainIndex
from repro.graph.digraph import DiGraph
from repro.graph.errors import NodeNotFoundError

from tests.conftest import all_pairs_oracle, small_digraphs


class TestBuildOptions:
    def test_default_method_is_stratified(self, paper_graph):
        index = ChainIndex.build(paper_graph)
        assert index.method == "stratified"
        assert index.stats is not None

    def test_all_methods_agree(self, paper_graph):
        oracle = all_pairs_oracle(paper_graph)
        for method in ("stratified", "closure", "jagadish"):
            index = ChainIndex.build(paper_graph, method=method)
            for (u, v), expected in oracle.items():
                assert index.is_reachable(u, v) == expected, (method, u, v)

    def test_unknown_method_rejected(self, paper_graph):
        with pytest.raises(ValueError, match="unknown method"):
            ChainIndex.build(paper_graph, method="magic")

    def test_check_flag(self, paper_graph):
        ChainIndex.build(paper_graph, check=True)


class TestQueries:
    def test_reflexive_and_unknown_nodes(self, paper_graph):
        index = ChainIndex.build(paper_graph)
        assert index.is_reachable("a", "a")
        with pytest.raises(NodeNotFoundError):
            index.is_reachable("a", "nope")
        with pytest.raises(NodeNotFoundError):
            index.is_reachable("nope", "a")

    def test_missing_node_errors_name_the_role(self, paper_graph):
        index = ChainIndex.build(paper_graph)
        with pytest.raises(NodeNotFoundError,
                           match="target node 'nope'") as caught:
            index.is_reachable("a", "nope")
        assert caught.value.role == "target"
        with pytest.raises(NodeNotFoundError,
                           match="source node 'gone'") as caught:
            index.is_reachable("gone", "a")
        assert caught.value.role == "source"
        # Both absent: the source is reported (checked first).
        with pytest.raises(NodeNotFoundError) as caught:
            index.is_reachable("gone", "nope")
        assert caught.value.node == "gone"
        assert caught.value.role == "source"

    def test_batch_missing_node_errors_name_the_role(self, paper_graph):
        index = ChainIndex.build(paper_graph)
        with pytest.raises(NodeNotFoundError) as caught:
            index.is_reachable_many([("a", "b"), ("nope", "b")])
        assert caught.value.node == "nope"
        assert caught.value.role == "source"
        with pytest.raises(NodeNotFoundError) as caught:
            index.is_reachable_many([("a", "nope")])
        assert caught.value.role == "target"

    def test_batch_missing_int_label_on_kernel_path(self):
        index = ChainIndex.build(DiGraph.from_edges([(0, 1), (1, 2)]))
        for bad_pair, role in (((0, 99), "target"), ((-1, 2), "source"),
                               ((7, 0), "source")):
            with pytest.raises(NodeNotFoundError) as caught:
                index.is_reachable_many([(0, 1), bad_pair])
            assert caught.value.node == bad_pair[0 if role == "source"
                                                 else 1]
            assert caught.value.role == role

    def test_batch_matches_scalar_on_paper_graph(self, paper_graph):
        index = ChainIndex.build(paper_graph)
        nodes = paper_graph.nodes()
        pairs = [(u, v) for u in nodes for v in nodes]
        assert index.is_reachable_many(pairs) == [
            index.is_reachable(u, v) for u, v in pairs]

    def test_batch_accepts_any_iterable_and_empty(self, paper_graph):
        index = ChainIndex.build(paper_graph)
        assert index.is_reachable_many(iter([("a", "c")])) == [True]
        assert index.is_reachable_many([]) == []

    def test_kernel_states_are_explicit(self, paper_graph):
        """Unbuilt is ``None``; after the first batch the kernel is a
        ``_Kernel`` whose ``flat`` flag says which path answered."""
        from repro.core.index import _Kernel

        string_labeled = ChainIndex.build(paper_graph)
        assert string_labeled._kernel is None
        string_labeled.is_reachable_many([("a", "c")])
        assert isinstance(string_labeled._kernel, _Kernel)
        assert not string_labeled._kernel.flat

        dense = ChainIndex.build(DiGraph.from_edges([(0, 1), (1, 2)]))
        assert dense._kernel is None
        dense.is_reachable_many([(0, 2)])
        assert isinstance(dense._kernel, _Kernel)
        assert dense._kernel.flat
        assert dense._kernel.tables is not None

    def test_label_bytes_positive(self, paper_graph):
        index = ChainIndex.build(paper_graph)
        assert index.label_bytes() > 0

    def test_cyclic_graph_queries(self):
        g = DiGraph.from_edges([("a", "b"), ("b", "c"), ("c", "a"),
                                ("c", "d")])
        index = ChainIndex.build(g)
        assert index.is_reachable("a", "c")   # within the SCC
        assert index.is_reachable("b", "d")   # SCC -> tail
        assert not index.is_reachable("d", "a")
        assert index.num_components == 2

    @settings(max_examples=100)
    @given(small_digraphs())
    def test_cyclic_all_pairs_match_oracle(self, g):
        index = ChainIndex.build(g)
        oracle = all_pairs_oracle(g)
        for (u, v), expected in oracle.items():
            assert index.is_reachable(u, v) == expected, (u, v)


class TestDescendants:
    def test_paper_graph_descendants(self, paper_graph):
        index = ChainIndex.build(paper_graph)
        assert set(index.descendants("a")) == {"a", "b", "c", "d", "e",
                                               "i"}
        assert set(index.descendants("d")) == {"d"}

    def test_cyclic_descendants_expand_components(self):
        g = DiGraph.from_edges([("a", "b"), ("b", "a"), ("b", "c")])
        index = ChainIndex.build(g)
        assert set(index.descendants("a")) == {"a", "b", "c"}

    def test_unknown_node_raises(self, paper_graph):
        index = ChainIndex.build(paper_graph)
        with pytest.raises(NodeNotFoundError):
            list(index.descendants("nope"))

    @given(small_digraphs(max_nodes=9))
    def test_descendants_match_oracle(self, g):
        index = ChainIndex.build(g)
        oracle = all_pairs_oracle(g)
        for u in g.nodes():
            expected = {v for v in g.nodes() if oracle[(u, v)]}
            got = list(index.descendants(u))
            assert set(got) == expected
            assert len(got) == len(expected)  # no duplicates


class TestAncestors:
    def test_paper_graph_ancestors(self, paper_graph):
        index = ChainIndex.build(paper_graph)
        assert set(index.ancestors("e")) == {"a", "b", "c", "e", "f",
                                             "g", "h"}
        assert set(index.ancestors("a")) == {"a"}

    def test_cyclic_ancestors_expand_components(self):
        g = DiGraph.from_edges([("a", "b"), ("b", "a"), ("c", "a")])
        index = ChainIndex.build(g)
        assert set(index.ancestors("b")) == {"a", "b", "c"}

    def test_unknown_node_raises(self, paper_graph):
        index = ChainIndex.build(paper_graph)
        with pytest.raises(NodeNotFoundError):
            list(index.ancestors("nope"))

    @given(small_digraphs(max_nodes=9))
    def test_ancestors_match_oracle(self, g):
        index = ChainIndex.build(g)
        oracle = all_pairs_oracle(g)
        for v in g.nodes():
            expected = {u for u in g.nodes() if oracle[(u, v)]}
            got = list(index.ancestors(v))
            assert set(got) == expected
            assert len(got) == len(expected)  # no duplicates

    @given(small_digraphs(max_nodes=8))
    def test_ancestors_and_descendants_are_mutually_consistent(self, g):
        index = ChainIndex.build(g)
        for u in g.nodes():
            for v in index.descendants(u):
                assert u in set(index.ancestors(v))


class TestIntrospection:
    def test_width_and_chains(self, paper_graph):
        index = ChainIndex.build(paper_graph)
        assert index.width == index.num_chains == 3
        chains = index.chains()
        flattened = [n for chain in chains for members in chain
                     for n in members]
        assert sorted(flattened) == sorted(paper_graph.nodes())

    def test_size_words_positive(self, paper_graph):
        index = ChainIndex.build(paper_graph)
        assert index.size_words() >= 2 * paper_graph.num_nodes

    def test_repr(self, paper_graph):
        index = ChainIndex.build(paper_graph)
        assert "chains=3" in repr(index)
