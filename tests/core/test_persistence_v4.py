"""Persistence format v4: codecs, legacy fixtures, corrupt streams.

Two frozen fixture files in ``tests/data/`` pin backwards
compatibility: ``index_v2_packed.json`` is a single-index document as
the pre-codec release wrote it (version 2, no ``codec`` key) and
``index_v3_composite.json`` is a composite manifest whose partitions
embed version-2 payloads.  Both must keep loading under the v4 code
path and answer exactly like a freshly built index.  The rest of the
module exercises the v4 ``compressed`` codec end to end: round-trips,
cross-codec equivalence and the rejection of every corruption mode a
varint stream admits (bad base64, truncated pairs, CRC mismatch, bad
codec markers, wrong entry counts).
"""

import io
import json
from pathlib import Path

import pytest
from hypothesis import given, settings

from repro.core.index import ChainIndex
from repro.core.persistence import (
    describe_index_file,
    load_index,
    save_index,
)
from repro.engine.composite import CompositeEngine
from repro.graph.digraph import DiGraph
from repro.graph.errors import GraphFormatError, IndexFormatError

from tests.conftest import bfs_reachable, small_digraphs

DATA = Path(__file__).resolve().parent.parent / "data"

FIXTURE_EDGES = [("a", "b"), ("b", "c"), ("c", "a"),
                 ("c", "d"), ("d", "e"),
                 ("f", "g"), ("g", "h"), ("f", "h")]
FIXTURE_NODES = ["i"]


def fixture_graph() -> DiGraph:
    return DiGraph.from_edges(FIXTURE_EDGES, nodes=FIXTURE_NODES)


def _dumps(index, codec=None) -> str:
    buffer = io.StringIO()
    save_index(index, buffer, codec=codec)
    return buffer.getvalue()


def _assert_answers_like_bfs(index, graph):
    nodes = graph.nodes()
    for u in nodes:
        for v in nodes:
            assert index.is_reachable(u, v) == bfs_reachable(
                graph, u, v), (u, v)


class TestCompressedRoundTrip:
    def test_file_round_trip(self, tmp_path):
        graph = fixture_graph()
        index = ChainIndex.build(graph)
        path = tmp_path / "compressed.idx"
        save_index(index, path, codec="compressed")
        reloaded = load_index(path)
        assert reloaded.codec == "compressed"
        _assert_answers_like_bfs(reloaded, graph)

    def test_document_shape(self):
        index = ChainIndex.build(fixture_graph())
        document = json.loads(_dumps(index, codec="compressed"))
        assert document["version"] == 4
        assert document["codec"] == "compressed"
        labeling = document["labeling"]
        assert isinstance(labeling["sequence_blob"], str)
        assert labeling["entries"] == index.label_entries()
        assert "sequence_chains" not in labeling

    @settings(max_examples=25, deadline=None)
    @given(small_digraphs(max_nodes=8))
    def test_codecs_answer_identically(self, graph):
        index = ChainIndex.build(graph)
        packed = load_index(io.StringIO(_dumps(index, codec="packed")))
        compressed = load_index(
            io.StringIO(_dumps(index, codec="compressed")))
        nodes = graph.nodes()
        pairs = [(u, v) for u in nodes for v in nodes]
        assert (packed.is_reachable_many(pairs)
                == compressed.is_reachable_many(pairs))

    def test_composite_persists_compressed_partitions(self, tmp_path):
        graph = fixture_graph()
        composite = CompositeEngine.build(graph)
        path = tmp_path / "composite.idx"
        save_index(composite, path, codec="compressed")
        document = json.loads(path.read_text())
        assert all(p["codec"] == "compressed"
                   for p in document["partitions"])
        _assert_answers_like_bfs(load_index(path), graph)


class TestLegacyFixtures:
    def test_v2_fixture_loads_and_answers_like_bfs(self):
        index = load_index(DATA / "index_v2_packed.json")
        assert index.codec == "packed"
        _assert_answers_like_bfs(index, fixture_graph())

    def test_v2_fixture_has_no_codec_field(self):
        document = json.loads(
            (DATA / "index_v2_packed.json").read_text())
        assert document["version"] == 2
        assert "codec" not in document

    def test_v2_fixture_round_trips_through_v4(self, tmp_path):
        index = load_index(DATA / "index_v2_packed.json")
        path = tmp_path / "rewritten.idx"
        save_index(index, path, codec="compressed")
        document = json.loads(path.read_text())
        assert document["version"] == 4
        _assert_answers_like_bfs(load_index(path), fixture_graph())

    def test_v3_fixture_loads_and_answers_like_bfs(self):
        engine = load_index(DATA / "index_v3_composite.json")
        assert isinstance(engine, CompositeEngine)
        _assert_answers_like_bfs(engine, fixture_graph())

    def test_v3_fixture_embeds_v2_payloads(self):
        document = json.loads(
            (DATA / "index_v3_composite.json").read_text())
        assert document["version"] == 3
        for payload in document["partitions"]:
            assert payload["version"] == 2
            assert "codec" not in payload

    def test_fixture_files_describe(self):
        single = describe_index_file(DATA / "index_v2_packed.json")
        assert single["kind"] == "single"
        assert single["version"] == 2
        assert single["codec"] == "packed"
        assert single["label_entries"] > 0
        composite = describe_index_file(
            DATA / "index_v3_composite.json")
        assert composite["kind"] == "composite"
        assert composite["codec"] == "packed"
        assert composite["partitions"] == 3


def _compressed_document() -> dict:
    index = ChainIndex.build(fixture_graph())
    return json.loads(_dumps(index, codec="compressed"))


def _load(document: dict):
    return load_index(io.StringIO(json.dumps(document)))


class TestCorruptCompressedStreams:
    def test_bad_base64_rejected(self):
        document = _compressed_document()
        document["labeling"]["sequence_blob"] = "not base64 !!!"
        with pytest.raises(GraphFormatError, match="base64"):
            _load(document)

    def test_non_string_blob_rejected(self):
        document = _compressed_document()
        document["labeling"]["sequence_blob"] = [1, 2, 3]
        with pytest.raises(GraphFormatError, match="base64"):
            _load(document)

    def test_bit_flip_fails_the_crc(self):
        import base64
        document = _compressed_document()
        blob = bytearray(base64.b64decode(
            document["labeling"]["sequence_blob"]))
        blob[0] ^= 0x40
        document["labeling"]["sequence_blob"] = base64.b64encode(
            bytes(blob)).decode("ascii")
        with pytest.raises(IndexFormatError, match="checksum"):
            _load(document)

    def test_truncated_varint_rejected_even_with_matching_crc(self):
        import base64

        from repro.core.labelstore import compressed_checksum
        from repro.core.persistence import _store_from_document
        document = _compressed_document()
        blob = base64.b64decode(document["labeling"]["sequence_blob"])
        # force the final byte to claim a continuation, then re-seal
        # the CRC: shape validation must still notice
        corrupt = blob[:-1] + bytes([blob[-1] | 0x80])
        document["labeling"]["sequence_blob"] = base64.b64encode(
            corrupt).decode("ascii")
        store = _store_from_document(document)
        document["labeling_crc32"] = compressed_checksum(store.fields())
        with pytest.raises(GraphFormatError,
                           match="corrupt sequence stream"):
            _load(document)

    def test_invalid_codec_rejected(self):
        document = _compressed_document()
        document["codec"] = "gzip"
        with pytest.raises(GraphFormatError, match="invalid codec"):
            _load(document)

    def test_missing_codec_rejected_on_v4(self):
        document = _compressed_document()
        del document["codec"]
        with pytest.raises(GraphFormatError, match="invalid codec"):
            _load(document)

    def test_wrong_entry_count_rejected(self):
        from repro.core.labelstore import compressed_checksum
        from repro.core.persistence import _store_from_document
        document = _compressed_document()
        document["labeling"]["entries"] += 1
        store = _store_from_document(document)
        document["labeling_crc32"] = compressed_checksum(store.fields())
        with pytest.raises(GraphFormatError, match="entry count"):
            _load(document)

    def test_offsets_not_covering_blob_rejected(self):
        from repro.core.labelstore import compressed_checksum
        from repro.core.persistence import _store_from_document
        document = _compressed_document()
        document["labeling"]["sequence_byte_offsets"][-1] += 1
        store = _store_from_document(document)
        document["labeling_crc32"] = compressed_checksum(store.fields())
        with pytest.raises(GraphFormatError, match="blob"):
            _load(document)
