"""Unit and property tests for incremental maintenance."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.maintenance import DynamicChainIndex
from repro.graph.digraph import DiGraph
from repro.graph.errors import NodeNotFoundError, NotADAGError

from tests.conftest import all_pairs_oracle, small_dags


class TestBasics:
    def test_from_graph_rejects_cycles(self):
        g = DiGraph.from_edges([("a", "b"), ("b", "a")])
        with pytest.raises(NotADAGError):
            DynamicChainIndex.from_graph(g)

    def test_from_graph_copies_input(self, paper_graph):
        index = DynamicChainIndex.from_graph(paper_graph)
        index.add_node("new")
        assert "new" not in paper_graph
        assert index.num_nodes == paper_graph.num_nodes + 1

    def test_initial_queries_match_static(self, paper_graph):
        index = DynamicChainIndex.from_graph(paper_graph)
        oracle = all_pairs_oracle(paper_graph)
        for (u, v), expected in oracle.items():
            assert index.is_reachable(u, v) == expected

    def test_unknown_node_raises(self, paper_graph):
        index = DynamicChainIndex.from_graph(paper_graph)
        with pytest.raises(NodeNotFoundError):
            index.is_reachable("a", "zz")


class TestInsertions:
    def test_add_node_starts_new_chain(self):
        index = DynamicChainIndex.from_graph(DiGraph())
        index.add_node("x")
        index.add_node("y")
        assert index.num_chains == 2
        assert index.is_reachable("x", "x")
        assert not index.is_reachable("x", "y")

    def test_add_edge_updates_ancestors(self):
        g = DiGraph.from_edges([("a", "b"), ("c", "d")])
        index = DynamicChainIndex.from_graph(g)
        assert not index.is_reachable("a", "d")
        index.add_edge("b", "c")
        assert index.is_reachable("a", "d")
        assert index.is_reachable("a", "c")
        assert not index.is_reachable("d", "a")

    def test_cycle_creating_edge_rejected_and_state_unchanged(self):
        g = DiGraph.from_edges([("a", "b"), ("b", "c")])
        index = DynamicChainIndex.from_graph(g)
        with pytest.raises(NotADAGError):
            index.add_edge("c", "a")
        assert not index.is_reachable("c", "a")
        assert index.num_nodes == 3

    def test_self_loop_is_noop(self):
        g = DiGraph.from_edges([("a", "b")])
        index = DynamicChainIndex.from_graph(g)
        index.add_edge("a", "a")
        assert index.is_reachable("a", "a")

    def test_redundant_edge_changes_nothing(self):
        g = DiGraph.from_edges([("a", "b"), ("b", "c")])
        index = DynamicChainIndex.from_graph(g)
        before = index.size_words()
        index.add_edge("a", "c")  # already implied
        assert index.is_reachable("a", "c")
        assert index.size_words() == before

    def test_rebuild_restores_minimum_chains(self):
        index = DynamicChainIndex.from_graph(DiGraph())
        for v in range(5):
            index.add_node(v)
        for v in range(4):
            index.add_edge(v, v + 1)
        assert index.num_chains == 5  # inserts never merge chains
        index.rebuild()
        assert index.num_chains == 1
        assert index.is_reachable(0, 4)


class TestPropertyBased:
    @settings(max_examples=60, deadline=None)
    @given(small_dags(max_nodes=10), st.randoms(use_true_random=False))
    def test_incremental_build_matches_batch_oracle(self, g, rng):
        """Insert a random DAG node-by-node / edge-by-edge and compare
        all answers against the oracle after every few steps."""
        index = DynamicChainIndex.from_graph(DiGraph())
        partial = DiGraph()
        for node in g.nodes():
            index.add_node(node)
            partial.add_node(node)
        edges = list(g.edges())
        rng.shuffle(edges)
        for tail, head in edges:
            index.add_edge(tail, head)
            partial.add_edge(tail, head)
        oracle = all_pairs_oracle(partial)
        for (u, v), expected in oracle.items():
            assert index.is_reachable(u, v) == expected, (u, v)

    @settings(max_examples=30, deadline=None)
    @given(small_dags(max_nodes=10))
    def test_rebuild_preserves_answers(self, g):
        index = DynamicChainIndex.from_graph(g)
        oracle = all_pairs_oracle(g)
        index.rebuild()
        for (u, v), expected in oracle.items():
            assert index.is_reachable(u, v) == expected
