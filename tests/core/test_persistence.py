"""Unit and property tests for index persistence."""

import io
import json

import pytest
from hypothesis import given, settings

from repro.core.index import ChainIndex
from repro.core.persistence import FORMAT_VERSION, load_index, save_index
from repro.graph.digraph import DiGraph
from repro.graph.errors import GraphFormatError

from tests.conftest import all_pairs_oracle, small_digraphs


class TestRoundTrip:
    def test_file_round_trip(self, paper_graph, tmp_path):
        index = ChainIndex.build(paper_graph)
        path = tmp_path / "index.json"
        save_index(index, path)
        loaded = load_index(path)
        oracle = all_pairs_oracle(paper_graph)
        for (u, v), expected in oracle.items():
            assert loaded.is_reachable(u, v) == expected
        assert loaded.num_chains == index.num_chains
        assert loaded.method == index.method

    def test_handle_round_trip(self, paper_graph):
        index = ChainIndex.build(paper_graph)
        buffer = io.StringIO()
        save_index(index, buffer)
        buffer.seek(0)
        loaded = load_index(buffer)
        assert loaded.is_reachable("a", "e")

    def test_descendants_and_ancestors_survive(self, paper_graph):
        index = ChainIndex.build(paper_graph)
        buffer = io.StringIO()
        save_index(index, buffer)
        buffer.seek(0)
        loaded = load_index(buffer)
        assert set(loaded.descendants("a")) == set(index.descendants("a"))
        assert set(loaded.ancestors("e")) == set(index.ancestors("e"))

    @settings(max_examples=50, deadline=None)
    @given(small_digraphs(max_nodes=10))
    def test_cyclic_graphs_round_trip(self, g):
        index = ChainIndex.build(g)
        buffer = io.StringIO()
        save_index(index, buffer)
        buffer.seek(0)
        loaded = load_index(buffer)
        for (u, v), expected in all_pairs_oracle(g).items():
            assert loaded.is_reachable(u, v) == expected


class TestValidation:
    def test_non_scalar_labels_rejected(self):
        g = DiGraph.from_edges([((1, 2), "b")])
        index = ChainIndex.build(g)
        with pytest.raises(GraphFormatError, match="JSON"):
            save_index(index, io.StringIO())

    def test_garbage_rejected(self):
        with pytest.raises(GraphFormatError, match="JSON"):
            load_index(io.StringIO("not json"))

    def test_wrong_format_marker(self):
        with pytest.raises(GraphFormatError, match="chain-index"):
            load_index(io.StringIO('{"format": "something-else"}'))

    def test_wrong_version(self, paper_graph):
        index = ChainIndex.build(paper_graph)
        buffer = io.StringIO()
        save_index(index, buffer)
        document = json.loads(buffer.getvalue())
        document["version"] = 99
        with pytest.raises(GraphFormatError, match="version"):
            load_index(io.StringIO(json.dumps(document)))

    def test_missing_field(self):
        document = {"format": "repro-chain-index",
                    "version": FORMAT_VERSION}
        with pytest.raises(GraphFormatError, match="missing"):
            load_index(io.StringIO(json.dumps(document)))

    def test_corrupted_chains_rejected(self, paper_graph):
        index = ChainIndex.build(paper_graph)
        buffer = io.StringIO()
        save_index(index, buffer)
        document = json.loads(buffer.getvalue())
        document["chains"][0] = document["chains"][0][:-1]  # drop a node
        with pytest.raises(GraphFormatError, match="partition"):
            load_index(io.StringIO(json.dumps(document)))

    def test_ragged_sequences_rejected(self, paper_graph):
        index = ChainIndex.build(paper_graph)
        buffer = io.StringIO()
        save_index(index, buffer)
        document = json.loads(buffer.getvalue())
        document["labeling"]["sequence_positions"][0] = [1, 2, 3, 4, 5]
        with pytest.raises(GraphFormatError):
            load_index(io.StringIO(json.dumps(document)))
