"""White-box tests of the resolution transaction machinery."""

from hypothesis import given, settings

import repro.core.stratified as stratified_module
from repro.core.closure_cover import dag_width
from repro.core.stratified import stratified_chain_cover_with_stats
from repro.graph.generators import random_dag, sparse_random_dag

from tests.conftest import small_dags


class TestBudgetExhaustion:
    def test_zero_budget_is_still_sound(self, monkeypatch):
        """With no transaction budget every matched virtual splits; the
        output has more chains but every chain stays valid."""
        monkeypatch.setattr(stratified_module, "_TRANSACTION_BUDGET", 0)
        g = sparse_random_dag(300, 360, seed=3)
        cover, stats = stratified_chain_cover_with_stats(g)
        cover.check(g)
        assert cover.num_chains >= dag_width(g)

    def test_tiny_budget_degrades_gracefully(self, monkeypatch):
        monkeypatch.setattr(stratified_module, "_TRANSACTION_BUDGET", 2)
        g = random_dag(40, 0.25, seed=9)
        cover, stats = stratified_chain_cover_with_stats(g)
        cover.check(g)
        assert cover.num_chains >= dag_width(g)

    @settings(max_examples=30)
    @given(small_dags(max_nodes=12))
    def test_soundness_is_budget_independent(self, g):
        # hypothesis doesn't compose with the monkeypatch fixture;
        # patch manually around the call.
        original = stratified_module._TRANSACTION_BUDGET
        try:
            stratified_module._TRANSACTION_BUDGET = 1
            cover, _ = stratified_chain_cover_with_stats(g)
            cover.check(g)
        finally:
            stratified_module._TRANSACTION_BUDGET = original


class TestStatsAccounting:
    def test_counters_are_consistent(self):
        g = random_dag(30, 0.3, seed=5)
        cover, stats = stratified_chain_cover_with_stats(g)
        assert stats.num_levels >= 1
        assert stats.num_virtuals >= stats.unanchored
        assert stats.splits >= 0
        assert stats.stitched >= 0
        assert stats.transfers >= 0

    def test_no_edges_means_no_virtuals(self):
        from repro.graph.generators import antichain_graph
        _, stats = stratified_chain_cover_with_stats(antichain_graph(6))
        assert stats.num_virtuals == 0
        assert stats.num_levels == 1
