"""Unit and property tests for the paper's stratified chain cover."""

from hypothesis import given, settings

from repro.core.closure_cover import dag_width
from repro.core.stratified import (
    stratified_chain_cover,
    stratified_chain_cover_with_stats,
)
from repro.graph.digraph import DiGraph
from repro.graph.generators import (
    antichain_graph,
    chain_graph,
    dense_dag,
    layered_random_dag,
    semi_random_dag,
    sparse_random_dag,
    systematic_dag,
)

from tests.conftest import small_dags


class TestPaperExamples:
    def test_fig1_gives_three_chains(self, paper_graph):
        """Fig. 1(c)/Fig. 6(e): the example decomposes into 3 chains."""
        cover = stratified_chain_cover(paper_graph)
        cover.check(paper_graph)
        assert cover.num_chains == 3

    def test_fig1_virtual_nodes_are_constructed(self, paper_graph):
        """Example 2 builds a virtual node for the free node e whose
        s-edges come from parents {b, g} of the covered parents."""
        _, stats = stratified_chain_cover_with_stats(paper_graph)
        assert stats.num_virtuals >= 1
        assert stats.num_s_edges >= 1
        assert stats.splits == 0


class TestDegenerateShapes:
    def test_empty_graph(self):
        assert stratified_chain_cover(DiGraph()).num_chains == 0

    def test_single_node(self):
        g = DiGraph()
        g.add_node("x")
        cover = stratified_chain_cover(g)
        assert cover.chains == [[0]]

    def test_chain_is_one_chain(self):
        cover = stratified_chain_cover(chain_graph(8))
        assert cover.num_chains == 1

    def test_antichain_is_all_singletons(self):
        cover = stratified_chain_cover(antichain_graph(6))
        assert cover.num_chains == 6

    def test_diamond(self):
        g = DiGraph.from_edges([(0, 1), (0, 2), (1, 3), (2, 3)])
        cover = stratified_chain_cover(g)
        cover.check(g)
        assert cover.num_chains == 2

    def test_skip_level_edge_needs_virtual_node(self):
        # 0 -> 1 -> 2 and 3 -> 2: plus 4 -> 0 at the top with an edge
        # to the level-1 node 5; 5's only parent is two levels up.
        g = DiGraph.from_edges([(0, 1), (1, 2), (3, 2), (4, 0), (4, 5)])
        cover = stratified_chain_cover(g)
        cover.check(g)
        assert cover.num_chains == dag_width(g)


class TestMinimalityAndSoundness:
    @settings(max_examples=150)
    @given(small_dags())
    def test_cover_is_valid(self, g):
        cover = stratified_chain_cover(g)
        cover.check(g)

    @settings(max_examples=150)
    @given(small_dags())
    def test_chain_count_bounds(self, g):
        """Dilworth lower bound always; exact width unless a split
        survived (the residual of the paper's level-local matching —
        see the module docstring of repro/core/stratified.py)."""
        cover, stats = stratified_chain_cover_with_stats(g)
        width = dag_width(g)
        assert cover.num_chains >= width
        assert cover.num_chains <= width + stats.splits

    @settings(max_examples=60)
    @given(small_dags(max_nodes=10))
    def test_small_graphs_are_exactly_minimum(self, g):
        """On graphs this small the cover is reliably minimum."""
        cover, stats = stratified_chain_cover_with_stats(g)
        if stats.splits == 0:
            assert cover.num_chains == dag_width(g)


class TestBenchmarkFamilies:
    """The paper's graph families come out exactly minimum."""

    def test_dsg(self):
        g = systematic_dag(20, 5, seed=3)
        cover, stats = stratified_chain_cover_with_stats(g)
        cover.check(g)
        assert cover.num_chains == dag_width(g)

    def test_dsrg(self):
        g = semi_random_dag(300, 150, seed=2)
        cover = stratified_chain_cover(g)
        cover.check(g)
        assert cover.num_chains == dag_width(g)

    def test_dense(self):
        g = dense_dag(80, 0.25, seed=4)
        cover = stratified_chain_cover(g)
        cover.check(g)
        assert cover.num_chains == dag_width(g)

    def test_layered(self):
        g = layered_random_dag([5, 8, 6, 9, 4, 7], 0.3, seed=1)
        cover = stratified_chain_cover(g)
        cover.check(g)
        assert cover.num_chains == dag_width(g)

    def test_sparse_gap_is_tiny(self):
        g = sparse_random_dag(400, 450, seed=5)
        cover = stratified_chain_cover(g)
        cover.check(g)
        width = dag_width(g)
        assert width <= cover.num_chains <= width + max(2, width // 20)


class TestStats:
    def test_stats_fields_populated(self, paper_graph):
        _, stats = stratified_chain_cover_with_stats(paper_graph)
        assert stats.num_levels == 4
        assert stats.num_virtuals >= 1

    def test_no_virtuals_on_perfect_layering(self):
        # A complete bipartite two-level DAG needs no virtual nodes.
        g = DiGraph.from_edges([(i, j + 3) for i in range(3)
                                for j in range(3)])
        _, stats = stratified_chain_cover_with_stats(g)
        assert stats.num_virtuals == 0
