"""Unit and property tests for maximum-antichain extraction."""

from hypothesis import given

from repro.core.width import dag_width, maximum_antichain
from repro.graph.closure import descendants_bitsets
from repro.graph.digraph import DiGraph
from repro.graph.generators import antichain_graph, chain_graph

from tests.conftest import small_dags


class TestMaximumAntichain:
    def test_chain_gives_single_node(self):
        assert len(maximum_antichain(chain_graph(5))) == 1

    def test_antichain_gives_everything(self):
        assert sorted(maximum_antichain(antichain_graph(4))) == [0, 1, 2, 3]

    def test_paper_graph(self, paper_graph):
        antichain = maximum_antichain(paper_graph)
        assert len(antichain) == 3

    def test_empty_graph(self):
        assert maximum_antichain(DiGraph()) == []

    @given(small_dags())
    def test_size_equals_width(self, g):
        assert len(maximum_antichain(g)) == dag_width(g)

    @given(small_dags())
    def test_members_are_pairwise_incomparable(self, g):
        antichain = maximum_antichain(g)
        reach = descendants_bitsets(g)
        ids = [g.node_id(v) for v in antichain]
        for u in ids:
            for v in ids:
                if u != v:
                    assert not (reach[u] >> v) & 1
