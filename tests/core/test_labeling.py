"""Unit and property tests for the chain labels (Section II)."""

from hypothesis import given, settings

from repro.core.closure_cover import closure_chain_cover
from repro.core.labeling import build_labeling, merge_index_sequences
from repro.core.stratified import stratified_chain_cover
from repro.graph.digraph import DiGraph
from repro.graph.generators import chain_graph

from tests.conftest import all_pairs_oracle, small_dags


class TestQuerySemantics:
    def test_paper_graph_all_pairs(self, paper_graph):
        cover = stratified_chain_cover(paper_graph)
        labeling = build_labeling(paper_graph, cover)
        oracle = all_pairs_oracle(paper_graph)
        for (u, v), expected in oracle.items():
            got = labeling.is_reachable_ids(paper_graph.node_id(u),
                                            paper_graph.node_id(v))
            assert got == expected, (u, v)

    def test_reflexive(self):
        g = DiGraph()
        g.add_node(0)
        labeling = build_labeling(g, closure_chain_cover(g))
        assert labeling.is_reachable_ids(0, 0)

    @settings(max_examples=120)
    @given(small_dags())
    def test_all_pairs_match_oracle(self, g):
        labeling = build_labeling(g, stratified_chain_cover(g))
        oracle = all_pairs_oracle(g)
        for (u, v), expected in oracle.items():
            assert labeling.is_reachable_ids(
                g.node_id(u), g.node_id(v)) == expected

    @given(small_dags())
    def test_labels_agree_across_decomposition_methods(self, g):
        a = build_labeling(g, stratified_chain_cover(g))
        b = build_labeling(g, closure_chain_cover(g))
        for u in range(g.num_nodes):
            for v in range(g.num_nodes):
                assert (a.is_reachable_ids(u, v)
                        == b.is_reachable_ids(u, v))


class TestSequences:
    @given(small_dags())
    def test_sequence_length_bounded_by_chain_count(self, g):
        cover = stratified_chain_cover(g)
        labeling = build_labeling(g, cover)
        for v in range(g.num_nodes):
            assert labeling.sequence_length(v) <= cover.num_chains

    @given(small_dags())
    def test_sequences_are_sorted_by_chain(self, g):
        labeling = build_labeling(g, stratified_chain_cover(g))
        for chains in labeling.sequence_chains:
            assert list(chains) == sorted(chains)
            assert len(set(chains)) == len(chains)

    def test_sinks_have_empty_sequences(self, paper_graph):
        labeling = build_labeling(paper_graph,
                                  stratified_chain_cover(paper_graph))
        for name in ("d", "e", "i"):
            assert labeling.sequence_length(paper_graph.node_id(name)) == 0


class TestPaperMerge:
    """The literal Section-II pairwise merge."""

    def test_disjoint_chains_interleave(self):
        assert merge_index_sequences([(0, 3), (2, 1)], [(1, 5)]) == [
            (0, 3), (1, 5), (2, 1)]

    def test_shared_chain_keeps_smaller_position(self):
        assert merge_index_sequences([(1, 4)], [(1, 2)]) == [(1, 2)]
        assert merge_index_sequences([(1, 2)], [(1, 4)]) == [(1, 2)]

    def test_empty_sides(self):
        assert merge_index_sequences([], [(0, 1)]) == [(0, 1)]
        assert merge_index_sequences([(0, 1)], []) == [(0, 1)]
        assert merge_index_sequences([], []) == []

    @given(small_dags())
    def test_pairwise_merge_reproduces_build_labeling(self, g):
        """Folding children's sequences with the paper's merge yields
        exactly the sequences build_labeling computes."""
        cover = stratified_chain_cover(g)
        labeling = build_labeling(g, cover)
        from repro.graph.topology import topological_order_ids
        sequences: dict[int, list[tuple[int, int]]] = {}
        for v in reversed(topological_order_ids(g)):
            merged: list[tuple[int, int]] = []
            for child in g.successor_ids(v):
                child_own = [(cover.chain_of[child],
                              cover.position_of[child])]
                merged = merge_index_sequences(merged, child_own)
                merged = merge_index_sequences(merged, sequences[child])
            sequences[v] = merged
        for v in range(g.num_nodes):
            expected = list(zip(labeling.sequence_chains[v],
                                labeling.sequence_positions[v]))
            assert sequences[v] == expected


class TestSizeAccounting:
    def test_chain_graph_size(self):
        g = chain_graph(4)
        labeling = build_labeling(g, closure_chain_cover(g))
        # 4 coordinates (2 words each) + 3 non-sink sequences of one
        # entry each (2 words each).
        assert labeling.size_words() == 8 + 6

    def test_average_sequence_length(self):
        g = chain_graph(4)
        labeling = build_labeling(g, closure_chain_cover(g))
        assert labeling.average_sequence_length() == 0.75

    def test_empty_graph(self):
        g = DiGraph()
        labeling = build_labeling(g, closure_chain_cover(g))
        assert labeling.size_words() == 0
        assert labeling.average_sequence_length() == 0.0

    @given(small_dags())
    def test_size_is_o_of_bn(self, g):
        cover = stratified_chain_cover(g)
        labeling = build_labeling(g, cover)
        bound = 2 * g.num_nodes * (cover.num_chains + 1)
        assert labeling.size_words() <= bound
