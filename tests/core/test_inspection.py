"""Unit tests for the paper-notation decomposition trace."""

from repro.core.inspection import trace_decomposition
from repro.graph.digraph import DiGraph
from repro.graph.generators import chain_graph

from tests.conftest import PAPER_FIG1_EDGES


class TestPaperFigure1:
    def trace(self):
        return trace_decomposition(DiGraph.from_edges(PAPER_FIG1_EDGES))

    def test_stratification_matches_fig2(self):
        trace = self.trace()
        named = [set(level) for level in trace.stratification_levels]
        assert named == [{"d", "e", "i"}, {"c", "h"}, {"b", "g"},
                         {"a", "f"}]

    def test_three_matchings_recorded(self):
        trace = self.trace()
        assert [t.level for t in trace.levels] == [1, 2, 3]
        # M1 pairs both level-2 nodes; exactly one V1 node stays free.
        assert len(trace.levels[0].matched) == 2
        assert len(trace.levels[0].free_bottoms) == 1

    def test_virtual_label_structure_matches_example(self):
        """Whichever V1 node HK leaves free, its virtual label must
        list covered parents from {c, h} with position-1 S sets drawn
        from the V3 parents {b, g} — the shape of Example 2's
        e[(c, {(1, {b})}), (h, {(1, {g})})]."""
        trace = self.trace()
        virtuals = trace.levels[0].virtuals_created
        assert len(virtuals) == 1
        virtual = virtuals[0]
        assert virtual.level == 2
        parents = {parent for parent, _ in virtual.entries}
        assert parents <= {"c", "h"}
        all_s = set()
        for _, positions in virtual.entries:
            for position, s_set in positions:
                assert position % 2 == 1  # odd positions only
                all_s |= s_set
        assert all_s <= {"b", "g"}
        assert all_s  # at least one rerouting parent exists

    def test_label_rendering(self):
        trace = self.trace()
        label = trace.levels[0].virtuals_created[0].label()
        assert "[" in label and "]" in label
        assert "(1, {" in label

    def test_render_is_complete(self):
        text = trace_decomposition(
            DiGraph.from_edges(PAPER_FIG1_EDGES)).render()
        assert "V1:" in text and "V4:" in text
        assert "bipartite G(V2, V1'; C1')" in text
        assert "virtual" in text


class TestDegenerate:
    def test_chain_graph_has_no_virtuals(self):
        trace = trace_decomposition(chain_graph(5))
        for level in trace.levels:
            assert level.virtuals_created == []
            assert len(level.matched) == 1

    def test_empty_label_rendering(self):
        g = DiGraph.from_edges([(0, 1), (0, 2), (3, 0)], nodes=[])
        # 2 is free at level 1 with no rerouting structure at all
        # only if the matching picks 1; either way render() works.
        text = trace_decomposition(g).render()
        assert "V1:" in text

    def test_single_level_graph(self):
        g = DiGraph()
        for v in range(3):
            g.add_node(v)
        trace = trace_decomposition(g)
        assert trace.levels == []
