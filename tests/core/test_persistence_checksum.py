"""The ``labeling_crc32`` integrity check of persistence format v2.

A truncated or bit-flipped index must fail loudly at load time with
:class:`IndexFormatError`, while files written before the checksum was
introduced (no ``labeling_crc32`` key) must keep loading.
"""

import io
import json

import pytest
from hypothesis import given, settings

from repro import DiGraph, IndexFormatError
from repro.core.index import ChainIndex
from repro.core.persistence import (
    labeling_checksum,
    load_index,
    save_index,
)
from repro.graph.errors import GraphFormatError

from tests.conftest import PAPER_FIG1_EDGES, small_dags


def save_document(graph: DiGraph) -> dict:
    buffer = io.StringIO()
    save_index(ChainIndex.build(graph), buffer)
    return json.loads(buffer.getvalue())


def load_document(document: dict) -> ChainIndex:
    return load_index(io.StringIO(json.dumps(document)))


@pytest.fixture
def document() -> dict:
    return save_document(DiGraph.from_edges(PAPER_FIG1_EDGES))


class TestChecksumFunction:
    def test_deterministic(self, document):
        fields = document["labeling"]
        assert labeling_checksum(fields) == labeling_checksum(fields)
        assert document["labeling_crc32"] == labeling_checksum(fields)

    def test_sensitive_to_every_field(self, document):
        reference = labeling_checksum(document["labeling"])
        for name in ("chain_of", "position_of", "rank_of", "level_of",
                     "sequence_offsets", "sequence_chains",
                     "sequence_positions"):
            mutated = dict(document["labeling"])
            mutated[name] = list(mutated[name]) + [0]
            assert labeling_checksum(mutated) != reference, name

    def test_field_boundaries_are_unambiguous(self):
        """Moving an element across an array boundary changes the CRC."""
        base = {name: [] for name in
                ("chain_of", "position_of", "rank_of", "level_of",
                 "sequence_offsets", "sequence_chains",
                 "sequence_positions")}
        one = dict(base, chain_of=[1, 2], position_of=[3])
        other = dict(base, chain_of=[1], position_of=[2, 3])
        assert labeling_checksum(one) != labeling_checksum(other)


class TestRoundTrip:
    def test_save_records_a_checksum(self, document):
        assert isinstance(document["labeling_crc32"], int)

    def test_clean_file_loads(self, document):
        index = load_document(document)
        assert index.is_reachable("a", "e") is True
        assert index.is_reachable("e", "a") is False

    @settings(max_examples=20, deadline=None)
    @given(graph=small_dags(max_nodes=8))
    def test_any_dag_round_trips_with_checksum(self, graph):
        document = save_document(graph)
        assert document["labeling_crc32"] == labeling_checksum(
            document["labeling"])
        load_document(document)


class TestCorruption:
    def test_flipped_array_element_is_rejected(self, document):
        document["labeling"]["rank_of"][0] ^= 1
        with pytest.raises(IndexFormatError, match="checksum mismatch"):
            load_document(document)

    def test_truncated_array_is_rejected(self, document):
        # keep the arrays mutually consistent so the shape validation
        # does not fire first: drop node 0's (single-element) sequence
        labeling = document["labeling"]
        labeling["sequence_chains"] = labeling["sequence_chains"][1:]
        labeling["sequence_positions"] = labeling["sequence_positions"][1:]
        labeling["sequence_offsets"] = [
            max(0, offset - 1) for offset in labeling["sequence_offsets"]]
        with pytest.raises(IndexFormatError, match="checksum mismatch"):
            load_document(document)

    def test_wrong_recorded_checksum_is_rejected(self, document):
        document["labeling_crc32"] += 1
        with pytest.raises(IndexFormatError, match="checksum mismatch"):
            load_document(document)

    def test_error_is_also_a_graph_format_error(self, document):
        """Existing callers catching GraphFormatError keep working."""
        document["labeling_crc32"] += 1
        with pytest.raises(GraphFormatError):
            load_document(document)

    def test_corruption_on_disk_is_rejected(self, tmp_path):
        path = tmp_path / "index.json"
        save_index(ChainIndex.build(
            DiGraph.from_edges(PAPER_FIG1_EDGES)), path)
        text = path.read_text(encoding="utf-8")
        path.write_text(text.replace('"rank_of":[', '"rank_of":[0,', 1),
                        encoding="utf-8")
        with pytest.raises(IndexFormatError):
            load_index(path)


class TestBackwardCompatibility:
    def test_legacy_file_without_checksum_loads(self, document):
        """Pre-checksum v2 files have no ``labeling_crc32`` key."""
        del document["labeling_crc32"]
        index = load_document(document)
        assert index.is_reachable("a", "e") is True

    def test_legacy_file_still_gets_shape_validation(self, document):
        del document["labeling_crc32"]
        document["labeling"]["rank_of"] = [0] * len(
            document["labeling"]["rank_of"])
        with pytest.raises(GraphFormatError):
            load_document(document)
