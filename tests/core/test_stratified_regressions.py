"""Regression graphs for the stratified decomposition.

Each case here was found (via the exact-width cross-check) to defeat an
earlier revision of the virtual-node machinery; they pin the three
strengthenings described in DESIGN.md.
"""

from repro.core.closure_cover import dag_width
from repro.core.stratified import stratified_chain_cover_with_stats
from repro.graph.digraph import DiGraph
from repro.graph.generators import random_dag, sparse_random_dag


def assert_minimum(graph):
    cover, stats = stratified_chain_cover_with_stats(graph)
    cover.check(graph)
    assert cover.num_chains == dag_width(graph), stats
    return stats


class TestSupportInheritance:
    def test_reroute_parent_two_levels_above_the_odd_top(self):
        """random_dag(12, 0.156, seed=118): the optimal cover links a
        level-4 node above a level-2 node — invisible to one-level S
        sets, caught by carrying the support through the tower."""
        g = DiGraph.from_edges([
            (0, 3), (1, 6), (1, 8), (2, 4), (2, 6), (3, 4), (3, 8),
            (3, 10), (3, 11), (5, 7), (6, 8), (8, 11)])
        assert_minimum(g)

    def test_freed_virtual_bottom_reopens_its_tower(self):
        """random_dag(12, 0.287, seed=305): a transfer frees a virtual
        bottom whose *base's* parent (not the odd top's) must adopt."""
        g = DiGraph.from_edges([
            (0, 1), (0, 4), (0, 5), (0, 8), (1, 7), (1, 9), (1, 10),
            (1, 11), (2, 8), (3, 5), (3, 7), (3, 10), (4, 6), (4, 8),
            (4, 10), (5, 7), (5, 8), (6, 8), (8, 10)])
        assert_minimum(g)

    def test_freed_real_bottom_adopted_by_its_own_parent(self):
        """Freeing a real bottom lets that bottom's own higher-level
        parent adopt it — the paper's S sets never mention it."""
        g = DiGraph.from_edges([
            (1, 7), (1, 9), (1, 10), (1, 11), (8, 10), (3, 7), (5, 7),
            (0, 1), (0, 8)])
        cover, stats = stratified_chain_cover_with_stats(g)
        cover.check(g)
        assert cover.num_chains == dag_width(g), stats


class TestSparseFamilies:
    def test_seed41_sparse_50(self):
        """sparse_random_dag(50, 58, seed=41): stitchable singleton
        chains left behind by a split."""
        g = sparse_random_dag(50, 58, seed=41)
        cover, stats = stratified_chain_cover_with_stats(g)
        cover.check(g)
        width = dag_width(g)
        assert width <= cover.num_chains <= width + 1

    def test_larger_sparse_gap_stays_small(self):
        g = sparse_random_dag(1000, 1200, seed=6)
        cover, stats = stratified_chain_cover_with_stats(g)
        cover.check(g)
        width = dag_width(g)
        assert cover.num_chains >= width
        # Residual non-minimality stays under 5% (see EXPERIMENTS.md).
        assert cover.num_chains <= width * 1.05 + 1


class TestDeepTowers:
    def test_tower_as_tall_as_the_graph_does_not_recurse(self):
        """A pendant whose only parent sits at the top of a 2000-node
        chain forces a virtual tower (and a resolution descent) through
        every stratum — far beyond Python's recursion limit if the
        descent were recursive."""
        m = 2000
        edges = [(i, i + 1) for i in range(1, m)]
        edges += [(0, 2), (0, m + 1)]
        g = DiGraph.from_edges(edges)
        cover, stats = stratified_chain_cover_with_stats(g)
        cover.check(g)
        assert cover.num_chains == dag_width(g) == 2
        assert stats.descents >= m - 10

    def test_many_parallel_towers(self):
        """Several pendants hanging off different chain heights."""
        m = 500
        edges = [(i, i + 1) for i in range(1, m)]
        edges += [(0, 2)]
        for k, level in enumerate((2, 100, 250, 400)):
            pendant = m + 1 + k
            edges += [(level, pendant)]
        g = DiGraph.from_edges(edges)
        cover, _ = stratified_chain_cover_with_stats(g)
        cover.check(g)
        assert cover.num_chains == dag_width(g)


class TestTransactionRollback:
    def test_rollbacks_leave_sound_chains(self):
        """Graphs dense enough to trigger rollbacks still verify."""
        for seed in (50, 75, 156, 236, 256, 362, 550):
            g = random_dag(32, 0.25, seed=seed)
            cover, stats = stratified_chain_cover_with_stats(g)
            cover.check(g)
            width = dag_width(g)
            assert width <= cover.num_chains <= width + max(
                1, stats.splits)
