"""The greedy concatenation chain cover and its engine registration.

The cover must be a *valid* chain decomposition (a partition of the
component ids in which consecutive members are connected by real
reachability), near-minimum on the shapes it was designed for, and —
through ``ChainIndex.build(method="concat")`` and the ``chain-concat``
engine — answer exactly like BFS everywhere, including under the
observer wrapper and as a composite sub-engine.
"""

import pytest
from hypothesis import given, settings

import repro.engine as engine
from repro.core.concat import concat_chain_cover
from repro.core.index import ChainIndex
from repro.core.stratified import stratified_chain_cover
from repro.engine.composite import CompositeEngine
from repro.graph.digraph import DiGraph
from repro.graph.generators import scale_chain_dag
from repro.graph.scc import condense
from repro.obs import OBS

from tests.conftest import bfs_reachable, small_dags, small_digraphs


def _closure(dag: DiGraph) -> set[tuple[int, int]]:
    reachable = set()
    for u in range(dag.num_nodes):
        frontier = [u]
        seen = {u}
        while frontier:
            v = frontier.pop()
            for w in dag.successor_ids(v):
                if w not in seen:
                    seen.add(w)
                    frontier.append(w)
        reachable.update((u, v) for v in seen)
    return reachable


class TestCoverValidity:
    @settings(max_examples=60, deadline=None)
    @given(small_dags(max_nodes=10))
    def test_cover_is_a_valid_decomposition(self, g):
        dag = condense(g).dag
        cover = concat_chain_cover(dag)
        covered = sorted(v for chain in cover.chains for v in chain)
        assert covered == list(range(dag.num_nodes))
        closure = _closure(dag)
        for chain in cover.chains:
            for a, b in zip(chain, chain[1:]):
                assert (a, b) in closure, (chain, a, b)

    @settings(max_examples=40, deadline=None)
    @given(small_dags(max_nodes=10))
    def test_never_narrower_than_the_minimum_cover(self, g):
        dag = condense(g).dag
        minimum = len(stratified_chain_cover(dag).chains)
        assert len(concat_chain_cover(dag).chains) >= minimum

    def test_finds_the_optimal_cover_on_the_scale_family(self):
        graph = scale_chain_dag(600, 700, width=3, seed=1)
        index = ChainIndex.build(graph, method="concat")
        assert index.num_chains == 3

    def test_splice_counter_emitted(self):
        # two chains joined by one edge: greedy growth may split them,
        # but a path graph always concatenates back to one chain
        graph = DiGraph.from_edges(
            [(i, i + 1) for i in range(9)])
        with OBS.capture() as metrics:
            index = ChainIndex.build(graph, method="concat")
        assert index.num_chains == 1
        assert "concat/splices" in metrics.counters or \
            metrics.spans["concat"].count == 1


class TestConcatIndex:
    @settings(max_examples=40, deadline=None)
    @given(small_digraphs(max_nodes=8))
    def test_equals_bfs_on_digraphs(self, g):
        index = ChainIndex.build(g, method="concat")
        for u in g.nodes():
            for v in g.nodes():
                assert index.is_reachable(u, v) == bfs_reachable(
                    g, u, v), (u, v)

    def test_method_recorded_and_persistable(self, tmp_path):
        from repro.core.persistence import load_index, save_index
        graph = scale_chain_dag(120, 160, width=3, seed=0)
        index = ChainIndex.build(graph, method="concat",
                                 codec="compressed")
        assert index.method == "concat"
        path = tmp_path / "concat.idx"
        save_index(index, path)
        reloaded = load_index(path)
        assert reloaded.method == "concat"
        assert reloaded.codec == "compressed"

    def test_unknown_method_rejected(self):
        with pytest.raises(ValueError, match="unknown method"):
            ChainIndex.build(DiGraph.from_edges([(0, 1)]),
                             method="magic")


class TestConcatEngine:
    @settings(max_examples=25, deadline=None)
    @given(small_digraphs(max_nodes=7))
    def test_observed_engine_equals_bfs(self, g):
        pairs = [(u, v) for u in g.nodes() for v in g.nodes()]
        oracle = [bfs_reachable(g, u, v) for u, v in pairs]
        assert engine.build("chain-concat",
                            g).is_reachable_many(pairs) == oracle
        assert engine.build("observed:chain-concat",
                            g).is_reachable_many(pairs) == oracle

    @settings(max_examples=20, deadline=None)
    @given(small_digraphs(max_nodes=7))
    def test_composite_partitions_over_concat(self, g):
        composite = CompositeEngine.build(g, engine="chain-concat")
        pairs = [(u, v) for u in g.nodes() for v in g.nodes()]
        oracle = [bfs_reachable(g, u, v) for u, v in pairs]
        assert composite.is_reachable_many(pairs) == oracle
